#!/usr/bin/env bash
# Offline CI gate: build, test, perf smoke. No network access needed —
# the workspace has no external dependencies and `--offline` makes
# cargo fail loudly rather than silently reach for the index.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline

echo "== tests =="
cargo test -q --offline --workspace

echo "== perf smoke (incremental vs fresh oracle) =="
# Writes BENCH_<n>.json into the repo root; see EXPERIMENTS.md for the
# report schema. Keep the per-benchmark budget modest in CI.
LINARB_SMOKE_TIMEOUT_MS="${LINARB_SMOKE_TIMEOUT_MS:-30000}" \
    cargo run --release --offline -p linarb-bench --bin perf_smoke

echo "== ci ok =="
