#!/usr/bin/env bash
# Offline CI gate: build, test, trace smoke, perf smoke. No network
# access needed — the workspace has no external dependencies and
# `--offline` makes cargo fail loudly rather than silently reach for
# the index.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline

echo "== tests =="
cargo test -q --offline --workspace

echo "== trace smoke (structured JSONL trace of one benchmark) =="
# Solve a benchmark with tracing on, then validate that the emitted
# trace is non-empty, well-formed JSONL containing spans from every
# instrumented layer and the final metrics report.
trace_out="$(mktemp /tmp/linarb_trace.XXXXXX.jsonl)"
cargo run --release --offline -p linarb --bin linarb -- \
    --trace debug --trace-out "$trace_out" examples/fig1.smt2
cargo run --release --offline -p linarb --bin linarb -- \
    --check-jsonl "$trace_out"
for target in core smt sat ml; do
    grep -q "\"target\":\"$target\"" "$trace_out" \
        || { echo "trace smoke: no events from '$target'" >&2; exit 1; }
done
grep -q '"kind":"metrics_report"' "$trace_out" \
    || { echo "trace smoke: missing metrics report trailer" >&2; exit 1; }
rm -f "$trace_out"

echo "== perf smoke (incremental vs fresh oracle) =="
# Writes BENCH_<n>.json into the repo root; see EXPERIMENTS.md for the
# report schema. Keep the per-benchmark budget modest in CI. When an
# earlier report exists, the newest one doubles as the disabled-
# overhead baseline: tracing off must not move the wall clock.
baseline="$(ls -1 BENCH_*.json 2>/dev/null | sort -V | tail -n 1 || true)"
LINARB_SMOKE_TIMEOUT_MS="${LINARB_SMOKE_TIMEOUT_MS:-30000}" \
LINARB_SMOKE_BASELINE="${LINARB_SMOKE_BASELINE:-$baseline}" \
    cargo run --release --offline -p linarb-bench --bin perf_smoke

echo "== ci ok =="
