#!/usr/bin/env bash
# Offline CI gate: build, test, trace smoke, perf smoke. No network
# access needed — the workspace has no external dependencies and
# `--offline` makes cargo fail loudly rather than silently reach for
# the index.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline

echo "== tests (LINARB_THREADS=1) =="
LINARB_THREADS=1 cargo test -q --offline --workspace

echo "== tests (LINARB_THREADS=4) =="
# The whole suite must hold verbatim with parallel clause checking on:
# results are bit-identical at every thread count by design, so any
# test that passes at 1 thread and fails at 4 is a determinism bug.
LINARB_THREADS=4 cargo test -q --offline --workspace

echo "== tests (offline oracle path, LINARB_SMT_OFFLINE=1) =="
# The whole suite must also hold with the SMT engine forced back to
# the pre-online rebuild-per-model oracle: the two engines are
# observationally equivalent, and the offline path stays the reference
# implementation for the differential gate below.
LINARB_SMT_OFFLINE=1 cargo test -q --offline --workspace

echo "== tests (seeding disabled, LINARB_NO_SEED=1) =="
# The whole suite must hold with symbolic seeding forced off: seeding
# is a heuristic accelerator for the learner, never a soundness or
# verdict lever, so every test that passes with seeds must pass
# without them.
LINARB_NO_SEED=1 cargo test -q --offline --workspace

echo "== seeding differential gate =="
# Seeded vs unseeded runs must agree on verdicts (with both sat
# interpretations verifying independently), and seeding must preserve
# the 1-vs-4-thread bit-identical trajectory. Repeated here by name so
# a filtered CI invocation cannot skip it silently.
cargo test -q --offline -p linarb-bench --test seeding

echo "== parallel determinism gate =="
# The differential test comparing threads=1 vs threads=4 in both
# oracle modes (verdicts, interpretations, stats, trace sequences).
# Already part of the workspace runs above; repeated here by name so
# a filtered or partial CI invocation cannot skip it silently.
cargo test -q --offline -p linarb-bench --test parallel_determinism

echo "== online/offline oracle differential gate =="
# Online DPLL(T) (warm theory inside the search, LBD clause-DB
# reduction) vs the offline reference oracle: identical verdicts on
# randomized formulas, incremental lockstep, pooled-conjunction
# equivalence, and 1-vs-4-thread determinism with DB reduction on.
# Repeated by name for the same cannot-skip-silently reason.
cargo test -q --offline -p linarb-bench --test online_oracle_differential

echo "== portfolio differential gate (1 and 4 threads) =="
# The portfolio driver's verdicts must agree with every single engine
# on the whole suite, winning certificates must check on both
# polarities (SAT invariants verified clause-by-clause, UNSAT
# derivations replayed), forced-winner mode must be deterministic, and
# the harder tier must contain instances lone CEGAR times out on but
# the portfolio solves. LINARB_THREADS picks the race width inside the
# driver: 1 exercises sequential time slicing, 4 the concurrent race
# with shared-budget cancellation. Repeated here by name so a filtered
# CI invocation cannot skip it silently.
LINARB_THREADS=1 cargo test -q --offline -p linarb-bench --test portfolio
LINARB_THREADS=4 cargo test -q --offline -p linarb-bench --test portfolio

echo "== portfolio CLI smoke =="
# End-to-end through the binary: `--engine portfolio` must solve fig1
# at both race widths, and the LINARB_PORTFOLIO_FORCE override must
# pin the winner (cegar solves fig1; the paper reports Spacer
# diverging on it, which is exactly why the forced engine is cegar).
for t in 1 4; do
    out="$(cargo run --release --offline -p linarb --bin linarb -- \
        --engine portfolio --threads "$t" --timeout-ms 60000 examples/fig1.smt2)"
    [ "$out" = "sat" ] || { echo "portfolio CLI: fig1 at $t threads got '$out'" >&2; exit 1; }
done
out="$(LINARB_PORTFOLIO_FORCE=cegar cargo run --release --offline -p linarb --bin linarb -- \
    --engine portfolio --timeout-ms 60000 examples/fig1.smt2)"
[ "$out" = "sat" ] || { echo "portfolio CLI: forced cegar on fig1 got '$out'" >&2; exit 1; }

echo "== serve smoke (daemon + batch over a unix socket) =="
# End-to-end through the daemon: start `linarb serve`, submit a batch
# of example programs over the socket, and require (a) the verdicts to
# match the single-shot CLI on the same files, (b) a repeated
# submission to be a verified exact cache hit. The daemon handles
# connections sequentially and the cache is a pure function of the
# submission sequence, so this is deterministic.
serve_sock="$(mktemp -u /tmp/linarb_serve_ci.XXXXXX.sock)"
serve_log="$(mktemp /tmp/linarb_serve_ci.XXXXXX.log)"
cargo run --release --offline -p linarb --bin linarb -- \
    serve --addr "unix:$serve_sock" --timeout-ms 60000 >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [ -S "$serve_sock" ] && break
    sleep 0.1
done
[ -S "$serve_sock" ] || { echo "serve smoke: daemon never bound $serve_sock" >&2; exit 1; }
for f in examples/fig1.smt2 examples/fibo_unsafe.smt2; do
    single="$(cargo run --release --offline -p linarb --bin linarb -- "$f")"
    served="$(cargo run --release --offline -p linarb --bin linarb -- \
        client --addr "unix:$serve_sock" "$f")"
    got="$(echo "$served" | awk '{print $2}')"
    [ "$got" = "$single" ] \
        || { echo "serve smoke: $f served '$got' vs single-shot '$single'" >&2; exit 1; }
done
# Second submission of the same file: must be served from the exact
# tier, re-verified before delivery.
repeat="$(cargo run --release --offline -p linarb --bin linarb -- \
    client --addr "unix:$serve_sock" examples/fig1.smt2)"
echo "$repeat" | grep -q 'cache=exact' \
    || { echo "serve smoke: repeat submission missed the cache: $repeat" >&2; exit 1; }
echo "$repeat" | grep -q 'verified=true' \
    || { echo "serve smoke: exact hit served unverified: $repeat" >&2; exit 1; }
cargo run --release --offline -p linarb --bin linarb -- \
    client --addr "unix:$serve_sock" --op shutdown >/dev/null
wait "$serve_pid"
trap - EXIT
rm -f "$serve_log"

echo "== cache-key determinism gate (1 and 4 threads) =="
# The canonicalization property tests (rename/reorder/scale variants
# of every named suite program share a key; perturbed constants never
# collide) must hold verbatim at both thread counts — the cache key
# may not depend on scheduling. Repeated here by name so a filtered CI
# invocation cannot skip it silently.
LINARB_THREADS=1 cargo test -q --offline -p linarb-frontend --test canon_props
LINARB_THREADS=4 cargo test -q --offline -p linarb-frontend --test canon_props

echo "== trace smoke (structured JSONL trace of one benchmark) =="
# Solve a benchmark with tracing on, then validate that the emitted
# trace is non-empty, well-formed JSONL containing spans from every
# instrumented layer and the final metrics report. Run once per
# thread count: the deterministic portion of both traces must agree
# event for event (timestamps and thread ids are the only sanctioned
# difference, and `--check-jsonl` plus the diff below pin that).
trace_out_1t="$(mktemp /tmp/linarb_trace_1t.XXXXXX.jsonl)"
trace_out_4t="$(mktemp /tmp/linarb_trace_4t.XXXXXX.jsonl)"
LINARB_THREADS=1 cargo run --release --offline -p linarb --bin linarb -- \
    --trace debug --trace-out "$trace_out_1t" examples/fig1.smt2
LINARB_THREADS=4 cargo run --release --offline -p linarb --bin linarb -- \
    --trace debug --trace-out "$trace_out_4t" examples/fig1.smt2
for trace_out in "$trace_out_1t" "$trace_out_4t"; do
    cargo run --release --offline -p linarb --bin linarb -- \
        --check-jsonl "$trace_out"
    for target in core smt sat ml; do
        grep -q "\"target\":\"$target\"" "$trace_out" \
            || { echo "trace smoke: no events from '$target'" >&2; exit 1; }
    done
    grep -q '"kind":"metrics_report"' "$trace_out" \
        || { echo "trace smoke: missing metrics report trailer" >&2; exit 1; }
done
# Strip the wall-clock and thread-id fields and the metrics trailer
# (which embeds span timings), then require byte equality.
scrub() {
    # `thread` is comma-prefixed and only present on replayed worker
    # events; `t_us`/`dur_us` are always present and comma-suffixed.
    grep -v '"kind":"metrics_report"' "$1" \
        | sed -E 's/,"thread":[0-9]+//g; s/"(t_us|dur_us)":[0-9]+,//g'
}
if ! diff <(scrub "$trace_out_1t") <(scrub "$trace_out_4t") >/dev/null; then
    echo "trace smoke: 1-thread and 4-thread traces diverge" >&2
    exit 1
fi
rm -f "$trace_out_1t" "$trace_out_4t"

echo "== profiler smoke (hierarchical self-profile of one benchmark) =="
# Solve with the profiler on: the JSON export must parse (piggybacking
# on --check-jsonl's reader via a one-line file), the collapsed-stack
# file must contain the canonical solve path, and the profile tree's
# structural invariant is checked inside the binary itself (a
# violation prints to stderr; grep keeps it fatal here). The
# disabled-overhead direction is covered by the perf-smoke baseline
# guard below, which runs with no profile scope installed.
prof_out="$(mktemp /tmp/linarb_prof.XXXXXX.json)"
prof_err="$(mktemp /tmp/linarb_prof.XXXXXX.err)"
cargo run --release --offline -p linarb --bin linarb -- \
    --profile-out "$prof_out" examples/fig1.smt2 2>"$prof_err"
cargo run --release --offline -p linarb --bin linarb -- \
    --check-jsonl "$prof_out"
grep -q 'linarb;cegar.solve;core.oracle' "$prof_out.folded" \
    || { echo "profiler smoke: oracle path missing from collapsed stacks" >&2; exit 1; }
if grep -q 'profile invariant violated' "$prof_err"; then
    cat "$prof_err" >&2
    exit 1
fi
rm -f "$prof_out" "$prof_out.folded" "$prof_err"

echo "== perf smoke (incremental vs fresh oracle) =="
# Writes BENCH_<n>.json into the repo root; see EXPERIMENTS.md for the
# report schema. Keep the per-benchmark budget modest in CI. When an
# earlier report exists, the newest one doubles as the disabled-
# overhead baseline (tracing off must not move the wall clock) AND the
# regression-gate reference: --compare writes BENCH_DIFF.md and fails
# on a solved-count drop or a gated wall regression.
baseline="$(ls -1 BENCH_*.json 2>/dev/null | sort -V | tail -n 1 || true)"
compare_args=()
if [ -n "$baseline" ]; then
    compare_args=(--compare "$baseline")
fi
# CI trims the serve replay to 25 variants/base (the checked-in BENCH
# reports use the full 125, i.e. 1000 mutants; the serve section is
# informational to --compare either way).
LINARB_SMOKE_TIMEOUT_MS="${LINARB_SMOKE_TIMEOUT_MS:-30000}" \
LINARB_SMOKE_REPLAY_VARIANTS="${LINARB_SMOKE_REPLAY_VARIANTS:-25}" \
LINARB_SMOKE_BASELINE="${LINARB_SMOKE_BASELINE:-$baseline}" \
    cargo run --release --offline -p linarb-bench --bin perf_smoke -- \
    "${compare_args[@]}"

echo "== bench-regression gate self-test (injected slowdown must fail) =="
# Diff the newest report against itself with a synthetic 2x slowdown
# injected into the "current" side: the gate must trip. Guards the
# guard — a comparison that cannot fail is not a gate.
newest="$(ls -1 BENCH_*.json 2>/dev/null | sort -V | tail -n 1 || true)"
if [ -n "$newest" ]; then
    if LINARB_SMOKE_INJECT_SLOWDOWN=2 LINARB_SMOKE_OUT_DIR="$(mktemp -d)" \
        cargo run --release --offline -p linarb-bench --bin perf_smoke -- \
        --compare-only "$newest" "$newest"; then
        echo "regression gate failed to catch an injected 2x slowdown" >&2
        exit 1
    fi
fi

echo "== ci ok =="
