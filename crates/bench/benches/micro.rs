//! Component microbenchmarks: the engineering substrate under the
//! paper's numbers — SAT, simplex, SMT, classification, decision
//! trees, and end-to-end solves of the running examples.
//!
//! Self-timed (no external harness): each benchmark runs a warmup
//! pass, then reports the median wall time over a fixed number of
//! samples. Run with `cargo bench --bench micro`.

use linarb_arith::{int, rat};
use linarb_logic::{Atom, Formula, LinExpr, Var};
use linarb_ml::{learn, linear_classify, ClassifierKind, Dataset, LearnConfig, SvmParams};
use linarb_sat::{Lit, SatSolver};
use linarb_smt::{check_sat, simplex::Simplex, Budget};
use linarb_solver::{CegarSolver, SolverConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

const SAMPLES: usize = 10;

/// Times `f` over [`SAMPLES`] runs (after one warmup) and prints the
/// median, min, and max, criterion-style but dependency-free.
fn bench_function<R>(name: &str, mut f: impl FnMut() -> R) {
    black_box(f()); // warmup
    let mut times: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort();
    println!(
        "{name:<28} median {:>12?}   min {:>12?}   max {:>12?}",
        times[SAMPLES / 2],
        times[0],
        times[SAMPLES - 1]
    );
}

fn bench_sat() {
    bench_function("sat_php_5_4_unsat", || {
        let n = 5usize;
        let m = 4usize;
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..n * m {
            v.push(s.new_var());
        }
        let p = |i: usize, h: usize| v[i * m + h];
        for i in 0..n {
            let cl: Vec<Lit> = (0..m).map(|h| p(i, h).positive()).collect();
            s.add_clause(&cl);
        }
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                }
            }
        }
        s.solve()
    });
}

fn bench_simplex() {
    bench_function("simplex_chain_20", || {
        let mut s = Simplex::new();
        let cols: Vec<_> = (0..20).map(|_| s.new_col()).collect();
        for w in cols.windows(2) {
            let sl = s.new_slack(&[(w[0], rat(1, 1)), (w[1], rat(-1, 1))]);
            s.assert_upper(sl, rat(1, 1), 0).unwrap();
            s.assert_lower(sl, rat(-1, 1), 1).unwrap();
        }
        s.assert_lower(cols[0], rat(5, 1), 2).unwrap();
        s.assert_upper(cols[19], rat(30, 1), 3).unwrap();
        s.check(100_000).is_ok()
    });
}

fn bench_smt() {
    let x = Var::from_index(0);
    let y = Var::from_index(1);
    let f = Formula::and(vec![
        Formula::or(vec![
            Formula::from(Atom::le(LinExpr::var(x), LinExpr::constant(int(-5)))),
            Formula::from(Atom::ge(
                &LinExpr::var(x) + &LinExpr::var(y),
                LinExpr::constant(int(7)),
            )),
        ]),
        Formula::from(Atom::ge(LinExpr::var(x), LinExpr::constant(int(0)))),
        Formula::from(Atom::le(LinExpr::var(y), LinExpr::constant(int(3)))),
    ]);
    bench_function("smt_boolean_lia", || {
        check_sat(&f, &Budget::unlimited()).is_sat()
    });
}

fn bench_classification() {
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for i in 0..40i64 {
        pos.push(vec![int(i % 10 + 1), int(i / 10 + 1)]);
        neg.push(vec![int(-(i % 10) - 1), int(-(i / 10) - 1)]);
    }
    bench_function("svm_80_samples", || {
        linear_classify(ClassifierKind::Svm, &SvmParams::default(), &pos, &neg, 7)
    });
    bench_function("perceptron_80_samples", || {
        linear_classify(
            ClassifierKind::Perceptron,
            &SvmParams::default(),
            &pos,
            &neg,
            7,
        )
    });
}

fn bench_learn() {
    // the diamond dataset of the paper's Fig. 6
    let mut d = Dataset::new(2);
    for p in [(0, -2), (0, -1), (0, 0), (0, 1)] {
        d.add_positive(vec![int(p.0), int(p.1)]);
    }
    d.add_negative(vec![int(3), int(-3)]);
    d.add_negative(vec![int(-3), int(3)]);
    let params = vec![Var::from_index(0), Var::from_index(1)];
    bench_function("learn_diamond_alg2", || {
        learn(&d, &params, &LearnConfig::default()).unwrap()
    });
}

fn bench_end_to_end() {
    let fig1 = linarb_suite::fig1();
    bench_function("solve_fig1", || {
        let mut solver = CegarSolver::new(&fig1.system, SolverConfig::default());
        solver.solve(&Budget::unlimited()).is_sat()
    });
    let fibo = linarb_suite::program_c_fibo();
    bench_function("solve_fibo", || {
        let mut solver = CegarSolver::new(&fibo.system, SolverConfig::default());
        solver.solve(&Budget::unlimited()).is_sat()
    });
}

fn main() {
    bench_sat();
    bench_simplex();
    bench_smt();
    bench_classification();
    bench_learn();
    bench_end_to_end();
}
