//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! Run with `cargo bench -p linarb-bench --bench paper_eval`.
//! Knobs (environment variables):
//!
//! * `LINARB_TIMEOUT_MS` — per-benchmark timeout (default 2000; the
//!   paper used 180 000 on full-size suites, 1 000 000 for the
//!   scalability study).
//! * `LINARB_MAX` — cap on benchmarks per suite (default 40; set to a
//!   large value for full suites).
//! * `LINARB_SCALE` — scale factor for the 381-program suite
//!   (default 0.25; 1.0 = full 381).
//! * `LINARB_EXPERIMENTS` — comma-separated subset of
//!   `fig8a,fig8b,fig8c,fig8d,scale,ablation` (default: all).

use linarb_bench::{
    characterize, default_timeout, env_or, run_suite, subsample, Engine, RunOutcome,
};
use linarb_suite::Benchmark;
use std::time::Duration;

fn fmt_time(t: Duration, solved: bool) -> String {
    if solved {
        format!("{:.3}s", t.as_secs_f64())
    } else {
        "TO".to_string()
    }
}

/// Prints scatter-plot series: per-benchmark times for two engines.
fn scatter(
    title: &str,
    suite: &[Benchmark],
    a: Engine,
    b: Engine,
    timeout: Duration,
) -> (Vec<RunOutcome>, Vec<RunOutcome>) {
    println!("\n=== {title} ===");
    println!("{:<24} {:>14} {:>14}", "benchmark", a.name(), b.name());
    let (oa, sa) = run_suite(a, suite, timeout);
    let (ob, sb) = run_suite(b, suite, timeout);
    for ((bench, ra), rb) in suite.iter().zip(&oa).zip(&ob) {
        println!(
            "{:<24} {:>14} {:>14}",
            bench.name,
            fmt_time(ra.time, ra.solved()),
            fmt_time(rb.time, rb.solved())
        );
    }
    println!(
        "summary: {} solved {}/{} (mean {:.3}s) | {} solved {}/{} (mean {:.3}s) | wrong: {}/{}",
        a.name(),
        sa.solved,
        sa.total,
        sa.mean_time_solved().as_secs_f64(),
        b.name(),
        sb.solved,
        sb.total,
        sb.mean_time_solved().as_secs_f64(),
        sa.wrong,
        sb.wrong,
    );
    (oa, ob)
}

fn char_table(title: &str, benches: &[Benchmark], timeout: Duration) {
    println!("\n--- {title} (#L #C #P #V #S #A T) ---");
    println!(
        "{:<18} {:>5} {:>4} {:>4} {:>5} {:>5}  {:<18} {:>9}",
        "name", "#L", "#C", "#P", "#V", "#S", "#A", "T"
    );
    for b in benches {
        let row = characterize(b, timeout);
        let shape = row
            .shape
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{:<18} {:>5} {:>4} {:>4} {:>5} {:>5}  {:<18} {:>9}",
            row.name,
            row.lines,
            row.clauses,
            row.preds,
            row.vars,
            row.samples,
            shape,
            fmt_time(row.time, row.verdict != linarb_bench::Verdict::Unknown)
        );
    }
}

fn main() {
    let timeout = default_timeout();
    let max: usize = env_or("LINARB_MAX", 40);
    let scale: f64 = env_or("LINARB_SCALE", 0.25);
    let filter = std::env::var("LINARB_EXPERIMENTS").unwrap_or_default();
    let want = |name: &str| filter.is_empty() || filter.split(',').any(|f| f.trim() == name);

    println!("linarb paper evaluation — timeout {timeout:?}, max/suite {max}, scale {scale}");
    println!("paper reference numbers are quoted next to each table for shape comparison");

    if want("fig8a") {
        // Fig. 8(a): Learning vs Enumeration (PIE), 82 programs.
        let suite = subsample(linarb_suite::pie82(), max);
        scatter(
            "Fig. 8(a)  Learning vs Enumeration (PIE)   [paper: LinearArbitrary ~10x faster]",
            &suite,
            Engine::LinArb,
            Engine::Pie,
            timeout,
        );
        // The 31.c / 33.c style characterization rows: the two hardest
        // members by clause count.
        let mut hard: Vec<Benchmark> = suite.clone();
        hard.sort_by_key(|b| std::cmp::Reverse(b.system.num_clauses()));
        hard.truncate(2);
        char_table("Fig. 8(a) hard members (paper rows 31.c / 33.c)", &hard, timeout);
    }

    if want("fig8b") {
        // Fig. 8(b): Learning vs Template (DIG).
        let suite = subsample(linarb_suite::dig_linear(), max);
        scatter(
            "Fig. 8(b)  Learning vs Template (DIG)   [paper: DIG times out on disjunctive]",
            &suite,
            Engine::LinArb,
            Engine::Dig,
            timeout,
        );
        let mut hard: Vec<Benchmark> = suite
            .iter()
            .filter(|b| b.name.starts_with("diamond") || b.name.starts_with("phase"))
            .take(2)
            .cloned()
            .collect();
        if hard.is_empty() {
            hard = suite.iter().take(2).cloned().collect();
        }
        char_table("Fig. 8(b) disjunctive members (paper rows 04.c / 10.c)", &hard, timeout);
    }

    if want("fig8c") {
        // Fig. 8(c) + the solver-comparison table.
        let suite = subsample(linarb_suite::chc381_scaled(scale), max);
        scatter(
            "Fig. 8(c)  Learning vs PDR (Spacer)   [paper: Spacer faster when it finishes, solves fewer]",
            &suite,
            Engine::LinArb,
            Engine::Spacer,
            timeout,
        );
        println!("\n--- Solver comparison table (paper: 381 total | GPDR 300 | Spacer 303 | Duality 309 | LinearArbitrary 368) ---");
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>12}",
            "engine", "solved", "total", "wrong", "mean-time"
        );
        for engine in [Engine::Gpdr, Engine::Spacer, Engine::Duality, Engine::LinArb] {
            let (_, s) = run_suite(engine, &suite, timeout);
            println!(
                "{:<22} {:>8} {:>8} {:>8} {:>11.3}s",
                engine.name(),
                s.solved,
                s.total,
                s.wrong,
                s.mean_time_solved().as_secs_f64()
            );
        }
    }

    if want("fig8d") {
        // Fig. 8(d): Learning vs Interpolation (UAutomizer), 135 programs.
        let suite = subsample(linarb_suite::svcomp135(), max);
        scatter(
            "Fig. 8(d)  Learning vs Interpolation (UAutomizer)   [paper: 126 vs 111 of 135]",
            &suite,
            Engine::LinArb,
            Engine::UAutomizer,
            timeout,
        );
        // The recursive characterization rows (paper: Prime, EvenOdd,
        // recHanoi3, Fib2calls).
        let named = vec![
            linarb_suite::prime_mult(),
            linarb_suite::even_odd(),
            linarb_suite::rec_hanoi3(),
            linarb_suite::fib2calls(),
        ];
        char_table(
            "SV-COMP recursive rows (paper: Prime / EvenOdd / recHanoi3 / Fib2calls)",
            &named,
            timeout,
        );
    }

    if want("scale") {
        // Scalability study: NTDriver / Product-lines / Psyco / SystemC.
        let sizes = [2usize, 4, 8, 12];
        let suite = linarb_suite::scalability(&sizes);
        println!("\n=== Scalability study (paper: sfifo/acclrm/elevator/parport rows; UAutomizer 403 vs LinearArbitrary 644 of 679) ===");
        println!(
            "{:<22} {:>6} {:>5} {:>5} {:>6} {:>12} {:>12}",
            "benchmark", "#L", "#C", "#P", "#V", "LinArb", "UAutomizer"
        );
        for b in &suite {
            let (l, c, p, v) = b.stats();
            let la = linarb_bench::run_engine(Engine::LinArb, b, timeout);
            let ua = linarb_bench::run_engine(Engine::UAutomizer, b, timeout);
            println!(
                "{:<22} {:>6} {:>5} {:>5} {:>6} {:>12} {:>12}",
                b.name,
                l,
                c,
                p,
                v,
                fmt_time(la.time, la.solved()),
                fmt_time(ua.time, ua.solved())
            );
        }
        char_table(
            "Scalability characterization (#S/#A rows)",
            &suite[..4.min(suite.len())],
            timeout,
        );
    }

    if want("ablation") {
        // §6: disabling DT learning collapses the convergence rate.
        let suite = subsample(linarb_suite::chc381_scaled(scale), max.min(24));
        println!("\n=== Ablation: decision-tree layer (paper: without DT most benchmarks time out) ===");
        println!("{:<22} {:>8} {:>8} {:>12}", "engine", "solved", "total", "mean-time");
        for engine in [Engine::LinArb, Engine::LinArbNoDt] {
            let (_, s) = run_suite(engine, &suite, timeout);
            println!(
                "{:<22} {:>8} {:>8} {:>11.3}s",
                engine.name(),
                s.solved,
                s.total,
                s.mean_time_solved().as_secs_f64()
            );
        }
    }

    println!("\ndone.");
}
