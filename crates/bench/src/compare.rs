//! Bench-regression comparison: turns two `BENCH_<n>.json` reports
//! into per-benchmark / per-phase deltas (`BENCH_DIFF.md`) and a hard
//! verdict.
//!
//! The BENCH trajectory used to be prose — a human eyeballing two JSON
//! files. This module makes it a contract: `perf_smoke
//! --compare BENCH_<prev>.json` (and the CI gate in `scripts/ci.sh`)
//! **fails** on
//!
//! * a solved-count regression in either oracle mode, or
//! * a wall-time regression past the tolerance factor (default 1.25 =
//!   +25%) on the *commonly-solved* subset of a mode — benchmarks
//!   solved in both reports, so timeouts can't masquerade as slowdowns
//!   — with an absolute floor ([`CompareOptions::abs_floor_s`])
//!   keeping sub-second jitter from tripping the gate.
//!
//! Per-benchmark regressions below the hard gate and phase-time shifts
//! are reported as warnings in the diff. Reports are parsed with the
//! in-tree JSON reader and both field generations are understood
//! (pre-PR-8 `speedup` and the current `fresh_vs_incremental_ratio`;
//! missing per-benchmark verdicts fall back to a wall-vs-timeout
//! heuristic).

use linarb_trace::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One benchmark's reading inside one mode.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSample {
    /// Benchmark name.
    pub name: String,
    /// Wall seconds.
    pub wall_s: f64,
    /// Whether the run reached a definite verdict. Reports since PR 8
    /// record this per benchmark; for older reports it is inferred
    /// (wall < 95% of the timeout).
    pub solved: bool,
}

/// One oracle mode's section of a BENCH report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ModeReport {
    /// Mode total wall seconds.
    pub wall_s: f64,
    /// The `phases` object (oracle_s, learner_s, …), flattened.
    pub phases: BTreeMap<String, f64>,
    /// Per-benchmark walls.
    pub benchmarks: Vec<BenchSample>,
}

/// A parsed `BENCH_<n>.json`, as much of it as comparisons need.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// Where it came from (file name; used in headings).
    pub label: String,
    /// Number of benchmarks in the suite.
    pub suite_size: u64,
    /// Per-benchmark budget, milliseconds.
    pub timeout_ms: f64,
    /// The oracle modes (`fresh`, `incremental`) plus, since PR 9, the
    /// `portfolio` section (same shape, racing all engines).
    pub modes: BTreeMap<String, ModeReport>,
    /// Definite verdicts per mode, from the report's top level.
    pub solved: BTreeMap<String, u64>,
    /// `fresh_vs_incremental_ratio` (or legacy `speedup`).
    pub ratio: Option<f64>,
    /// Structured `speedup_warnings` entries (raw JSON objects,
    /// re-rendered in the diff).
    pub speedup_warnings: Vec<String>,
    /// Top-level fields this comparer does not understand — reports
    /// from newer harness versions carry sections older gates never
    /// heard of. They are ignored for gating and listed as a note in
    /// the diff, so a BENCH trajectory stays comparable across harness
    /// generations.
    pub unrecognized: Vec<String>,
}

/// Top-level report fields this comparer understands (everything else
/// is noted and ignored — see [`BenchReport::unrecognized`]).
const KNOWN_FIELDS: &[&str] = &[
    "suite_size",
    "timeout_ms",
    "fresh",
    "incremental",
    "portfolio",
    "serve",
    "fresh_solved",
    "incremental_solved",
    "portfolio_solved",
    "fresh_vs_incremental_ratio",
    "solved_subset_fresh_vs_incremental_ratio",
    "full_check_delta",
    "speedup",
    "speedup_warnings",
    "parallel",
];

impl BenchReport {
    /// Parses a report out of JSON text. `label` names the source in
    /// diff output. Returns `None` when the document lacks the BENCH
    /// shape entirely.
    pub fn parse(label: &str, text: &str) -> Option<BenchReport> {
        let doc = json::parse(text).ok()?;
        let timeout_ms = doc.get("timeout_ms")?.as_f64()?;
        let mut report = BenchReport {
            label: label.to_string(),
            suite_size: doc.get("suite_size")?.as_f64()? as u64,
            timeout_ms,
            ..BenchReport::default()
        };
        for mode in ["fresh", "incremental", "portfolio"] {
            let Some(m) = doc.get(mode) else { continue };
            let mut mr = ModeReport {
                wall_s: m.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0),
                ..ModeReport::default()
            };
            if let Some(Json::Obj(phases)) = m.get("phases") {
                for (k, v) in phases {
                    if let Some(x) = v.as_f64() {
                        mr.phases.insert(k.clone(), x);
                    }
                }
            }
            if let Some(Json::Arr(items)) = m.get("benchmarks") {
                for b in items {
                    let (Some(name), Some(wall_s)) = (
                        b.get("name").and_then(Json::as_str),
                        b.get("wall_s").and_then(Json::as_f64),
                    ) else {
                        continue;
                    };
                    let solved = match b.get("verdict").and_then(Json::as_str) {
                        Some(v) => v != "unknown",
                        // Pre-PR-8 reports carry no per-benchmark
                        // verdict; near-timeout walls were timeouts.
                        None => wall_s < timeout_ms / 1000.0 * 0.95,
                    };
                    mr.benchmarks.push(BenchSample { name: name.to_string(), wall_s, solved });
                }
            }
            report.modes.insert(mode.to_string(), mr);
            if let Some(n) = doc.get(&format!("{mode}_solved")).and_then(Json::as_f64) {
                report.solved.insert(mode.to_string(), n as u64);
            }
        }
        report.ratio = doc
            .get("fresh_vs_incremental_ratio")
            .or_else(|| doc.get("speedup"))
            .and_then(Json::as_f64);
        if let Some(Json::Arr(warns)) = doc.get("speedup_warnings") {
            for w in warns {
                report.speedup_warnings.push(render_json(w));
            }
        }
        if let Json::Obj(m) = &doc {
            report.unrecognized = m
                .keys()
                .filter(|k| !KNOWN_FIELDS.contains(&k.as_str()))
                .cloned()
                .collect();
        }
        Some(report)
    }

    /// Multiplies every wall reading by `factor` — the gate's
    /// self-test hook (`LINARB_SMOKE_INJECT_SLOWDOWN`): an injected 2×
    /// slowdown must make [`compare`] fail.
    pub fn inject_slowdown(&mut self, factor: f64) {
        for mode in self.modes.values_mut() {
            mode.wall_s *= factor;
            for b in &mut mode.benchmarks {
                b.wall_s *= factor;
            }
            for v in mode.phases.values_mut() {
                *v *= factor;
            }
        }
    }
}

fn render_json(v: &Json) -> String {
    match v {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Json::Str(s) => linarb_trace::json_string(s),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render_json).collect();
            format!("[{}]", inner.join(", "))
        }
        Json::Obj(m) => {
            let inner: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{}: {}", linarb_trace::json_string(k), render_json(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

/// Gate thresholds for [`compare`].
#[derive(Clone, Copy, Debug)]
pub struct CompareOptions {
    /// Wall-regression factor that fails the gate (1.25 = +25%).
    pub wall_tolerance: f64,
    /// Minimum absolute regression (seconds) on a mode's
    /// commonly-solved subset before the factor gate applies — keeps
    /// sub-second suites from failing on scheduler jitter.
    pub abs_floor_s: f64,
}

impl Default for CompareOptions {
    fn default() -> CompareOptions {
        CompareOptions { wall_tolerance: 1.25, abs_floor_s: 0.25 }
    }
}

/// The outcome of comparing two BENCH reports.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// The full `BENCH_DIFF.md` document.
    pub markdown: String,
    /// Hard-gate violations; non-empty fails CI.
    pub failures: Vec<String>,
    /// Sub-gate regressions worth reading.
    pub warnings: Vec<String>,
}

impl Comparison {
    /// `true` when the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn pct(prev: f64, cur: f64) -> String {
    if prev <= 0.0 {
        return "—".to_string();
    }
    format!("{:+.1}%", (cur / prev - 1.0) * 100.0)
}

/// Compares `cur` against `prev` under `opts`. See the module docs for
/// the gate rules.
pub fn compare(prev: &BenchReport, cur: &BenchReport, opts: CompareOptions) -> Comparison {
    let mut out = Comparison::default();
    let mut md = String::new();
    let _ = writeln!(md, "# BENCH diff: {} → {}\n", prev.label, cur.label);

    // Solved counts: the one number that must never go down.
    let _ = writeln!(md, "## Solved\n");
    let _ = writeln!(md, "| mode | {} | {} | gate |", prev.label, cur.label);
    let _ = writeln!(md, "|------|---:|---:|------|");
    for (mode, &p) in &prev.solved {
        let c = cur.solved.get(mode).copied().unwrap_or(0);
        let gate = if c < p {
            out.failures.push(format!(
                "solved-count regression in {mode} mode: {p} → {c}"
            ));
            "**FAIL**"
        } else {
            "ok"
        };
        let _ = writeln!(md, "| {mode} | {p} | {c} | {gate} |");
    }

    // Wall time on each mode's commonly-solved subset.
    let _ = writeln!(md, "\n## Wall time (commonly-solved subset)\n");
    let _ = writeln!(
        md,
        "| mode | n | {} | {} | Δ | gate (≤{:.0}% or ≤{:.2}s) |",
        prev.label,
        cur.label,
        (opts.wall_tolerance - 1.0) * 100.0,
        opts.abs_floor_s
    );
    let _ = writeln!(md, "|------|--:|---:|---:|---:|------|");
    for (mode, pm) in &prev.modes {
        let Some(cm) = cur.modes.get(mode) else { continue };
        let cur_by_name: BTreeMap<&str, &BenchSample> =
            cm.benchmarks.iter().map(|b| (b.name.as_str(), b)).collect();
        let mut p_sum = 0.0;
        let mut c_sum = 0.0;
        let mut n = 0usize;
        for pb in &pm.benchmarks {
            if let Some(cb) = cur_by_name.get(pb.name.as_str()) {
                if pb.solved && cb.solved {
                    p_sum += pb.wall_s;
                    c_sum += cb.wall_s;
                    n += 1;
                    // Per-benchmark advisory (never a hard failure —
                    // single benchmarks are too noisy to gate on).
                    if cb.wall_s > pb.wall_s * opts.wall_tolerance
                        && cb.wall_s - pb.wall_s > 0.1
                    {
                        out.warnings.push(format!(
                            "{mode}/{}: {:.3}s → {:.3}s ({})",
                            pb.name,
                            pb.wall_s,
                            cb.wall_s,
                            pct(pb.wall_s, cb.wall_s)
                        ));
                    }
                }
            }
        }
        let regressed =
            c_sum > p_sum * opts.wall_tolerance && c_sum - p_sum > opts.abs_floor_s;
        let gate = if regressed {
            out.failures.push(format!(
                "wall regression in {mode} mode on the commonly-solved subset: \
                 {p_sum:.3}s → {c_sum:.3}s ({})",
                pct(p_sum, c_sum)
            ));
            "**FAIL**"
        } else {
            "ok"
        };
        let _ = writeln!(
            md,
            "| {mode} | {n} | {p_sum:.3}s | {c_sum:.3}s | {} | {gate} |",
            pct(p_sum, c_sum)
        );
    }

    // Per-benchmark table (informational).
    let _ = writeln!(md, "\n## Per-benchmark wall (s)\n");
    let mode_names: Vec<&String> = prev.modes.keys().collect();
    let mut header = String::from("| benchmark |");
    let mut rule = String::from("|-----------|");
    for m in &mode_names {
        let _ = write!(header, " {m} prev | {m} cur | Δ |");
        rule.push_str("---:|---:|---:|");
    }
    let _ = writeln!(md, "{header}");
    let _ = writeln!(md, "{rule}");
    let names: Vec<&str> = prev
        .modes
        .values()
        .next()
        .map(|m| m.benchmarks.iter().map(|b| b.name.as_str()).collect())
        .unwrap_or_default();
    for name in names {
        let mut row = format!("| {name} |");
        for m in &mode_names {
            let find = |r: &BenchReport| -> Option<(f64, bool)> {
                r.modes.get(*m)?.benchmarks.iter().find(|b| b.name == name).map(|b| (b.wall_s, b.solved))
            };
            match (find(prev), find(cur)) {
                (Some((p, ps)), Some((c, cs))) => {
                    let mark = |solved: bool| if solved { "" } else { "ᵗ" };
                    let _ = write!(
                        row,
                        " {p:.3}{} | {c:.3}{} | {} |",
                        mark(ps),
                        mark(cs),
                        pct(p, c)
                    );
                }
                _ => row.push_str(" — | — | — |"),
            }
        }
        let _ = writeln!(md, "{row}");
    }
    let _ = writeln!(md, "\nᵗ = no definite verdict (timeout).");

    // Phase deltas (informational).
    let _ = writeln!(md, "\n## Phases\n");
    let _ = writeln!(md, "| mode | phase | prev | cur | Δ |");
    let _ = writeln!(md, "|------|-------|---:|---:|---:|");
    for (mode, pm) in &prev.modes {
        let Some(cm) = cur.modes.get(mode) else { continue };
        for (phase, &p) in &pm.phases {
            let c = cm.phases.get(phase).copied().unwrap_or(0.0);
            let _ = writeln!(md, "| {mode} | {phase} | {p:.3}s | {c:.3}s | {} |", pct(p, c));
        }
    }

    // Carried-through speedup warnings of the current report.
    if !cur.speedup_warnings.is_empty() {
        let _ = writeln!(md, "\n## Speedup warnings ({})\n", cur.label);
        for w in &cur.speedup_warnings {
            let _ = writeln!(md, "- `{w}`");
        }
    }

    if !out.warnings.is_empty() {
        let _ = writeln!(md, "\n## Per-benchmark regressions (advisory)\n");
        for w in &out.warnings {
            let _ = writeln!(md, "- {w}");
        }
    }

    // Forward compatibility: newer reports may carry sections this
    // comparer predates. They never gate; they are only noted.
    for (rep, role) in [(prev, "older"), (cur, "newer")] {
        if !rep.unrecognized.is_empty() {
            let _ = writeln!(
                md,
                "\n> Note: {} ({role} report) carries fields unknown to this comparer, \
                 ignored for gating: {}.",
                rep.label,
                rep.unrecognized.join(", ")
            );
        }
    }

    let _ = writeln!(md, "\n## Verdict\n");
    if out.failures.is_empty() {
        let _ = writeln!(md, "**PASS** — no solved-count or gated wall regression.");
    } else {
        let _ = writeln!(md, "**FAIL**\n");
        for f in &out.failures {
            let _ = writeln!(md, "- {f}");
        }
    }
    out.markdown = md;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal report in the current (PR 8) shape.
    fn report(label: &str, wall_a: f64, wall_b: f64, solved: u64, verdict_b: &str) -> BenchReport {
        let text = format!(
            r#"{{
              "suite_size": 2,
              "timeout_ms": 30000,
              "fresh": {{
                "wall_s": {sum:.3},
                "phases": {{"oracle_s": {wall_a:.3}, "learner_s": 0.1}},
                "benchmarks": [
                  {{"name": "a", "wall_s": {wall_a:.3}, "verdict": "sat"}},
                  {{"name": "b", "wall_s": {wall_b:.3}, "verdict": "{verdict_b}"}}
                ]
              }},
              "incremental": {{
                "wall_s": {sum:.3},
                "phases": {{"oracle_s": {wall_a:.3}}},
                "benchmarks": [
                  {{"name": "a", "wall_s": {wall_a:.3}, "verdict": "sat"}},
                  {{"name": "b", "wall_s": {wall_b:.3}, "verdict": "{verdict_b}"}}
                ]
              }},
              "fresh_solved": {solved},
              "incremental_solved": {solved},
              "fresh_vs_incremental_ratio": 1.0,
              "speedup_warnings": [{{"kind": "low_4t_speedup", "speedup_4t": 0.7}}]
            }}"#,
            sum = wall_a + wall_b,
        );
        BenchReport::parse(label, &text).expect("parse")
    }

    #[test]
    fn parses_both_field_generations() {
        let new = report("new", 1.0, 2.0, 2, "sat");
        assert_eq!(new.ratio, Some(1.0));
        assert_eq!(new.solved["fresh"], 2);
        assert_eq!(new.speedup_warnings.len(), 1);
        // Legacy shape: `speedup` field, no verdicts. BENCH_7-style.
        let legacy = r#"{
          "suite_size": 1, "timeout_ms": 1000,
          "fresh": {"wall_s": 0.999,
                    "benchmarks": [{"name": "x", "wall_s": 0.999}]},
          "fresh_solved": 0, "speedup": 0.048
        }"#;
        let rep = BenchReport::parse("legacy", legacy).unwrap();
        assert_eq!(rep.ratio, Some(0.048));
        // 0.999s against a 1s timeout: inferred unsolved.
        assert!(!rep.modes["fresh"].benchmarks[0].solved);
    }

    #[test]
    fn identical_reports_pass() {
        let prev = report("prev", 1.0, 2.0, 2, "sat");
        let cur = report("cur", 1.0, 2.0, 2, "sat");
        let cmp = compare(&prev, &cur, CompareOptions::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
        assert!(cmp.markdown.contains("**PASS**"));
    }

    #[test]
    fn small_jitter_passes() {
        let prev = report("prev", 1.0, 2.0, 2, "sat");
        let cur = report("cur", 1.1, 2.2, 2, "sat"); // +10% < 25%
        assert!(compare(&prev, &cur, CompareOptions::default()).passed());
    }

    #[test]
    fn injected_2x_slowdown_fails() {
        let prev = report("prev", 1.0, 2.0, 2, "sat");
        let mut cur = report("cur", 1.0, 2.0, 2, "sat");
        cur.inject_slowdown(2.0);
        let cmp = compare(&prev, &cur, CompareOptions::default());
        assert!(!cmp.passed());
        assert!(
            cmp.failures.iter().any(|f| f.contains("wall regression")),
            "{:?}",
            cmp.failures
        );
        assert!(cmp.markdown.contains("**FAIL**"));
    }

    #[test]
    fn solved_count_drop_fails() {
        let prev = report("prev", 1.0, 2.0, 2, "sat");
        let cur = report("cur", 1.0, 2.0, 1, "unknown");
        let cmp = compare(&prev, &cur, CompareOptions::default());
        assert!(cmp.failures.iter().any(|f| f.contains("solved-count")), "{:?}", cmp.failures);
    }

    #[test]
    fn timeouts_excluded_from_wall_gate() {
        // Benchmark b times out in both reports; only a (1s) is gated.
        // b's wall doubling must not fail the gate.
        let prev = report("prev", 1.0, 30.0, 1, "unknown");
        let mut cur = report("cur", 1.0, 30.0, 1, "unknown");
        cur.modes.get_mut("fresh").unwrap().benchmarks[1].wall_s = 60.0;
        let cmp = compare(&prev, &cur, CompareOptions::default());
        assert!(cmp.passed(), "{:?}", cmp.failures);
    }

    #[test]
    fn abs_floor_shields_tiny_suites() {
        // 3x regression but only +80ms total: below the 0.25s floor.
        let prev = report("prev", 0.02, 0.02, 2, "sat");
        let cur = report("cur", 0.06, 0.06, 2, "sat");
        assert!(compare(&prev, &cur, CompareOptions::default()).passed());
    }

    #[test]
    fn unknown_top_level_fields_are_noted_not_gated() {
        let prev = report("prev", 1.0, 2.0, 2, "sat");
        // A report from a future harness: an extra top-level section
        // this comparer has never heard of.
        let text = r#"{
          "suite_size": 2, "timeout_ms": 30000,
          "fresh": {"wall_s": 3.0, "benchmarks": [
            {"name": "a", "wall_s": 1.0, "verdict": "sat"},
            {"name": "b", "wall_s": 2.0, "verdict": "sat"}]},
          "incremental": {"wall_s": 3.0, "benchmarks": [
            {"name": "a", "wall_s": 1.0, "verdict": "sat"},
            {"name": "b", "wall_s": 2.0, "verdict": "sat"}]},
          "fresh_solved": 2,
          "incremental_solved": 2,
          "quantum_oracle": {"qubits": 17},
          "novel_metric": 42
        }"#;
        let cur = BenchReport::parse("cur", text).unwrap();
        assert_eq!(cur.unrecognized, vec!["novel_metric", "quantum_oracle"]);
        let cmp = compare(&prev, &cur, CompareOptions::default());
        assert!(cmp.passed(), "unknown fields must not gate: {:?}", cmp.failures);
        assert!(
            cmp.markdown.contains("novel_metric, quantum_oracle"),
            "diff must note the ignored fields:\n{}",
            cmp.markdown
        );
        // The current report shape itself parses clean.
        assert!(prev.unrecognized.is_empty());
    }

    #[test]
    fn diff_mentions_phases_and_warnings() {
        let prev = report("prev", 1.0, 2.0, 2, "sat");
        let cur = report("cur", 1.4, 2.8, 2, "sat");
        let cmp = compare(&prev, &cur, CompareOptions::default());
        assert!(cmp.markdown.contains("oracle_s"));
        assert!(cmp.markdown.contains("low_4t_speedup"));
        // +40% per-benchmark: advisory warnings present.
        assert!(!cmp.warnings.is_empty());
    }
}
