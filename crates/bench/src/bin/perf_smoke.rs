//! Perf smoke test for the incremental CEGAR oracle.
//!
//! Runs a fixed benchmark selection twice — once with the fresh
//! (rebuild-per-check) oracle and once with the incremental one — and
//! emits a `BENCH_<n>.json` report in the repository root with wall
//! times and oracle statistics per mode. Definite verdicts must never
//! contradict each other; a sat/unsat disagreement is a hard failure
//! (one mode timing out where the other solves is a perf difference,
//! not a soundness one).
//!
//! The run then sweeps parallel clause checking across 1/2/4/8 worker
//! threads on the multi-clause subset. Cross-thread-count determinism
//! (identical verdicts and trajectory statistics) is asserted hard;
//! parallel slowdowns and a sub-1.3x 4-thread speedup are recorded in
//! the report's structured `speedup_warnings` array (they depend on
//! the machine's physical core count, so they warn rather than fail).
//!
//! Phase accounting is checked as an invariant: breakdown components
//! must sum to no more than their parent phase, and (single-threaded)
//! phases must sum to no more than the mode's wall time. Seed-harvest
//! time runs *before* the solve wall clock starts and is therefore
//! reported per mode as a separate `seed_harvest_s` alongside
//! `wall_s`, never inside `learner_breakdown`.
//!
//! Knobs: `LINARB_SMOKE_TIMEOUT_MS` (per-benchmark budget, default
//! 60000) and `LINARB_SMOKE_OUT_DIR` (report directory, default `.`).
//! When `LINARB_SMOKE_BASELINE` names an earlier `BENCH_<n>.json`, the
//! run additionally asserts that wall time has not regressed past
//! `LINARB_SMOKE_TOLERANCE` (a factor, default 1.25) of the baseline —
//! the tracing layer's disabled-overhead guard.
//!
//! Regression gate: `perf_smoke --compare BENCH_<prev>.json` runs the
//! suite, then diffs the new report against the previous one with
//! [`linarb_bench::compare`], writes `BENCH_DIFF.md` next to the
//! report, and exits nonzero on a solved-count regression or a gated
//! wall regression. `--compare-only <prev> <cur>` diffs two existing
//! reports without running anything (the CI negative test injects a
//! synthetic slowdown into `<cur>` via `LINARB_SMOKE_INJECT_SLOWDOWN`
//! and asserts the gate trips). `LINARB_SMOKE_WALL_TOLERANCE` overrides
//! the gate factor (default 1.25).
//!
//! Built with `--features count-alloc`, the binary installs the
//! allocation-counting global allocator from `linarb-trace` and the
//! report's per-mode `alloc` sections carry real byte counts;
//! otherwise they read `"enabled": false`.

use linarb_baselines::{InterpConfig, UnwindInterp};
use linarb_bench::compare::{compare, BenchReport, CompareOptions};
use linarb_bench::env_or;
use linarb_portfolio::{solve_portfolio, PortfolioConfig};
use linarb_serve::replay::{run_replay, ReplayConfig};
use linarb_smt::Budget;
use linarb_solver::{CegarSolver, OracleMode, SolveResult, SolverConfig};
use linarb_suite::{even_odd, fibo_unsafe, fig1, program_a, program_c_fibo};
use linarb_trace::alloc::{self, AllocStats};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

#[cfg(feature = "count-alloc")]
#[global_allocator]
static ALLOC: linarb_trace::alloc::CountingAlloc = linarb_trace::alloc::CountingAlloc;

struct ModeRun {
    verdicts: Vec<&'static str>,
    wall: Duration,
    smt_checks: usize,
    smt_checks_skipped: usize,
    ctx_reuse_hits: usize,
    learned_clauses: usize,
    per_bench: Vec<(String, Duration, &'static str)>,
    /// Per-phase span totals (seconds) over the whole mode run, from
    /// the metrics layer: where oracle time ends and learner time
    /// begins.
    oracle_s: f64,
    learner_s: f64,
    sample_extraction_s: f64,
    /// Oracle-phase breakdown: what the SMT engine did with its time
    /// (warm-start pivots, theory frame pops, clause-DB maintenance).
    simplex_pivots: u64,
    theory_backtracks: u64,
    db_reductions: u64,
    learned_db_size: usize,
    /// Learner-phase breakdown: where `core.learner` time goes (SVM
    /// iterations, decision-tree construction, rationalization) and
    /// how much work symbolic seeding displaced.
    svm_s: f64,
    dtree_s: f64,
    rationalize_s: f64,
    /// Seed-harvest wall time. Runs *before* each benchmark's solve
    /// clock starts, so it is outside `wall` and outside the learner
    /// phase — a sibling of `wall`, not a breakdown component.
    seed_harvest_s: f64,
    seeded_atoms: usize,
    seed_hits: u64,
    seeds_pruned: usize,
    learn_memo_hits: usize,
    /// Allocation counters over the mode run (all-zero / disabled
    /// unless built with `count-alloc`).
    alloc: AllocStats,
}

fn run_mode(mode: OracleMode, suite: &[linarb_suite::Benchmark], timeout: Duration) -> ModeRun {
    let mut run = ModeRun {
        verdicts: Vec::new(),
        wall: Duration::ZERO,
        smt_checks: 0,
        smt_checks_skipped: 0,
        ctx_reuse_hits: 0,
        learned_clauses: 0,
        per_bench: Vec::new(),
        oracle_s: 0.0,
        learner_s: 0.0,
        sample_extraction_s: 0.0,
        simplex_pivots: 0,
        theory_backtracks: 0,
        db_reductions: 0,
        learned_db_size: 0,
        svm_s: 0.0,
        dtree_s: 0.0,
        rationalize_s: 0.0,
        seed_harvest_s: 0.0,
        seeded_atoms: 0,
        seed_hits: 0,
        seeds_pruned: 0,
        learn_memo_hits: 0,
        alloc: AllocStats::default(),
    };
    let alloc_before = alloc::stats();
    alloc::reset_peak();
    let scope = linarb_trace::MetricsScope::new();
    for b in suite {
        // Symbolic seeding: a cheap bounded-unwinding interpolation
        // pass donates its Farkas hyperplanes as candidate atoms. The
        // budget is conflict-limited, not wall-clock, so the harvest
        // (and hence the solver trajectory) is deterministic; its cost
        // is accounted separately in `seed_harvest_s`. The unwinding
        // must stay shallow: easy per-trace unsats barely touch the
        // conflict pool, so on nonlinear systems (`program_c_fibo`)
        // the solver-depth default of 28 × 512 traces runs for
        // minutes — depth 4 already donates the useful directions.
        let harvest_start = Instant::now();
        let seed_budget = Budget::unlimited().with_global_conflict_limit(2_000);
        let harvest_config =
            InterpConfig { max_depth: 4, max_traces: 64, ..InterpConfig::default() };
        let seed_atoms =
            UnwindInterp::new(&b.system, harvest_config).harvest_seed_atoms(&seed_budget);
        run.seed_harvest_s += harvest_start.elapsed().as_secs_f64();
        let config = SolverConfig::default().with_oracle(mode).with_seed_atoms(seed_atoms);
        let mut solver = CegarSolver::new(&b.system, config);
        let start = Instant::now();
        let verdict = match solver.solve(&Budget::timeout(timeout)) {
            SolveResult::Sat(_) => "sat",
            SolveResult::Unsat(_) => "unsat",
            SolveResult::Unknown(_) => "unknown",
        };
        let elapsed = start.elapsed();
        let stats = solver.stats();
        run.verdicts.push(verdict);
        run.wall += elapsed;
        run.smt_checks += stats.smt_checks;
        run.smt_checks_skipped += stats.smt_checks_skipped;
        run.ctx_reuse_hits += stats.ctx_reuse_hits;
        run.learned_clauses += stats.learned_clauses;
        run.simplex_pivots += stats.simplex_pivots;
        run.theory_backtracks += stats.theory_backtracks;
        run.db_reductions += stats.db_reductions;
        run.learned_db_size += stats.learned_db_size;
        run.seeded_atoms += stats.seeded_atoms;
        run.seed_hits += stats.seed_hits;
        run.seeds_pruned += stats.seeds_pruned;
        run.learn_memo_hits += stats.learn_memo_hits;
        run.per_bench.push((b.name.clone(), elapsed, verdict));
        eprintln!(
            "  {:24} {:8} {:>9.3}s  checks {:4} (skipped {:3})",
            b.name,
            verdict,
            elapsed.as_secs_f64(),
            stats.smt_checks,
            stats.smt_checks_skipped,
        );
    }
    let report = scope.take_report();
    run.oracle_s = report.timer_secs("core.oracle");
    run.learner_s = report.timer_secs("core.learner");
    run.sample_extraction_s = report.timer_secs("core.sample_extraction");
    run.svm_s = report.timer_secs("ml.svm");
    run.dtree_s = report.timer_secs("ml.dtree");
    run.rationalize_s = report.timer_secs("ml.rationalize");
    run.alloc = alloc::delta(&alloc_before, &alloc::stats());
    run
}

/// Phase-accounting invariants: breakdown components must sum to no
/// more than their parent. The learner breakdown (SVM, decision tree,
/// rationalization) always runs on the solve thread inside
/// `core.learner`; the top-level phases sum within the mode wall only
/// when a single worker thread is in play (absorbed speculative spans
/// legitimately exceed wall otherwise). Slack absorbs timer rounding.
fn check_phase_invariants(label: &str, run: &ModeRun, effective_threads: usize) {
    let slack = 0.05 + run.learner_s * 0.02;
    let learner_parts = run.svm_s + run.dtree_s + run.rationalize_s;
    assert!(
        learner_parts <= run.learner_s + slack,
        "{label}: learner breakdown ({learner_parts:.3}s = svm {:.3} + dtree {:.3} + \
         rationalize {:.3}) exceeds learner_s {:.3}s",
        run.svm_s,
        run.dtree_s,
        run.rationalize_s,
        run.learner_s
    );
    if effective_threads == 1 {
        let wall = run.wall.as_secs_f64();
        let phases = run.oracle_s + run.learner_s + run.sample_extraction_s;
        let slack = 0.10 + wall * 0.05;
        assert!(
            phases <= wall + slack,
            "{label}: phases ({phases:.3}s = oracle {:.3} + learner {:.3} + \
             sample_extraction {:.3}) exceed wall_s {wall:.3}s",
            run.oracle_s,
            run.learner_s,
            run.sample_extraction_s
        );
    }
}

struct ThreadRun {
    threads: usize,
    wall: Duration,
    verdicts: Vec<&'static str>,
    iterations: usize,
    samples: usize,
    smt_checks: usize,
    parallel_batches: usize,
    par_checks: usize,
    par_discarded: usize,
    steals: u64,
    seed_hits: u64,
    learn_memo_hits: usize,
}

fn run_thread_sweep(
    threads: usize,
    suite: &[&linarb_suite::Benchmark],
    timeout: Duration,
) -> ThreadRun {
    let mut tr = ThreadRun {
        threads,
        wall: Duration::ZERO,
        verdicts: Vec::new(),
        iterations: 0,
        samples: 0,
        smt_checks: 0,
        parallel_batches: 0,
        par_checks: 0,
        par_discarded: 0,
        steals: 0,
        seed_hits: 0,
        learn_memo_hits: 0,
    };
    for b in suite {
        let config = SolverConfig::default()
            .with_oracle(OracleMode::Incremental)
            .with_threads(threads);
        let mut solver = CegarSolver::new(&b.system, config);
        let start = Instant::now();
        let verdict = match solver.solve(&Budget::timeout(timeout)) {
            SolveResult::Sat(_) => "sat",
            SolveResult::Unsat(_) => "unsat",
            SolveResult::Unknown(_) => "unknown",
        };
        tr.wall += start.elapsed();
        let stats = solver.stats();
        tr.verdicts.push(verdict);
        tr.iterations += stats.iterations;
        tr.samples += stats.samples;
        tr.smt_checks += stats.smt_checks;
        tr.parallel_batches += stats.parallel_batches;
        tr.par_checks += stats.par_checks;
        tr.par_discarded += stats.par_discarded;
        tr.steals += stats.steal_count;
        tr.seed_hits += stats.seed_hits;
        tr.learn_memo_hits += stats.learn_memo_hits;
    }
    eprintln!(
        "  threads {}: {:>9.3}s  batches {:4}  prechecks {:4} ({} discarded)  steals {}",
        threads,
        tr.wall.as_secs_f64(),
        tr.parallel_batches,
        tr.par_checks,
        tr.par_discarded,
        tr.steals,
    );
    tr
}

/// `BENCH_<n>.json` slot after the highest existing index in `dir`
/// (not the first unused one: earlier reports may have been pruned
/// from the tree, and report numbering must keep moving forward so
/// `BENCH_<n>` always succeeds `BENCH_<n-1>` chronologically).
fn next_report_path(dir: &PathBuf) -> PathBuf {
    let max = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            name.strip_prefix("BENCH_")?.strip_suffix(".json")?.parse::<u64>().ok()
        })
        .max();
    dir.join(format!("BENCH_{}.json", max.map_or(0, |m| m + 1)))
}

/// Reads `fresh.wall_s + incremental.wall_s` out of an earlier
/// `BENCH_<n>.json` report (any PR-2-era or later shape).
fn baseline_wall_s(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = linarb_trace::json::parse(&text).ok()?;
    let mode_wall = |m: &str| doc.get(m)?.get("wall_s")?.as_f64();
    Some(mode_wall("fresh")? + mode_wall("incremental")?)
}

/// Loads a BENCH report from disk into the comparison model.
fn load_report(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    BenchReport::parse(path, &text)
        .unwrap_or_else(|| panic!("{path} is not a BENCH report"))
}

/// Diffs `cur` against `prev`, writes `BENCH_DIFF.md` into `out_dir`,
/// and reports whether the regression gate passed.
fn run_compare(prev: &BenchReport, cur: &BenchReport, out_dir: &PathBuf) -> bool {
    let opts = CompareOptions {
        wall_tolerance: env_or("LINARB_SMOKE_WALL_TOLERANCE", 1.25f64),
        ..CompareOptions::default()
    };
    let cmp = compare(prev, cur, opts);
    let _ = std::fs::create_dir_all(out_dir);
    let diff_path = out_dir.join("BENCH_DIFF.md");
    std::fs::write(&diff_path, &cmp.markdown).expect("write BENCH_DIFF.md");
    if cmp.passed() {
        eprintln!(
            "compare: PASS vs {} ({} advisory warnings) -> {}",
            prev.label,
            cmp.warnings.len(),
            diff_path.display()
        );
    } else {
        eprintln!("compare: FAIL vs {} -> {}", prev.label, diff_path.display());
        for f in &cmp.failures {
            eprintln!("  regression: {f}");
        }
    }
    cmp.passed()
}

fn main() -> ExitCode {
    linarb_trace::init_from_env();
    let timeout = Duration::from_millis(env_or("LINARB_SMOKE_TIMEOUT_MS", 60_000u64));
    let out_dir = PathBuf::from(
        std::env::var("LINARB_SMOKE_OUT_DIR").unwrap_or_else(|_| ".".to_string()),
    );

    // `--compare <prev>` gates the fresh run below against an earlier
    // report; `--compare-only <prev> <cur>` just diffs two existing
    // reports (the CI negative test injects a synthetic slowdown into
    // <cur> via LINARB_SMOKE_INJECT_SLOWDOWN and expects failure).
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut compare_prev: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--compare" => {
                compare_prev =
                    Some(argv.get(i + 1).expect("--compare needs a report path").clone());
                i += 2;
            }
            "--compare-only" => {
                let prev = load_report(argv.get(i + 1).expect("--compare-only needs <prev>"));
                let mut cur =
                    load_report(argv.get(i + 2).expect("--compare-only needs <cur>"));
                let factor: f64 = env_or("LINARB_SMOKE_INJECT_SLOWDOWN", 1.0f64);
                if factor != 1.0 {
                    eprintln!("injecting {factor}x synthetic slowdown into {}", cur.label);
                    cur.inject_slowdown(factor);
                }
                let ok = run_compare(&prev, &cur, &out_dir);
                return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
            }
            other => panic!("unknown argument {other}"),
        }
    }

    // A selection that exercises the incremental machinery: loop
    // invariants needing many refinements (fig1, program_a, jm2006,
    // hhk2008), recursion (fibo, even_odd), an unsat instance
    // (fibo_unsafe), and quick sanity cases. `program_a` appears in
    // both its mini-C form and the paper's CHC-direct form — the two
    // encodings stress the oracle quite differently.
    let program_a_chc = linarb_suite::Benchmark::from_chc(
        "program_a_chc",
        linarb_suite::Category::Paper,
        linarb_suite::Expected::Safe,
        r#"
        (declare-fun inv (Int Int) Bool)
        (assert (forall ((x Int) (y Int)) (=> (= x 0) (inv x y))))
        (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
            (=> (and (inv x y) (distinct y 0)
                     (or (and (< y 0) (= x1 (- x 1)) (= y1 (+ y 1)))
                         (and (>= y 0) (= x1 (+ x 1)) (= y1 (- y 1)))))
                (inv x1 y1))))
        (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
            (=> (and (inv x y) (distinct y 0)
                     (or (and (< y 0) (= x1 (- x 1)) (= y1 (+ y 1)))
                         (and (>= y 0) (= x1 (+ x 1)) (= y1 (- y 1))))
                     (distinct y1 0))
                (distinct x1 0))))
        "#,
    );
    let suite: Vec<linarb_suite::Benchmark> = vec![
        fig1(),
        program_a(),
        program_a_chc,
        program_c_fibo(),
        fibo_unsafe(),
        even_odd(),
        linarb_suite::cggmp2005(),
        linarb_suite::jm2006(),
        linarb_suite::hhk2008(),
        linarb_suite::invgen_sum(),
        linarb_suite::half_counter(),
    ];

    eprintln!("== fresh oracle ==");
    let fresh = run_mode(OracleMode::Fresh, &suite, timeout);
    eprintln!("== incremental oracle ==");
    let inc = run_mode(OracleMode::Incremental, &suite, timeout);

    // Phase accounting must be internally consistent before it is
    // published (the BENCH_7 seed-harvest misfiling class of bug).
    let effective_threads = SolverConfig::default().threads;
    check_phase_invariants("fresh", &fresh, effective_threads);
    check_phase_invariants("incremental", &inc, effective_threads);

    // Definite verdicts must never contradict each other (one mode
    // may time out where the other solves; that is a perf difference,
    // not a soundness one — the dedicated differential test asserts
    // exact agreement on instances both modes finish).
    for (i, b) in suite.iter().enumerate() {
        let (f, g) = (fresh.verdicts[i], inc.verdicts[i]);
        assert!(
            f == g || f == "unknown" || g == "unknown",
            "oracle modes contradict on {}: fresh={f} incremental={g}",
            b.name
        );
    }

    // Parallel clause checking sweep: the multi-clause instances the
    // incremental oracle solves, re-run at 1/2/4/8 worker threads.
    // Verdicts and trajectory statistics must be identical at every
    // thread count — that is the determinism contract, asserted hard
    // below. Speedup is reported but only warned about: it depends on
    // how many physical cores the machine has.
    let par_suite: Vec<&linarb_suite::Benchmark> = suite
        .iter()
        .enumerate()
        .filter(|(i, b)| inc.verdicts[*i] != "unknown" && b.system.clauses().len() >= 3)
        .map(|(_, b)| b)
        .collect();
    eprintln!("== thread sweep ({} benchmarks) ==", par_suite.len());
    let thread_runs: Vec<ThreadRun> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| run_thread_sweep(t, &par_suite, timeout))
        .collect();
    let base = &thread_runs[0];
    let mut deterministic = true;
    for tr in &thread_runs[1..] {
        for (i, b) in par_suite.iter().enumerate() {
            let (v1, vk) = (base.verdicts[i], tr.verdicts[i]);
            assert!(
                v1 == vk || v1 == "unknown" || vk == "unknown",
                "thread counts contradict on {}: 1t={v1} {}t={vk}",
                b.name,
                tr.threads
            );
            if v1 == "unknown" || vk == "unknown" {
                // A budget trip is wall-clock-dependent, so a timed-out
                // run has no deterministic trajectory to compare.
                deterministic = false;
            }
        }
        if base.verdicts.iter().chain(&tr.verdicts).all(|v| *v != "unknown") {
            assert_eq!(
                (base.iterations, base.samples, base.smt_checks),
                (tr.iterations, tr.samples, tr.smt_checks),
                "trajectory diverged between 1 and {} threads",
                tr.threads
            );
            // Seeding bookkeeping is part of the trajectory too: hits
            // and memo replays must not depend on the thread count.
            assert_eq!(
                (base.seed_hits, base.learn_memo_hits),
                (tr.seed_hits, tr.learn_memo_hits),
                "seed trajectory diverged between 1 and {} threads",
                tr.threads
            );
        }
    }

    // Parallel anomalies become structured report entries instead of
    // transient stderr lines, so the regression harness (and anyone
    // reading the committed report) sees them.
    let mut speedup_warnings: Vec<String> = Vec::new();
    let base_wall = base.wall.as_secs_f64();
    for tr in &thread_runs[1..] {
        let wall = tr.wall.as_secs_f64();
        if wall > base_wall * 1.05 {
            speedup_warnings.push(format!(
                "{{\"kind\": \"parallel_slowdown\", \"threads\": {}, \"wall_s\": {:.3}, \
                 \"baseline_wall_s\": {:.3}, \"ratio\": {:.3}}}",
                tr.threads,
                wall,
                base_wall,
                wall / base_wall.max(1e-9)
            ));
        }
    }
    let wall_4t = thread_runs
        .iter()
        .find(|t| t.threads == 4)
        .map(|t| t.wall.as_secs_f64())
        .unwrap_or(f64::INFINITY);
    let speedup_4t = base_wall / wall_4t.max(1e-9);
    if speedup_4t < 1.3 {
        speedup_warnings.push(format!(
            "{{\"kind\": \"low_4t_speedup\", \"speedup_4t\": {speedup_4t:.3}, \
             \"target\": 1.3}}"
        ));
        eprintln!(
            "warning: 4-thread speedup {speedup_4t:.2}x is below the 1.3x target \
             (expected on machines with few physical cores; \
             cross-thread determinism is asserted regardless)"
        );
    }

    // Portfolio race: the same suite plus the harder tier (instances
    // built so some non-CEGAR engine has a shortcut), each solved by
    // racing the default engine set at LINARB_SMOKE_PORTFOLIO_THREADS
    // workers (default 4). Verdicts are certificate-checked inside the
    // driver and asserted against ground truth here; wall times land
    // in a mode-shaped `portfolio` report section so `--compare` gates
    // them against the previous report from BENCH_9 on.
    let portfolio_threads = env_or("LINARB_SMOKE_PORTFOLIO_THREADS", 4usize);
    let harder = linarb_suite::harder_tier(7);
    eprintln!(
        "== portfolio ({} threads, {} suite + {} harder-tier) ==",
        portfolio_threads,
        suite.len(),
        harder.len()
    );
    let mut port_rows: Vec<(String, Duration, &'static str, String)> = Vec::new();
    let mut port_wall = Duration::ZERO;
    for b in suite.iter().chain(harder.iter()) {
        let config = PortfolioConfig::from_env().with_threads(portfolio_threads);
        let start = Instant::now();
        let out = solve_portfolio(&b.system, &config, &Budget::timeout(timeout));
        let elapsed = start.elapsed();
        let verdict = out.verdict.label();
        let expected = match b.expected {
            linarb_suite::Expected::Safe => "sat",
            linarb_suite::Expected::Unsafe => "unsat",
        };
        assert!(
            verdict == "unknown" || verdict == expected,
            "portfolio contradicts ground truth on {}: got {verdict}, expected {expected}",
            b.name
        );
        let winner = out.winner.map_or("none".to_string(), |w| w.to_string());
        eprintln!(
            "  {:24} {:8} {:>9.3}s  winner {}",
            b.name,
            verdict,
            elapsed.as_secs_f64(),
            winner
        );
        port_wall += elapsed;
        port_rows.push((b.name.clone(), elapsed, verdict, winner));
    }
    let port_solved = port_rows.iter().filter(|(_, _, v, _)| *v != "unknown").count();
    // Advisory (not a gate — the hard gate is --compare against the
    // previous report): on the subset both solve, the racing portfolio
    // should stay within 25% of the incremental single-engine walls.
    let inc_by_name: std::collections::BTreeMap<&str, (f64, &'static str)> = inc
        .per_bench
        .iter()
        .map(|(n, t, v)| (n.as_str(), (t.as_secs_f64(), *v)))
        .collect();
    let mut port_common = 0.0f64;
    let mut inc_common = 0.0f64;
    for (name, t, v, _) in &port_rows {
        if let Some((it, iv)) = inc_by_name.get(name.as_str()) {
            if *v != "unknown" && *iv != "unknown" {
                port_common += t.as_secs_f64();
                inc_common += *it;
            }
        }
    }
    if port_common > inc_common * 1.25 && port_common - inc_common > 0.25 {
        eprintln!(
            "warning: portfolio {port_common:.3}s vs single-engine {inc_common:.3}s on the \
             commonly-solved subset (>{:.0}% over)",
            (port_common / inc_common.max(1e-9) - 1.0) * 100.0
        );
    }

    // Serve replay: the daemon's structural invariant cache against a
    // mutated-variant stream (rename/reorder/scale exact-class
    // mutations plus constant perturbations; see
    // `linarb_serve::replay`). The base set is the suite minus
    // `program_a`/`jm2006`-class instances whose perturbed variants
    // are pathologically harder than the base — those belong to the
    // oracle-mode sections above, not to a cache-throughput
    // measurement. 125 variants per base × 8 bases = 1000 mutants.
    let replay_variants = env_or("LINARB_SMOKE_REPLAY_VARIANTS", 125usize);
    let replay_bases: Vec<(String, linarb_logic::ChcSystem)> = [
        fig1(),
        fibo_unsafe(),
        even_odd(),
        linarb_suite::cggmp2005(),
        linarb_suite::hhk2008(),
        linarb_suite::invgen_sum(),
        program_c_fibo(),
        linarb_suite::jm2006(),
    ]
    .into_iter()
    .map(|b| (b.name.clone(), b.system))
    .collect();
    eprintln!(
        "== serve replay ({} bases x {} variants) ==",
        replay_bases.len(),
        replay_variants
    );
    let replay_cfg = ReplayConfig { variants_per_base: replay_variants, ..ReplayConfig::default() };
    let serve_out = run_replay(&replay_bases, &replay_cfg);
    assert_eq!(
        serve_out.mismatches, 0,
        "serve cache changed a verdict against the cold engine"
    );
    let hit_rate = |hits: u64| hits as f64 / serve_out.jobs.max(1) as f64;
    eprintln!(
        "  warm {:.2}s ({:.0} solves/s, exact {} near {} miss {}) vs cold {:.2}s \
         ({:.0} solves/s) -> {:.2}x; p50 {}us p99 {}us; unknown warm {} cold {}",
        serve_out.warm.wall_s,
        serve_out.warm.throughput,
        serve_out.warm.exact_hits,
        serve_out.warm.near_hits,
        serve_out.warm.misses,
        serve_out.cold.wall_s,
        serve_out.cold.throughput,
        serve_out.speedup,
        serve_out.warm.p50_us,
        serve_out.warm.p99_us,
        serve_out.warm.unknown,
        serve_out.cold.unknown
    );

    let fresh_full = fresh.smt_checks - fresh.smt_checks_skipped;
    let inc_full = inc.smt_checks - inc.smt_checks_skipped;
    // Ratio of fresh wall to incremental wall: > 1 means the
    // incremental oracle is faster. (Previously published as the
    // ambiguously-named `speedup`; see EXPERIMENTS.md.)
    let fresh_vs_inc = fresh.wall.as_secs_f64() / inc.wall.as_secs_f64().max(1e-9);
    // Signed: positive = incremental ran *fewer* full checks than
    // fresh, negative = more (it re-explores after context resets).
    // See EXPERIMENTS.md for the sign convention.
    let check_delta = 1.0 - inc_full as f64 / fresh_full.max(1) as f64;

    // The same ratio over the commonly-solved subset. Instances where
    // *both* modes exhaust the budget contribute the same timeout to
    // each side and only dilute the ratio toward 1, so the standard
    // comparison excludes them (each mode's solved count is reported
    // separately).
    let both_solved = |i: usize| fresh.verdicts[i] != "unknown" && inc.verdicts[i] != "unknown";
    let subset_wall = |run: &ModeRun| -> f64 {
        run.per_bench
            .iter()
            .enumerate()
            .filter(|(i, _)| both_solved(*i))
            .map(|(_, (_, t, _))| t.as_secs_f64())
            .sum()
    };
    let (fresh_solved_wall, inc_solved_wall) = (subset_wall(&fresh), subset_wall(&inc));
    let solved_ratio = fresh_solved_wall / inc_solved_wall.max(1e-9);
    let count = |run: &ModeRun| run.verdicts.iter().filter(|v| **v != "unknown").count();
    let (fresh_solved, inc_solved) = (count(&fresh), count(&inc));

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"suite_size\": {},", suite.len()).unwrap();
    writeln!(json, "  \"timeout_ms\": {},", timeout.as_millis()).unwrap();
    for (label, run, full) in [("fresh", &fresh, fresh_full), ("incremental", &inc, inc_full)] {
        writeln!(json, "  \"{label}\": {{").unwrap();
        writeln!(json, "    \"wall_s\": {:.3},", run.wall.as_secs_f64()).unwrap();
        // Harvest runs before the solve clock; wall_s + seed_harvest_s
        // is the mode's true cost end to end.
        writeln!(json, "    \"seed_harvest_s\": {:.3},", run.seed_harvest_s).unwrap();
        writeln!(
            json,
            "    \"total_s\": {:.3},",
            run.wall.as_secs_f64() + run.seed_harvest_s
        )
        .unwrap();
        writeln!(json, "    \"smt_checks\": {},", run.smt_checks).unwrap();
        writeln!(json, "    \"smt_checks_skipped\": {},", run.smt_checks_skipped).unwrap();
        writeln!(json, "    \"full_smt_checks\": {full},").unwrap();
        writeln!(json, "    \"ctx_reuse_hits\": {},", run.ctx_reuse_hits).unwrap();
        writeln!(json, "    \"learned_clauses\": {},", run.learned_clauses).unwrap();
        writeln!(
            json,
            "    \"phases\": {{\"oracle_s\": {:.3}, \"learner_s\": {:.3}, \
             \"sample_extraction_s\": {:.3}}},",
            run.oracle_s, run.learner_s, run.sample_extraction_s
        )
        .unwrap();
        writeln!(
            json,
            "    \"oracle_breakdown\": {{\"simplex_pivots\": {}, \"theory_backtracks\": {}, \
             \"db_reductions\": {}, \"learned_db_size\": {}}},",
            run.simplex_pivots, run.theory_backtracks, run.db_reductions, run.learned_db_size
        )
        .unwrap();
        writeln!(
            json,
            "    \"learner_breakdown\": {{\"svm_s\": {:.3}, \"dtree_s\": {:.3}, \
             \"rationalize_s\": {:.3}, \"seeded_atoms\": {}, \
             \"seed_hits\": {}, \"seeds_pruned\": {}, \"learn_memo_hits\": {}}},",
            run.svm_s,
            run.dtree_s,
            run.rationalize_s,
            run.seeded_atoms,
            run.seed_hits,
            run.seeds_pruned,
            run.learn_memo_hits
        )
        .unwrap();
        if run.alloc.enabled {
            writeln!(
                json,
                "    \"alloc\": {{\"enabled\": true, \"total_bytes\": {}, \
                 \"peak_bytes\": {}, \"allocations\": {}}},",
                run.alloc.total_bytes, run.alloc.peak_bytes, run.alloc.allocations
            )
            .unwrap();
        } else {
            writeln!(json, "    \"alloc\": {{\"enabled\": false}},").unwrap();
        }
        let times: Vec<String> = run
            .per_bench
            .iter()
            .map(|(n, t, v)| {
                format!(
                    "{{\"name\": \"{n}\", \"wall_s\": {:.3}, \"verdict\": \"{v}\"}}",
                    t.as_secs_f64()
                )
            })
            .collect();
        writeln!(json, "    \"benchmarks\": [{}]", times.join(", ")).unwrap();
        writeln!(json, "  }},").unwrap();
    }
    writeln!(json, "  \"portfolio\": {{").unwrap();
    writeln!(json, "    \"wall_s\": {:.3},", port_wall.as_secs_f64()).unwrap();
    writeln!(json, "    \"threads\": {portfolio_threads},").unwrap();
    let rows: Vec<String> = port_rows
        .iter()
        .map(|(n, t, v, w)| {
            format!(
                "{{\"name\": \"{n}\", \"wall_s\": {:.3}, \"verdict\": \"{v}\", \
                 \"winner\": \"{w}\"}}",
                t.as_secs_f64()
            )
        })
        .collect();
    writeln!(json, "    \"benchmarks\": [{}]", rows.join(", ")).unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"portfolio_solved\": {port_solved},").unwrap();
    writeln!(json, "  \"fresh_solved\": {fresh_solved},").unwrap();
    writeln!(json, "  \"incremental_solved\": {inc_solved},").unwrap();
    writeln!(json, "  \"fresh_vs_incremental_ratio\": {fresh_vs_inc:.3},").unwrap();
    writeln!(
        json,
        "  \"solved_subset_fresh_vs_incremental_ratio\": {solved_ratio:.3},"
    )
    .unwrap();
    writeln!(json, "  \"full_check_delta\": {check_delta:.3},").unwrap();
    writeln!(json, "  \"speedup_warnings\": [{}],", speedup_warnings.join(", ")).unwrap();
    writeln!(json, "  \"serve\": {{").unwrap();
    writeln!(json, "    \"bases\": {},", serve_out.bases).unwrap();
    writeln!(json, "    \"variants_per_base\": {replay_variants},").unwrap();
    writeln!(json, "    \"jobs\": {},", serve_out.jobs).unwrap();
    for (label, side) in [("warm", &serve_out.warm), ("cold", &serve_out.cold)] {
        writeln!(
            json,
            "    \"{label}\": {{\"wall_s\": {:.3}, \"throughput\": {:.1}, \
             \"p50_us\": {}, \"p99_us\": {}, \"exact_hits\": {}, \"near_hits\": {}, \
             \"misses\": {}, \"verify_failures\": {}, \"unknown\": {}}},",
            side.wall_s,
            side.throughput,
            side.p50_us,
            side.p99_us,
            side.exact_hits,
            side.near_hits,
            side.misses,
            side.verify_failures,
            side.unknown
        )
        .unwrap();
    }
    writeln!(json, "    \"speedup\": {:.2},", serve_out.speedup).unwrap();
    writeln!(json, "    \"exact_hit_rate\": {:.3},", hit_rate(serve_out.warm.exact_hits)).unwrap();
    writeln!(json, "    \"near_hit_rate\": {:.3},", hit_rate(serve_out.warm.near_hits)).unwrap();
    writeln!(json, "    \"mismatches\": {}", serve_out.mismatches).unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"parallel\": {{").unwrap();
    let names: Vec<String> =
        par_suite.iter().map(|b| format!("\"{}\"", b.name)).collect();
    writeln!(json, "    \"suite\": [{}],", names.join(", ")).unwrap();
    writeln!(json, "    \"runs\": [").unwrap();
    for (i, tr) in thread_runs.iter().enumerate() {
        writeln!(
            json,
            "      {{\"threads\": {}, \"wall_s\": {:.3}, \"parallel_batches\": {}, \
             \"par_checks\": {}, \"par_discarded\": {}, \"steals\": {}}}{}",
            tr.threads,
            tr.wall.as_secs_f64(),
            tr.parallel_batches,
            tr.par_checks,
            tr.par_discarded,
            tr.steals,
            if i + 1 < thread_runs.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "    ],").unwrap();
    writeln!(json, "    \"deterministic\": {deterministic},").unwrap();
    writeln!(json, "    \"speedup_4t\": {speedup_4t:.3}").unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();

    // Disabled-overhead guard: with no sinks installed, the tracing
    // layer must not move these wall times. CI points this at the
    // newest pre-existing report; the tolerance absorbs machine noise.
    if let Ok(baseline_path) = std::env::var("LINARB_SMOKE_BASELINE") {
        let tolerance: f64 = env_or("LINARB_SMOKE_TOLERANCE", 1.25f64);
        match baseline_wall_s(&baseline_path) {
            Some(base) if base > 0.0 => {
                let now = fresh.wall.as_secs_f64() + inc.wall.as_secs_f64();
                let ratio = now / base;
                eprintln!(
                    "overhead check: {now:.3}s vs baseline {base:.3}s \
                     (ratio {ratio:.3}, tolerance {tolerance:.2})"
                );
                assert!(
                    ratio <= tolerance,
                    "wall-clock regressed {ratio:.3}x past baseline {baseline_path} \
                     (tolerance {tolerance:.2})"
                );
            }
            _ => eprintln!("overhead check skipped: cannot read {baseline_path}"),
        }
    }

    let _ = std::fs::create_dir_all(&out_dir);
    let path = next_report_path(&out_dir);
    std::fs::write(&path, &json).expect("write report");
    eprintln!(
        "solved {fresh_solved} (fresh) vs {inc_solved} (incremental) of {}",
        suite.len()
    );
    eprintln!(
        "fresh/incremental wall ratio {solved_ratio:.2} on the commonly-solved subset \
         ({fresh_vs_inc:.2} on the full suite incl. double timeouts; > 1 means \
         incremental is faster), full-check delta {:+.1}% -> {}",
        check_delta * 100.0,
        path.display()
    );

    // Regression gate against the previous committed report.
    if let Some(prev_path) = compare_prev {
        let prev = load_report(&prev_path);
        let cur = BenchReport::parse(
            &path.file_name().unwrap().to_string_lossy(),
            &json,
        )
        .expect("self-report must parse");
        if !run_compare(&prev, &cur, &out_dir) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
