//! Evaluation runner shared by the paper-table benches and the
//! integration tests: runs any engine on any benchmark under a
//! wall-clock budget and scores the verdict against ground truth.

pub mod compare;

use linarb_portfolio::{solve_portfolio, EngineKind, EngineVerdict, PortfolioConfig};
use linarb_smt::Budget;
use linarb_solver::{CegarSolver, SolveResult, SolverConfig};
use linarb_suite::{Benchmark, Expected};
use std::time::{Duration, Instant};

/// The engines compared in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The paper's tool: Algorithm 3 with the ML toolchain.
    LinArb,
    /// Ablation: decision-tree layer disabled (§6).
    LinArbNoDt,
    /// PIE-style enumeration learner in the same CEGAR loop.
    Pie,
    /// DIG-style template learner in the same CEGAR loop.
    Dig,
    /// PDR without must summaries (GPDR \[17\]).
    Gpdr,
    /// PDR with must summaries (Spacer \[19\]).
    Spacer,
    /// Batch unwinding interpolation (Duality \[24, 25\]).
    Duality,
    /// Trace-by-trace interpolation (UAutomizer \[16\]).
    UAutomizer,
    /// The portfolio driver racing all of the above (plus BMC); first
    /// checkable certificate wins. Race width comes from
    /// `LINARB_THREADS` (default 1 = sequential time slicing).
    Portfolio,
}

impl Engine {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Engine::LinArb => "LinearArbitrary",
            Engine::LinArbNoDt => "LinearArbitrary(noDT)",
            Engine::Pie => "PIE",
            Engine::Dig => "DIG",
            Engine::Gpdr => "GPDR",
            Engine::Spacer => "Spacer",
            Engine::Duality => "Duality",
            Engine::UAutomizer => "UAutomizer",
            Engine::Portfolio => "Portfolio",
        }
    }

    /// The portfolio engine this bench engine maps to; `None` for the
    /// full portfolio race itself.
    pub fn kind(self) -> Option<EngineKind> {
        match self {
            Engine::LinArb => Some(EngineKind::Cegar),
            Engine::LinArbNoDt => Some(EngineKind::CegarNoDt),
            Engine::Pie => Some(EngineKind::Pie),
            Engine::Dig => Some(EngineKind::Dig),
            Engine::Gpdr => Some(EngineKind::Gpdr),
            Engine::Spacer => Some(EngineKind::Spacer),
            Engine::Duality => Some(EngineKind::Duality),
            Engine::UAutomizer => Some(EngineKind::UAutomizer),
            Engine::Portfolio => None,
        }
    }
}

/// Normalized verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// System satisfiable / program safe.
    Safe,
    /// System unsatisfiable / program unsafe.
    Unsafe,
    /// No answer within budget.
    Unknown,
}

/// Result of one engine × benchmark run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The verdict.
    pub verdict: Verdict,
    /// Wall-clock time spent.
    pub time: Duration,
    /// `Some(true)` if the verdict matches ground truth, `Some(false)`
    /// if it *contradicts* it (a soundness bug!), `None` for unknown.
    pub correct: Option<bool>,
}

impl RunOutcome {
    /// Did the engine produce the right definite verdict?
    pub fn solved(&self) -> bool {
        self.correct == Some(true)
    }
}

/// Runs `engine` on `bench` under `timeout`. Dispatch goes through the
/// portfolio crate's single-engine runner (one construction site for
/// every engine's configuration); `Engine::Portfolio` races the
/// default engine set.
pub fn run_engine(engine: Engine, bench: &Benchmark, timeout: Duration) -> RunOutcome {
    let budget = Budget::timeout(timeout);
    let pconfig = PortfolioConfig::from_env();
    let start = Instant::now();
    let verdict = match engine.kind() {
        Some(kind) => match linarb_portfolio::run_engine(
            kind,
            &bench.system,
            &budget,
            None,
            pconfig.bmc_max_depth,
        ) {
            EngineVerdict::Sat(_) => Verdict::Safe,
            EngineVerdict::Unsat(_) => Verdict::Unsafe,
            EngineVerdict::Unknown(_) => Verdict::Unknown,
        },
        None => {
            let pconfig = pconfig.with_threads(env_or("LINARB_THREADS", 1usize));
            match solve_portfolio(&bench.system, &pconfig, &budget).verdict {
                EngineVerdict::Sat(_) => Verdict::Safe,
                EngineVerdict::Unsat(_) => Verdict::Unsafe,
                EngineVerdict::Unknown(_) => Verdict::Unknown,
            }
        }
    };
    let time = start.elapsed();
    let correct = match verdict {
        Verdict::Unknown => None,
        Verdict::Safe => Some(bench.expected == Expected::Safe),
        Verdict::Unsafe => Some(bench.expected == Expected::Unsafe),
    };
    RunOutcome { verdict, time, correct }
}

/// Aggregate of a suite run for one engine.
#[derive(Clone, Debug, Default)]
pub struct SuiteSummary {
    /// Benchmarks attempted.
    pub total: usize,
    /// Correct definite verdicts.
    pub solved: usize,
    /// Verdicts contradicting ground truth (must stay 0).
    pub wrong: usize,
    /// Total time over solved instances.
    pub time_solved: Duration,
}

impl SuiteSummary {
    /// Mean time per solved instance.
    pub fn mean_time_solved(&self) -> Duration {
        if self.solved == 0 {
            Duration::ZERO
        } else {
            self.time_solved / self.solved as u32
        }
    }
}

/// Runs an engine over a suite, returning per-benchmark outcomes and
/// the summary.
pub fn run_suite(
    engine: Engine,
    suite: &[Benchmark],
    timeout: Duration,
) -> (Vec<RunOutcome>, SuiteSummary) {
    let mut outcomes = Vec::new();
    let mut summary = SuiteSummary { total: suite.len(), ..SuiteSummary::default() };
    for bench in suite {
        let out = run_engine(engine, bench, timeout);
        if out.solved() {
            summary.solved += 1;
            summary.time_solved += out.time;
        } else if out.correct == Some(false) {
            summary.wrong += 1;
        }
        outcomes.push(out);
    }
    (outcomes, summary)
}

/// Reads an env var with a default (bench knobs).
pub fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The default per-benchmark timeout for table generation
/// (`LINARB_TIMEOUT_MS`, default 2000 ms; the paper used 180 s on
/// full-size suites).
pub fn default_timeout() -> Duration {
    Duration::from_millis(env_or("LINARB_TIMEOUT_MS", 2000))
}

/// Subsamples a suite deterministically to at most `n` entries,
/// keeping the category mix (every k-th element).
pub fn subsample(suite: Vec<Benchmark>, n: usize) -> Vec<Benchmark> {
    if suite.len() <= n || n == 0 {
        return suite;
    }
    let step = suite.len() as f64 / n as f64;
    let mut out = Vec::with_capacity(n);
    let mut idx = 0.0;
    while (idx as usize) < suite.len() && out.len() < n {
        out.push(suite[idx as usize].clone());
        idx += step;
    }
    out
}

/// One row of the paper's characterization tables
/// (`#L`, `#C`, `#P`, `#V`, `#S`, `#A`, `T`).
#[derive(Clone, Debug)]
pub struct CharRow {
    /// Benchmark name.
    pub name: String,
    /// Source lines.
    pub lines: usize,
    /// Clauses.
    pub clauses: usize,
    /// Unknown predicates.
    pub preds: usize,
    /// Variables.
    pub vars: usize,
    /// Samples drawn.
    pub samples: usize,
    /// Conjuncts per disjunct of the most complex interpretation.
    pub shape: Vec<usize>,
    /// Wall-clock time.
    pub time: Duration,
    /// Verdict reached.
    pub verdict: Verdict,
}

/// Runs `LinearArbitrary` on a benchmark and extracts the paper's
/// per-benchmark statistics row.
pub fn characterize(bench: &Benchmark, timeout: Duration) -> CharRow {
    let budget = Budget::timeout(timeout);
    let mut solver = CegarSolver::new(&bench.system, SolverConfig::default());
    let start = Instant::now();
    let result = solver.solve(&budget);
    let time = start.elapsed();
    let verdict = match result {
        SolveResult::Sat(_) => Verdict::Safe,
        SolveResult::Unsat(_) => Verdict::Unsafe,
        SolveResult::Unknown(_) => Verdict::Unknown,
    };
    let (lines, clauses, preds, vars) = bench.stats();
    let shape = solver
        .interpretation_shape()
        .into_values()
        .max_by_key(Vec::len)
        .unwrap_or_default();
    CharRow {
        name: bench.name.clone(),
        lines,
        clauses,
        preds,
        vars,
        samples: solver.stats().samples,
        shape,
        time,
        verdict,
    }
}
