//! Differential tests for symbolic seeding.
//!
//! Seeding changes *which* candidate atoms the learner considers, so a
//! seeded run may legitimately converge to a syntactically different
//! interpretation than an unseeded one. What must never change is the
//! verdict — and both interpretations must independently verify
//! against every clause of the system. The second test pins the
//! orthogonal contract: with seeding on (the default), the refinement
//! trajectory stays bit-identical across thread counts, because all
//! seed bookkeeping (hits, unsat-core notes, pruning) is counter-based
//! and flows through the same consumed-speculation merge path as the
//! rest of the solver state.

use linarb_logic::{ChcSystem, Interpretation};
use linarb_smt::{check_sat, Budget, SmtResult};
use linarb_solver::{CegarSolver, OracleMode, SolveResult, SolverConfig};
use linarb_suite::Benchmark;
use std::time::Duration;

fn budget() -> Budget {
    Budget::timeout(Duration::from_secs(120))
}

/// Fast-converging instances covering sat and unsat outcomes, loops,
/// recursion, and multi-predicate systems.
fn suite() -> Vec<Benchmark> {
    vec![
        linarb_suite::fig1(),
        linarb_suite::program_c_fibo(),
        linarb_suite::fibo_unsafe(),
        linarb_suite::even_odd(),
        linarb_suite::half_counter(),
        linarb_suite::cggmp2005(),
        linarb_suite::jm2006(),
    ]
}

/// Every clause must be valid under `interp`: the SMT check of the
/// clause's negation is unsat.
fn assert_verifies(name: &str, label: &str, sys: &ChcSystem, interp: &Interpretation) {
    for clause in sys.clauses() {
        let vc = sys.validity_check(clause, interp);
        match check_sat(&vc, &budget()) {
            SmtResult::Unsat => {}
            other => panic!(
                "{name} [{label}]: clause {} not valid under the returned \
                 interpretation (oracle said {})",
                clause.id.0,
                other.label()
            ),
        }
    }
}

fn solve(bench: &Benchmark, seeding: bool) -> (SolveResult, u64, usize) {
    let config = SolverConfig::default()
        .with_oracle(OracleMode::Incremental)
        .with_seeding(seeding);
    let mut solver = CegarSolver::new(&bench.system, config);
    let result = solver.solve(&budget());
    let stats = solver.stats();
    (result, stats.seed_hits, stats.seeded_atoms)
}

/// Seeded and unseeded runs must agree on the verdict, and each sat
/// interpretation must verify on its own — seeding is an accelerant,
/// never a soundness lever.
#[test]
fn seeded_and_unseeded_agree_and_both_verify() {
    for bench in suite() {
        let (seeded, _, seeded_atoms) = solve(&bench, true);
        let (unseeded, unseeded_hits, unseeded_atoms) = solve(&bench, false);
        assert_eq!(
            unseeded_atoms, 0,
            "{}: with_seeding(false) still harvested seed planes",
            bench.name
        );
        assert_eq!(
            unseeded_hits, 0,
            "{}: with_seeding(false) still used seed planes",
            bench.name
        );
        match (&seeded, &unseeded) {
            (SolveResult::Sat(si), SolveResult::Sat(ui)) => {
                assert_verifies(&bench.name, "seeded", &bench.system, si);
                assert_verifies(&bench.name, "unseeded", &bench.system, ui);
            }
            (SolveResult::Unsat(_), SolveResult::Unsat(_)) => {}
            (a, b) => panic!(
                "{}: seeding changed the verdict ({} vs {})",
                bench.name,
                verdict(a),
                verdict(b)
            ),
        }
        // Clause-level harvesting finds at least one guard or goal
        // atom on every benchmark in this suite — an all-zero count
        // would mean the harvest silently broke.
        assert!(
            seeded_atoms > 0,
            "{}: seeded run harvested no planes at all",
            bench.name
        );
    }
}

fn verdict(r: &SolveResult) -> &'static str {
    match r {
        SolveResult::Sat(_) => "sat",
        SolveResult::Unsat(_) => "unsat",
        SolveResult::Unknown(_) => "unknown",
    }
}

/// With seeding on, the 4-thread trajectory — including the seed-hit
/// and memo-replay counters — must match the 1-thread one exactly.
#[test]
fn seeding_preserves_cross_thread_determinism() {
    for bench in suite() {
        let run = |threads: usize| {
            let config = SolverConfig::default()
                .with_oracle(OracleMode::Incremental)
                .with_seeding(true)
                .with_threads(threads);
            let mut solver = CegarSolver::new(&bench.system, config);
            let result = solver.solve(&budget());
            let s = solver.stats();
            (
                verdict(&result),
                format!("{result:?}"),
                s.iterations,
                s.smt_checks,
                s.samples,
                s.learn_calls,
                s.seed_hits,
                s.seeds_pruned,
                s.learn_memo_hits,
            )
        };
        let base = run(1);
        let par = run(4);
        assert_eq!(
            base, par,
            "{}: seeded trajectory diverged between 1 and 4 threads",
            bench.name
        );
    }
}
