//! Differential test for the online DPLL(T) engine.
//!
//! The online engine (persistent theory context consulted inside the
//! SAT search, theory conflicts learned mid-search, simplex
//! warm-starts) must be observationally equivalent to the retained
//! offline oracle (fresh theory per full SAT model, blocking clause,
//! re-solve): identical verdicts on every instance, with every model
//! validating against the input formula and every Farkas core
//! independently checkable. Models and cores are *not* required to be
//! bit-identical across engines — which model a sat formula gets and
//! which irreducible core an unsat conjunction gets depend on the
//! simplex basis trajectory, which warm-starting intentionally changes
//! — so equivalence is semantic: same verdicts, and every certificate
//! valid (see DESIGN.md §11).

use linarb_arith::int;
use linarb_logic::{Atom, Formula, LinExpr, Var};
use linarb_smt::{
    check_conjunction, check_sat, check_sat_offline, Budget, ConjunctionResult,
    IncrementalSolver, SmtResult, TheoryLia, TheoryVerdict,
};
use linarb_solver::{verify_interpretation, CegarSolver, OracleMode, SolveResult, SolverConfig};
use linarb_suite::Expected;

fn v(i: u32) -> Var {
    Var::from_index(i)
}

/// Deterministic xorshift PRNG: the differential suite must be
/// reproducible run to run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn coeff(&mut self) -> i64 {
        (self.below(9) as i64) - 4
    }
}

/// A small random linear expression over three variables.
fn rand_expr(rng: &mut Rng) -> LinExpr {
    let mut e = LinExpr::constant(int(rng.coeff()));
    for i in 0..3 {
        e = &e + &LinExpr::var(v(i)).scale(&int(rng.coeff()));
    }
    e
}

fn rand_atom(rng: &mut Rng) -> Formula {
    let (a, b) = (rand_expr(rng), rand_expr(rng));
    match rng.below(4) {
        0 => Formula::from(Atom::ge(a, b)),
        1 => Formula::from(Atom::le(a, b)),
        2 => Formula::from(Atom::lt(a, b)),
        _ => Atom::eq_expr(a, b),
    }
}

/// A random boolean combination with bounded depth — small enough that
/// both engines decide it exactly (no branch-and-bound `Unknown`).
/// And-biased so the population carries a healthy unsat share.
fn rand_formula(rng: &mut Rng, depth: u32) -> Formula {
    if depth == 0 || rng.below(4) == 0 {
        return rand_atom(rng);
    }
    let arity = 2 + rng.below(3) as usize;
    let kids: Vec<Formula> = (0..arity).map(|_| rand_formula(rng, depth - 1)).collect();
    match rng.below(4) {
        0 | 1 => Formula::and(kids),
        2 => Formula::or(kids),
        _ => Formula::not(rand_formula(rng, depth - 1)),
    }
}

fn b() -> Budget {
    Budget::unlimited()
}

/// `check_sat` (online by default) and `check_sat_offline` agree on
/// verdicts across a randomized formula population, and every sat
/// model actually satisfies its formula.
#[test]
fn online_and_offline_check_sat_agree() {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    let (mut sat, mut unsat) = (0u32, 0u32);
    for case in 0..200 {
        let f = rand_formula(&mut rng, 2);
        let online = check_sat(&f, &b());
        let offline = check_sat_offline(&f, &b());
        match (&online, &offline) {
            (SmtResult::Sat(mo), SmtResult::Sat(mf)) => {
                sat += 1;
                assert!(f.eval(mo), "case {case}: online model must satisfy {f:?}");
                assert!(f.eval(mf), "case {case}: offline model must satisfy {f:?}");
            }
            (SmtResult::Unsat, SmtResult::Unsat) => unsat += 1,
            other => panic!("case {case}: engines disagree on {f:?}: {other:?}"),
        }
    }
    // The population must exercise both verdicts to mean anything.
    assert!(sat >= 15, "only {sat} sat cases");
    assert!(unsat >= 15, "only {unsat} unsat cases");
}

/// Two incremental contexts fed the same assertion/check sequence —
/// one forced online, one forced offline — stay in lockstep on
/// verdicts, regardless of the process-wide engine default.
#[test]
fn incremental_online_offline_lockstep() {
    let mut rng = Rng(0xd1b54a32d192ed03);
    let mut online = IncrementalSolver::new();
    online.set_online(true);
    let mut offline = IncrementalSolver::new();
    offline.set_online(false);

    // Shared skeleton, as the CEGAR loop would assert a clause.
    let skeleton = Formula::from(Atom::eq_expr(
        LinExpr::var(v(3)),
        &LinExpr::var(v(0)) + &LinExpr::constant(int(1)),
    ));
    online.assert_permanent(&skeleton);
    offline.assert_permanent(&skeleton);

    for round in 0..60 {
        let cand = rand_formula(&mut rng, 2);
        let g_on = online.push_guarded(&cand);
        let g_off = offline.push_guarded(&cand);
        let r_on = online.check(&[g_on], &b());
        let r_off = offline.check(&[g_off], &b());
        assert_eq!(
            r_on.is_sat(),
            r_off.is_sat(),
            "round {round}: verdicts diverge on {cand:?} ({r_on:?} vs {r_off:?})"
        );
        assert_eq!(r_on.is_unsat(), r_off.is_unsat(), "round {round}");
        let whole = Formula::and(vec![skeleton.clone(), cand.clone()]);
        if let SmtResult::Sat(m) = &r_on {
            assert!(whole.eval(m), "round {round}: online model must satisfy");
        }
        if let SmtResult::Sat(m) = &r_off {
            assert!(whole.eval(m), "round {round}: offline model must satisfy");
        }
    }
    assert!(
        online.num_theory_backtracks() > 0,
        "online context never exercised the theory trail"
    );
    assert_eq!(
        offline.num_theory_backtracks(),
        0,
        "offline context must not touch the warm theory"
    );
}

/// The pooled `check_conjunction` is observationally equivalent to a
/// fresh per-call theory: identical verdicts, and every certificate
/// independently valid. Cores need not be bit-identical — the pool's
/// warm basis can steer simplex to a *different* irreducible conflict
/// — so each pooled core is validated by re-asserting exactly its
/// atoms into a throwaway theory and requiring infeasibility.
#[test]
fn pooled_conjunction_matches_fresh_theory() {
    let mut rng = Rng(0x2545f4914f6cdd1d);
    for case in 0..150 {
        let n = 2 + rng.below(5) as usize;
        let atoms: Vec<Atom> = (0..n)
            .map(|_| {
                let (a, b) = (rand_expr(&mut rng), rand_expr(&mut rng));
                match rng.below(3) {
                    0 => Atom::ge(a, b),
                    1 => Atom::lt(a, b),
                    _ => Atom::le(a, b),
                }
            })
            .collect();
        let pooled = check_conjunction(&atoms, &b());

        // Reference: a throwaway theory context, as the pre-pool code
        // constructed per call.
        let mut fresh = TheoryLia::new();
        let fresh_result = (|| {
            for (tag, a) in atoms.iter().enumerate() {
                if let Err(c) = fresh.assert_atom(a, tag) {
                    return ConjunctionResult::Unsat { core: c.core(), farkas: Some(c) };
                }
            }
            match fresh.check(&b()) {
                TheoryVerdict::Feasible(m) => ConjunctionResult::Sat(m),
                TheoryVerdict::Unknown => ConjunctionResult::Unknown,
                TheoryVerdict::Infeasible { core, farkas } => {
                    ConjunctionResult::Unsat { core, farkas }
                }
            }
        })();

        match (&pooled, &fresh_result) {
            (ConjunctionResult::Sat(mp), ConjunctionResult::Sat(mf)) => {
                let all = Formula::and(atoms.iter().cloned().map(Formula::from).collect());
                assert!(all.eval(mp), "case {case}: pooled model must satisfy");
                assert!(all.eval(mf), "case {case}: fresh model must satisfy");
            }
            (
                ConjunctionResult::Unsat { core: cp, farkas: fp },
                ConjunctionResult::Unsat { core: cf, farkas: _ },
            ) => {
                for core in [cp, cf] {
                    assert!(
                        core.iter().all(|&t| t < atoms.len()),
                        "case {case}: core tag out of range"
                    );
                }
                if fp.is_some() && !cp.is_empty() {
                    // The pooled core must be infeasible on its own.
                    let core_atoms: Vec<Atom> =
                        cp.iter().map(|&t| atoms[t].clone()).collect();
                    let mut check = TheoryLia::new();
                    let mut early = false;
                    for (tag, a) in core_atoms.iter().enumerate() {
                        if check.assert_atom(a, tag).is_err() {
                            early = true;
                            break;
                        }
                    }
                    assert!(
                        early || !matches!(check.check(&b()), TheoryVerdict::Feasible(_)),
                        "case {case}: pooled core {cp:?} is not infeasible"
                    );
                }
            }
            (ConjunctionResult::Unknown, ConjunctionResult::Unknown) => {}
            other => panic!("case {case}: pooled vs fresh diverge: {other:?}"),
        }
    }
}

/// Suite-level gate: the online incremental oracle solves the
/// converging benchmarks to validated answers at 1 and 4 threads with
/// identical interpretations and trajectory statistics — clause-DB
/// reduction and theory warm-starts do not break the PR 4
/// bit-identical-across-thread-counts guarantee.
#[test]
fn online_oracle_suite_deterministic_across_threads() {
    let suite = [
        linarb_suite::fig1(),
        linarb_suite::program_c_fibo(),
        linarb_suite::fibo_unsafe(),
        linarb_suite::even_odd(),
        linarb_suite::cggmp2005(),
    ];
    for bench in suite {
        let run = |threads: usize| {
            let mut s = CegarSolver::new(
                &bench.system,
                SolverConfig::default()
                    .with_oracle(OracleMode::Incremental)
                    .with_threads(threads),
            );
            let r = s.solve(&Budget::unlimited());
            (r, s.stats().clone())
        };
        let (r1, s1) = run(1);
        let (r4, s4) = run(4);
        match (&r1, &r4) {
            (SolveResult::Sat(i1), SolveResult::Sat(i4)) => {
                assert_eq!(bench.expected, Expected::Safe, "{}", bench.name);
                assert_eq!(i1, i4, "{}: interpretations diverge across threads", bench.name);
                assert_eq!(
                    verify_interpretation(&bench.system, i1, &Budget::unlimited()),
                    Some(true),
                    "{}: interpretation must validate",
                    bench.name
                );
            }
            (SolveResult::Unsat(t1), SolveResult::Unsat(_)) => {
                assert_eq!(bench.expected, Expected::Unsafe, "{}", bench.name);
                assert!(t1.replay(&bench.system), "{}: cex must replay", bench.name);
            }
            other => panic!("{}: thread counts disagree: {other:?}", bench.name),
        }
        // Trajectory statistics are byte-identical; oracle-phase
        // diagnostics (pivots, backtracks, reductions) legitimately
        // vary with speculation and are excluded (see SolveStats docs).
        assert_eq!(s1.iterations, s4.iterations, "{}", bench.name);
        assert_eq!(s1.smt_checks, s4.smt_checks, "{}", bench.name);
        assert_eq!(s1.samples, s4.samples, "{}", bench.name);
        assert_eq!(s1.learn_calls, s4.learn_calls, "{}", bench.name);
    }
}
