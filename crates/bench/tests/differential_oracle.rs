//! Differential test for the incremental DPLL(T) oracle.
//!
//! The incremental oracle (persistent per-clause contexts, activation
//! literals, countermodel reuse) must be observationally equivalent to
//! the fresh rebuild-per-check oracle: on every instance both modes
//! finish, they must produce the same `SolveResult` classification,
//! and each answer must validate independently (interpretations are
//! re-checked clause by clause, counterexamples replayed concretely).

use linarb_smt::Budget;
use linarb_solver::{
    verify_interpretation, CegarSolver, OracleMode, SolveResult, SolverConfig,
};
use linarb_suite::{Benchmark, Category, Expected};
use std::time::Duration;

fn budget() -> Budget {
    Budget::timeout(Duration::from_secs(120))
}

/// Instances on which both oracle modes converge comfortably inside
/// the test budget, covering sat and unsat outcomes, linear loops,
/// recursion, and multi-predicate systems.
fn converging_suite() -> Vec<Benchmark> {
    vec![
        linarb_suite::fig1(),
        linarb_suite::program_a(),
        linarb_suite::program_c_fibo(),
        linarb_suite::fibo_unsafe(),
        linarb_suite::even_odd(),
        linarb_suite::half_counter(),
        linarb_suite::cggmp2005(),
        trivially_safe(),
        trivially_unsafe(),
    ]
}

fn trivially_safe() -> Benchmark {
    Benchmark::from_chc(
        "trivially_safe",
        Category::Paper,
        Expected::Safe,
        r#"
        (declare-fun p (Int) Bool)
        (assert (forall ((x Int)) (=> (= x 1) (p x))))
        (assert (forall ((x Int)) (=> (and (p x) (< x 0)) false)))
        "#,
    )
}

fn trivially_unsafe() -> Benchmark {
    Benchmark::from_chc(
        "trivially_unsafe",
        Category::Paper,
        Expected::Unsafe,
        r#"
        (declare-fun p (Int) Bool)
        (assert (forall ((x Int)) (=> (= x 1) (p x))))
        (assert (forall ((x Int)) (=> (and (p x) (> x 0)) false)))
        "#,
    )
}

fn classify(r: &SolveResult) -> &'static str {
    match r {
        SolveResult::Sat(_) => "sat",
        SolveResult::Unsat(_) => "unsat",
        SolveResult::Unknown(_) => "unknown",
    }
}

#[test]
fn incremental_matches_fresh_classification() {
    for bench in converging_suite() {
        let mut fresh = CegarSolver::new(
            &bench.system,
            SolverConfig::default().with_oracle(OracleMode::Fresh),
        );
        let rf = fresh.solve(&budget());
        let mut inc = CegarSolver::new(
            &bench.system,
            SolverConfig::default().with_oracle(OracleMode::Incremental),
        );
        let ri = inc.solve(&budget());

        assert_eq!(
            classify(&rf),
            classify(&ri),
            "{}: oracle modes disagree (fresh={rf:?} incremental={ri:?})",
            bench.name
        );

        // Both answers must hold up to independent validation — mere
        // agreement could still hide a shared wrong answer.
        for (mode, r) in [("fresh", &rf), ("incremental", &ri)] {
            match r {
                SolveResult::Sat(interp) => {
                    assert_eq!(
                        bench.expected,
                        Expected::Safe,
                        "{} [{mode}]: sat on unsafe instance",
                        bench.name
                    );
                    assert_eq!(
                        verify_interpretation(&bench.system, interp, &budget()),
                        Some(true),
                        "{} [{mode}]: interpretation must validate",
                        bench.name
                    );
                }
                SolveResult::Unsat(tree) => {
                    assert_eq!(
                        bench.expected,
                        Expected::Unsafe,
                        "{} [{mode}]: unsat on safe instance",
                        bench.name
                    );
                    assert!(
                        tree.replay(&bench.system),
                        "{} [{mode}]: cex must replay",
                        bench.name
                    );
                }
                SolveResult::Unknown(reason) => {
                    panic!("{} [{mode}]: did not converge: {reason:?}", bench.name)
                }
            }
        }

        // The incremental mode must actually exercise its machinery:
        // persistent contexts make repeat encodings cache hits, and
        // the skip paths (trivial heads, countermodel reuse) fire on
        // anything beyond a couple of iterations.
        let stats = inc.stats();
        if stats.iterations > 2 {
            assert!(
                stats.ctx_reuse_hits > 0 || stats.smt_checks_skipped > 0,
                "{}: incremental ran but reused nothing (stats: {stats:?})",
                bench.name
            );
        }
    }
}
