//! Differential tests for countermodel minimization
//! (`SolverConfig::minimize_models` / `LINARB_MODEL_MIN`).
//!
//! The heuristic pulls satisfiable oracle countermodels toward the
//! integer hull (greedy per-coordinate descent toward zero) before
//! they become learner samples. Minimized samples generalize better on
//! programs whose invariants live near small coordinates — BENCH_9's
//! incremental-mode `program_a` gap (1.8 s incremental vs 0.12 s
//! fresh) is exactly such a case — but can also steer the learner away
//! from large-coordinate invariants, so the knob defaults to off and
//! `SolveStats::{model_min_improved, model_min_kept}` record which
//! choice won each check.

use linarb_smt::Budget;
use linarb_solver::{CegarSolver, OracleMode, SolveResult, SolverConfig};
use linarb_suite::Benchmark;
use std::time::Duration;

fn budget() -> Budget {
    Budget::timeout(Duration::from_secs(120))
}

fn solve(bench: &Benchmark, minimize: bool) -> (SolveResult, linarb_solver::SolveStats) {
    let config = SolverConfig::default()
        .with_oracle(OracleMode::Incremental)
        .with_threads(1)
        .with_minimize_models(minimize);
    let mut solver = CegarSolver::new(&bench.system, config);
    let result = solver.solve(&budget());
    let stats = solver.stats().clone();
    (result, stats)
}

/// The satellite case: minimization must close the incremental-mode
/// `program_a` gap. Single-threaded runs are deterministic, so the
/// iteration-count comparison is stable, not a timing assertion.
#[test]
fn minimization_closes_the_program_a_gap() {
    let bench = linarb_suite::program_a();
    let (plain_result, plain) = solve(&bench, false);
    let (min_result, min) = solve(&bench, true);
    assert!(matches!(plain_result, SolveResult::Sat(_)), "program_a is safe");
    assert!(matches!(min_result, SolveResult::Sat(_)), "verdict must not change");
    assert_eq!(plain.model_min_improved + plain.model_min_kept, 0, "knob off records nothing");
    assert!(
        min.model_min_improved > 0,
        "program_a countermodels are non-minimal; the heuristic must improve some"
    );
    assert!(
        min.iterations < plain.iterations,
        "minimized samples must converge in fewer refinements: {} vs {}",
        min.iterations,
        plain.iterations
    );
}

/// Verdicts never change with the knob on — minimization picks among
/// countermodels of satisfiable checks, it cannot invent or lose one.
#[test]
fn minimization_preserves_verdicts() {
    for bench in [
        linarb_suite::fig1(),
        linarb_suite::fibo_unsafe(),
        linarb_suite::even_odd(),
        linarb_suite::half_counter(),
        linarb_suite::invgen_sum(),
    ] {
        let (plain, _) = solve(&bench, false);
        let (min, stats) = solve(&bench, true);
        let label = |r: &SolveResult| match r {
            SolveResult::Sat(_) => "sat",
            SolveResult::Unsat(_) => "unsat",
            SolveResult::Unknown(_) => "unknown",
        };
        assert_eq!(label(&plain), label(&min), "{}: verdict changed", bench.name);
        // Every satisfiable oracle check is recorded as either
        // improved or kept — the counters are exhaustive.
        assert!(
            stats.model_min_improved + stats.model_min_kept > 0
                || matches!(min, SolveResult::Sat(_)),
            "{}: no minimization decisions recorded",
            bench.name
        );
    }
}
