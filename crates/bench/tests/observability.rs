//! Integration tests for the observability subsystem: the
//! hierarchical self-profiler, the progress reporter, and their
//! determinism contracts across worker-thread counts.

use linarb_smt::Budget;
use linarb_solver::{CegarSolver, ProgressReporter, ProgressSnapshot, SolveResult, SolverConfig};
use linarb_suite::fig1;
use linarb_trace::{json, ProfileScope, ProfileTree};
use std::time::Instant;

fn solve_profiled(threads: usize) -> (ProfileTree, u128) {
    let b = fig1();
    let scope = ProfileScope::new();
    let start = Instant::now();
    let mut solver =
        CegarSolver::new(&b.system, SolverConfig::default().with_threads(threads));
    let result = solver.solve(&Budget::unlimited());
    let wall_us = start.elapsed().as_micros();
    assert!(matches!(result, SolveResult::Sat(_)), "fig1 must verify");
    (scope.take_tree(), wall_us)
}

#[test]
fn profile_tree_structure_and_timing() {
    let (tree, wall_us) = solve_profiled(1);
    // Structural invariant at every node; slack absorbs timer rounding.
    assert_eq!(tree.check_invariant(50), None);
    // The solve must appear as the single outermost span, with the
    // oracle phase beneath it.
    let solve = tree.root.children.get("cegar.solve").expect("cegar.solve span");
    assert_eq!(solve.calls, 1);
    let oracle = solve.children.get("core.oracle").expect("core.oracle under solve");
    assert!(oracle.calls >= 1);
    assert!(oracle.excl_us() <= oracle.incl_us);
    // Root inclusive tracks measured wall: everything the solver did
    // happened inside cegar.solve. (Generous upper slack: the process
    // may be descheduled between the timer reads.)
    let root = tree.root_incl_us() as u128;
    assert!(root <= wall_us, "profile root {root}us exceeds wall {wall_us}us");
    assert!(
        root * 100 >= wall_us * 80,
        "profile root {root}us is under 80% of wall {wall_us}us"
    );
}

#[test]
fn profile_exports_parse_and_agree() {
    let (tree, _) = solve_profiled(1);
    // JSON export parses with the in-tree reader and nests profile
    // nodes as objects with the four fields.
    let doc = json::parse(&tree.to_json()).expect("profile JSON parses");
    let tops = match doc.get("profile") {
        Some(json::Json::Arr(items)) => items,
        other => panic!("profile key must be an array, got {other:?}"),
    };
    assert!(!tops.is_empty());
    for t in tops {
        for field in ["name", "calls", "incl_us", "excl_us", "children"] {
            assert!(t.get(field).is_some(), "missing {field}");
        }
    }
    // Collapsed lines carry the linarb prefix and an exclusive-µs
    // value each; their sum equals the tree's total exclusive time.
    let collapsed = tree.to_collapsed();
    let mut sum = 0u64;
    for line in collapsed.lines() {
        let (path, val) = line.rsplit_once(' ').expect("path value");
        assert!(path.starts_with("linarb;"), "bad stack path {path}");
        sum += val.parse::<u64>().expect("exclusive micros");
    }
    fn excl_total(node: &linarb_trace::ProfileNode) -> u64 {
        node.excl_us() + node.children.values().map(excl_total).sum::<u64>()
    }
    let tree_sum: u64 = tree.root.children.values().map(excl_total).sum();
    assert_eq!(sum, tree_sum, "collapsed lines disagree with the tree");
}

#[test]
fn profile_deterministic_across_thread_counts() {
    let (t1, _) = solve_profiled(1);
    let key1 = t1.deterministic_key();
    for threads in [2, 4] {
        let (tk, _) = solve_profiled(threads);
        assert_eq!(
            key1,
            tk.deterministic_key(),
            "profile shape/calls diverged between 1 and {threads} threads"
        );
    }
}

/// Progress trajectories (everything except wall-clock-dependent
/// fields) must be identical at every worker-thread count.
#[test]
fn progress_deterministic_across_thread_counts() {
    let run = |threads: usize| -> Vec<String> {
        let b = fig1();
        let reporter = ProgressReporter::collector();
        let config = SolverConfig::default()
            .with_threads(threads)
            .with_progress(reporter.clone());
        let mut solver = CegarSolver::new(&b.system, config);
        assert!(matches!(solver.solve(&Budget::unlimited()), SolveResult::Sat(_)));
        reporter
            .take_lines()
            .iter()
            .map(|line| {
                let doc = json::parse(line).expect("progress line parses");
                let json::Json::Obj(m) = doc else { panic!("snapshot must be an object") };
                m.iter()
                    .filter(|(k, _)| !ProgressSnapshot::TIMING_FIELDS.contains(&k.as_str()))
                    .map(|(k, v)| format!("{k}={v:?}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    };
    let base = run(1);
    assert!(!base.is_empty(), "fig1 must emit progress rounds");
    for threads in [2, 4] {
        assert_eq!(base, run(threads), "trajectory diverged at {threads} threads");
    }
}

/// With no scope installed, spans must not record anything — the
/// disabled path stays an atomic load.
#[test]
fn no_scope_means_no_tree() {
    let b = fig1();
    let mut solver = CegarSolver::new(&b.system, SolverConfig::default());
    assert!(matches!(solver.solve(&Budget::unlimited()), SolveResult::Sat(_)));
    // Installing a scope *after* the solve sees an empty tree.
    let scope = ProfileScope::new();
    assert_eq!(scope.take_tree().root_incl_us(), 0);
}
