//! Portfolio driver integration tests: differential agreement with the
//! single engines, winner-certificate checking on both polarities,
//! deterministic forced-winner mode, and the harder-tier claim (the
//! portfolio solves instances the CEGAR engine alone cannot at the
//! same budget).

use linarb_bench::{run_engine, Engine, Verdict};
use linarb_portfolio::{
    check_certificate, solve_portfolio, Certificate, EngineKind, EngineVerdict, PortfolioConfig,
};
use linarb_smt::Budget;
use linarb_suite::{harder_tier, Benchmark};
use std::time::Duration;

/// The perf_smoke selection (sans the CHC-direct duplicate): loop
/// invariants needing many refinements, recursion, and an unsat
/// instance.
fn suite() -> Vec<Benchmark> {
    vec![
        linarb_suite::fig1(),
        linarb_suite::program_a(),
        linarb_suite::program_c_fibo(),
        linarb_suite::fibo_unsafe(),
        linarb_suite::even_odd(),
        linarb_suite::cggmp2005(),
        linarb_suite::jm2006(),
        linarb_suite::hhk2008(),
        linarb_suite::invgen_sum(),
        linarb_suite::half_counter(),
    ]
}

fn timeout() -> Duration {
    Duration::from_millis(linarb_bench::env_or("LINARB_TIMEOUT_MS", 3_000))
}

/// The portfolio's definite verdicts must agree with every single
/// engine's definite verdict on the whole suite (an engine timing out
/// is fine; a contradiction is a soundness bug in someone).
#[test]
fn portfolio_agrees_with_single_engines() {
    let singles = [
        Engine::LinArb,
        Engine::Pie,
        Engine::Dig,
        Engine::Spacer,
        Engine::Gpdr,
        Engine::Duality,
        Engine::UAutomizer,
    ];
    for bench in suite() {
        let port = run_engine(Engine::Portfolio, &bench, timeout());
        assert_ne!(
            port.correct,
            Some(false),
            "portfolio contradicts ground truth on {}",
            bench.name
        );
        for engine in singles {
            let single = run_engine(engine, &bench, timeout());
            assert_ne!(
                single.correct,
                Some(false),
                "{} contradicts ground truth on {}",
                engine.name(),
                bench.name
            );
            if port.verdict != Verdict::Unknown && single.verdict != Verdict::Unknown {
                assert_eq!(
                    port.verdict, single.verdict,
                    "portfolio and {} disagree on {}",
                    engine.name(),
                    bench.name
                );
            }
        }
    }
}

/// The winning verdict's certificate must check on both polarities:
/// a SAT invariant verifies clause-by-clause, an UNSAT derivation
/// replays concretely.
#[test]
fn winner_certificates_check_on_both_polarities() {
    let config = PortfolioConfig::default().with_threads(4);
    let mut sat_seen = false;
    let mut unsat_seen = false;
    for bench in suite() {
        let budget = Budget::timeout(timeout());
        let out = solve_portfolio(&bench.system, &config, &budget);
        let Some(winner) = out.winner else { continue };
        let cert = out.verdict.certificate().expect("winner must carry a certificate");
        match (&out.verdict, cert) {
            (EngineVerdict::Sat(_), Certificate::Invariant(_)) => sat_seen = true,
            (EngineVerdict::Unsat(_), Certificate::Derivation(_)) => unsat_seen = true,
            other => panic!("mismatched verdict/certificate from {winner}: {other:?}"),
        }
        assert!(
            check_certificate(&bench.system, &out.verdict, &Budget::unlimited()),
            "winning certificate from {winner} fails the independent check on {}",
            bench.name
        );
        let row = out
            .reports
            .iter()
            .find(|r| r.engine == winner)
            .expect("winner has a report row");
        assert!(row.winner && row.certified == Some(true));
    }
    assert!(sat_seen, "no SAT instance was won — suite/budget mis-set");
    assert!(unsat_seen, "no UNSAT instance was won — suite/budget mis-set");
}

/// `force: Some(engine)` (the `LINARB_PORTFOLIO_FORCE` mechanism) runs
/// exactly that engine and is reproducible run to run.
#[test]
fn forced_winner_is_deterministic() {
    let bench = linarb_suite::fig1();
    let config = PortfolioConfig {
        force: Some(EngineKind::Cegar),
        ..PortfolioConfig::default()
    };
    let a = solve_portfolio(&bench.system, &config, &Budget::timeout(timeout()));
    let b = solve_portfolio(&bench.system, &config, &Budget::timeout(timeout()));
    assert_eq!(a.winner, Some(EngineKind::Cegar));
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.verdict.label(), b.verdict.label());
    assert_eq!(a.reports.len(), 1);
    assert_eq!(b.reports.len(), 1);
}

/// `LINARB_PORTFOLIO_FORCE` reaches the config through `from_env`.
/// (Set/unset inside one test to keep the process env race-free.)
#[test]
fn force_env_parses() {
    std::env::set_var("LINARB_PORTFOLIO_FORCE", "spacer");
    let config = PortfolioConfig::from_env();
    std::env::remove_var("LINARB_PORTFOLIO_FORCE");
    assert_eq!(config.force, Some(EngineKind::Spacer));
    assert_eq!(PortfolioConfig::from_env().force, None);
}

/// The tentpole claim: at the same budget, the racing portfolio solves
/// harder-tier instances the CEGAR engine alone times out on.
#[test]
fn portfolio_beats_lone_cegar_on_harder_tier() {
    let budget_ms = linarb_bench::env_or("LINARB_TIMEOUT_MS", 2_000u64);
    let timeout = Duration::from_millis(budget_ms);
    let mut portfolio_only = 0usize;
    for bench in harder_tier(7) {
        let cegar = run_engine(Engine::LinArb, &bench, timeout);
        let port = run_engine(Engine::Portfolio, &bench, timeout);
        assert_ne!(port.correct, Some(false), "portfolio wrong on {}", bench.name);
        assert_ne!(cegar.correct, Some(false), "cegar wrong on {}", bench.name);
        eprintln!(
            "harder-tier {}: cegar {:?} in {:.2}s, portfolio {:?} in {:.2}s",
            bench.name,
            cegar.verdict,
            cegar.time.as_secs_f64(),
            port.verdict,
            port.time.as_secs_f64()
        );
        if port.solved() && !cegar.solved() {
            portfolio_only += 1;
        }
    }
    assert!(
        portfolio_only >= 1,
        "no harder-tier instance separates the portfolio from lone CEGAR"
    );
}
