//! Differential test for parallel clause checking.
//!
//! Running the CEGAR solver with `threads = 4` must be observationally
//! identical to `threads = 1` in BOTH oracle modes: same verdict, same
//! interpretation (for sat instances), same trajectory statistics, and
//! the same structured trace event sequence modulo timestamps and
//! thread ids. The speculative pre-check design makes this hold by
//! construction — workers only precompute checks the sequential merge
//! loop would issue anyway, discarding anything invalidated by an
//! interpretation change — and this test pins that contract from the
//! outside, through the public API.
//!
//! Timestamp/thread-id insensitivity is inherited from
//! [`Event::deterministic_key`], which excludes `t_us`, `dur_us`, and
//! `thread` by design.

use linarb_smt::Budget;
use linarb_solver::{CegarSolver, OracleMode, SolveResult, SolverConfig};
use linarb_suite::Benchmark;
use linarb_trace::{CollectingSink, Level, LocalSinkGuard};
use std::time::Duration;

fn budget() -> Budget {
    Budget::timeout(Duration::from_secs(120))
}

/// Fast-converging instances covering sat and unsat outcomes, linear
/// loops, recursion, and multi-predicate systems. `program_a` is
/// deliberately absent: it dominates debug-profile wall time (minutes
/// per run) and its cross-thread-count identity is already asserted in
/// the core crate's test suite.
fn suite() -> Vec<Benchmark> {
    vec![
        linarb_suite::fig1(),
        linarb_suite::program_c_fibo(),
        linarb_suite::fibo_unsafe(),
        linarb_suite::even_odd(),
        linarb_suite::half_counter(),
        linarb_suite::cggmp2005(),
    ]
}

/// Everything observable from one solve: the verdict classification,
/// the sat interpretation / unsat derivation shape, the trajectory
/// statistics, and the deterministic trace key sequence.
struct Observation {
    verdict: &'static str,
    interpretation: Option<String>,
    tree_shape: Option<(usize, usize)>,
    iterations: usize,
    smt_checks: usize,
    smt_checks_skipped: usize,
    samples: usize,
    learn_calls: usize,
    trace_keys: Vec<String>,
    parallel_batches: usize,
}

fn observe(bench: &Benchmark, mode: OracleMode, threads: usize) -> Observation {
    let sink = CollectingSink::new();
    let events = {
        // Capture at Debug so per-check oracle events (the part the
        // parallel path replays from workers) are in scope.
        let _guard =
            LocalSinkGuard::install(Box::new(sink.clone()), Level::Debug);
        let config = SolverConfig::default()
            .with_oracle(mode)
            .with_threads(threads);
        let mut solver = CegarSolver::new(&bench.system, config);
        let result = solver.solve(&budget());
        let stats = solver.stats().clone();
        (result, stats)
    };
    let (result, stats) = events;
    let (verdict, interpretation, tree_shape) = match &result {
        SolveResult::Sat(interp) => {
            ("sat", Some(format!("{interp:?}")), None)
        }
        SolveResult::Unsat(tree) => {
            ("unsat", None, Some((tree.size(), tree.depth())))
        }
        SolveResult::Unknown(_) => ("unknown", None, None),
    };
    Observation {
        verdict,
        interpretation,
        tree_shape,
        iterations: stats.iterations,
        smt_checks: stats.smt_checks,
        smt_checks_skipped: stats.smt_checks_skipped,
        samples: stats.samples,
        learn_calls: stats.learn_calls,
        trace_keys: sink
            .take()
            .iter()
            .map(|e| e.deterministic_key())
            .collect(),
        parallel_batches: stats.parallel_batches,
    }
}

fn assert_identical(bench: &Benchmark, mode: OracleMode) {
    let base = observe(bench, mode, 1);
    assert_ne!(
        base.verdict, "unknown",
        "{} [{mode:?}]: baseline did not converge",
        bench.name
    );
    assert_eq!(
        base.parallel_batches, 0,
        "{} [{mode:?}]: single-threaded run must not speculate",
        bench.name
    );
    let par = observe(bench, mode, 4);

    assert_eq!(
        base.verdict, par.verdict,
        "{} [{mode:?}]: verdict differs across thread counts",
        bench.name
    );
    assert_eq!(
        base.interpretation, par.interpretation,
        "{} [{mode:?}]: interpretation differs across thread counts",
        bench.name
    );
    assert_eq!(
        base.tree_shape, par.tree_shape,
        "{} [{mode:?}]: derivation tree differs across thread counts",
        bench.name
    );
    assert_eq!(
        (
            base.iterations,
            base.smt_checks,
            base.smt_checks_skipped,
            base.samples,
            base.learn_calls,
        ),
        (
            par.iterations,
            par.smt_checks,
            par.smt_checks_skipped,
            par.samples,
            par.learn_calls,
        ),
        "{} [{mode:?}]: trajectory statistics differ across thread counts",
        bench.name
    );
    assert_eq!(
        base.trace_keys.len(),
        par.trace_keys.len(),
        "{} [{mode:?}]: trace event counts differ across thread counts",
        bench.name
    );
    for (i, (b, p)) in
        base.trace_keys.iter().zip(&par.trace_keys).enumerate()
    {
        assert_eq!(
            b, p,
            "{} [{mode:?}]: trace diverges at event {i} of {}",
            bench.name,
            base.trace_keys.len()
        );
    }
}

#[test]
fn four_threads_match_one_thread_incremental() {
    for bench in suite() {
        assert_identical(&bench, OracleMode::Incremental);
    }
}

#[test]
fn four_threads_match_one_thread_fresh() {
    for bench in suite() {
        assert_identical(&bench, OracleMode::Fresh);
    }
}

/// The parallel machinery must actually engage on at least part of the
/// suite — a determinism test that silently never speculates would
/// prove nothing about the merge logic.
#[test]
fn parallel_path_exercised_on_suite() {
    let engaged: usize = suite()
        .iter()
        .map(|b| observe(b, OracleMode::Incremental, 4).parallel_batches)
        .sum();
    assert!(
        engaged > 0,
        "no benchmark ever formed a multi-clause frontier at 4 threads"
    );
}
