//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! This is the boolean core of linarb's lazy SMT solver
//! (`linarb-smt`): the SMT layer abstracts theory atoms into boolean
//! variables, asks this solver for a satisfying assignment, and feeds
//! back *theory conflict clauses* until the assignment is
//! theory-consistent or the formula becomes unsatisfiable.
//!
//! The design is a compact MiniSat: two-watched-literal propagation,
//! first-UIP conflict analysis with clause learning, VSIDS-style
//! activity heuristics with phase saving, and geometric restarts.
//!
//! # Examples
//!
//! ```
//! use linarb_sat::{SatSolver, SatResult};
//!
//! let mut s = SatSolver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a.positive(), b.positive()]);
//! s.add_clause(&[a.negative(), b.negative()]);
//! assert_eq!(s.solve(), SatResult::Sat);
//! let (va, vb) = (s.value(a).unwrap(), s.value(b).unwrap());
//! assert!(va != vb);
//! ```

use std::fmt;

/// A boolean variable, identified by index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BVar(u32);

impl BVar {
    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given polarity.
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A literal: a boolean variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> BVar {
        BVar(self.0 >> 1)
    }

    /// `true` for a positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negated()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "b{}", self.0 >> 1)
        } else {
            write!(f, "~b{}", self.0 >> 1)
        }
    }
}

/// Result of a [`SatSolver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found; read it with
    /// [`SatSolver::value`].
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before an answer was reached.
    Unknown,
}

const INVALID: u32 = u32::MAX;

#[derive(Clone)]
struct ClauseInfo {
    lits: Vec<Lit>,
}

/// A CDCL SAT solver over clauses of [`Lit`]s.
///
/// Cloning yields an independent solver with identical state (clause
/// database, learned clauses, activities, saved phases): the clone and
/// the original answer future queries identically. Parallel clause
/// checking uses this for speculative checks that may be discarded.
///
/// See the [crate documentation](crate) for an example.
#[derive(Clone)]
pub struct SatSolver {
    clauses: Vec<ClauseInfo>,
    /// Watch lists indexed by literal code: clauses watching that literal.
    watches: Vec<Vec<u32>>,
    /// Assignment: 0 = unassigned, 1 = true, 2 = false.
    assign: Vec<u8>,
    /// Saved phase for decisions.
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    ok: bool,
    conflict_limit: Option<u64>,
    conflicts: u64,
    propagations: u64,
    learned: u64,
    restarts: u64,
    /// Learned-clause size aggregate (count, sum, and per-solve-call
    /// min/max), kept as plain integers so the hot learning path never
    /// touches the metrics registry; flushed once per solve call.
    lsz_sum: u64,
    lsz_min: u64,
    lsz_max: u64,
    assumption_core: Vec<Lit>,
}

impl Default for SatSolver {
    fn default() -> Self {
        SatSolver::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            ok: true,
            conflict_limit: None,
            conflicts: 0,
            propagations: 0,
            learned: 0,
            restarts: 0,
            lsz_sum: 0,
            lsz_min: u64::MAX,
            lsz_max: 0,
            assumption_core: Vec::new(),
        }
    }

    /// Creates a fresh boolean variable.
    pub fn new_var(&mut self) -> BVar {
        let v = BVar(self.assign.len() as u32);
        self.assign.push(0);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(INVALID);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of conflicts encountered so far (for statistics).
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of unit propagations performed (for statistics).
    pub fn num_propagations(&self) -> u64 {
        self.propagations
    }

    /// Number of clauses learned by conflict analysis so far (for
    /// statistics). Learned clauses persist across solve calls, so
    /// this grows monotonically over an incremental session.
    pub fn num_learned(&self) -> u64 {
        self.learned
    }

    /// Number of search restarts performed so far (for statistics).
    pub fn num_restarts(&self) -> u64 {
        self.restarts
    }

    /// Number of clauses currently stored (problem + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Caps the number of conflicts a single [`solve`](Self::solve)
    /// may spend; exceeded budgets yield [`SatResult::Unknown`].
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (adding is then a no-op).
    ///
    /// Duplicate literals are removed; tautologies are ignored.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        // Restart search state: learned state is kept, trail is reset,
        // because callers add clauses between solve calls.
        self.backtrack_to(0);
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort();
        c.dedup();
        // tautology?
        if c.windows(2).any(|w| w[0] == w[1].negated()) {
            return true;
        }
        // remove literals false at level 0, detect satisfied clause
        c.retain(|&l| self.lit_value(l) != Some(false) || self.level[l.var().index()] != 0);
        if c.iter().any(|&l| self.lit_value(l) == Some(true) && self.level[l.var().index()] == 0) {
            return true;
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if self.lit_value(c[0]) == Some(false) {
                    self.ok = false;
                    return false;
                }
                if self.lit_value(c[0]).is_none() {
                    self.enqueue(c[0], INVALID);
                }
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[c[0].code()].push(idx);
                self.watches[c[1].code()].push(idx);
                self.clauses.push(ClauseInfo { lits: c });
                true
            }
        }
    }

    /// The current value of a variable. After [`SatResult::Sat`], every
    /// variable is assigned.
    pub fn value(&self, v: BVar) -> Option<bool> {
        match self.assign[v.index()] {
            1 => Some(true),
            2 => Some(false),
            _ => None,
        }
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b == l.is_positive())
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert!(self.lit_value(l).is_none());
        let v = l.var().index();
        self.assign[v] = if l.is_positive() { 1 } else { 2 };
        self.phase[v] = l.is_positive();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    fn backtrack_to(&mut self, level: usize) {
        if self.trail_lim.len() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for &l in &self.trail[lim..] {
            self.assign[l.var().index()] = 0;
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len().min(self.qhead.min(lim));
        self.qhead = lim.min(self.trail.len());
    }

    /// Unit propagation; returns a conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let falsified = l.negated();
            let mut i = 0;
            let mut watch_list = std::mem::take(&mut self.watches[falsified.code()]);
            while i < watch_list.len() {
                let ci = watch_list[i];
                let (w0, w1) = {
                    let c = &self.clauses[ci as usize];
                    (c.lits[0], c.lits[1])
                };
                // Ensure falsified literal is at position 1.
                if w0 == falsified {
                    self.clauses[ci as usize].lits.swap(0, 1);
                }
                let first = self.clauses[ci as usize].lits[0];
                debug_assert_eq!(self.clauses[ci as usize].lits[1], falsified);
                let _ = (w0, w1);
                if self.lit_value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // search replacement watch
                let mut moved = false;
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let cand = self.clauses[ci as usize].lits[k];
                    if self.lit_value(cand) != Some(false) {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[cand.code()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // clause is unit or conflicting
                if self.lit_value(first) == Some(false) {
                    // conflict: restore remaining watches
                    self.watches[falsified.code()].extend_from_slice(&watch_list[..]);
                    return Some(ci);
                }
                self.enqueue(first, ci);
                i += 1;
            }
            let existing = std::mem::take(&mut self.watches[falsified.code()]);
            watch_list.extend(existing);
            self.watches[falsified.code()] = watch_list;
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learned clause, backtrack level).
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, usize) {
        let mut learned: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause = conflict;
        let mut trail_idx = self.trail.len();
        let decision_level = self.trail_lim.len() as u32;

        loop {
            let lits: Vec<Lit> = self.clauses[clause as usize].lits.clone();
            let start = if p.is_none() { 0 } else { 1 };
            for &q in &lits[start..] {
                let v = q.var().index();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] == decision_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // pick next literal to resolve from trail
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found above").var().index();
            seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = p.expect("found above").negated();
                break;
            }
            clause = self.reason[pv];
            debug_assert_ne!(clause, INVALID, "resolved literal must have a reason");
            // skip position 0 of reason clause (the propagated literal)
        }

        // Move a max-level literal into position 1: it becomes the
        // second watch, so after backjumping the clause is unit on
        // learned[0] and the watches stay valid without rescanning.
        if learned.len() > 1 {
            let mut mi = 1;
            for i in 2..learned.len() {
                if self.level[learned[i].var().index()] > self.level[learned[mi].var().index()] {
                    mi = i;
                }
            }
            learned.swap(1, mi);
        }
        // backtrack level = max level among learned[1..] (now at [1])
        let bt = learned
            .get(1)
            .map(|l| self.level[l.var().index()] as usize)
            .unwrap_or(0);
        (learned, bt)
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SatResult {
        self.solve_under_assumptions(&[])
    }

    /// Resets the branching heuristics — activities, saved phases, and
    /// the activity increment — to their initial values, as if the
    /// solver had just been built. Clauses (including learned ones)
    /// and watcher state are untouched. Incremental callers use this
    /// to make model *selection* independent of earlier queries:
    /// without it, phase saving replays fragments of previous models,
    /// which matters when the caller samples models rather than just
    /// testing satisfiability.
    pub fn reset_decision_state(&mut self) {
        self.activity.iter_mut().for_each(|a| *a = 0.0);
        self.phase.iter_mut().for_each(|p| *p = false);
        self.var_inc = 1.0;
    }

    /// Solves the current clause set under the given assumption
    /// literals, MiniSat-style: each assumption is decided at its own
    /// pseudo-decision level before any search decision, so learned
    /// clauses, activity, and watcher state all survive the call and
    /// are reused by later calls.
    ///
    /// An `Unsat` answer that depends on the assumptions does **not**
    /// poison the solver: drop or change the assumptions and solve
    /// again. [`assumption_core`](Self::assumption_core) then holds a
    /// subset of the assumptions that is jointly inconsistent with the
    /// clause set (the *final conflict*). An empty core means the
    /// clause set is unsatisfiable regardless of assumptions.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        use linarb_trace::{metrics, Level};
        let mut span = linarb_trace::span(Level::Debug, "sat", "sat.solve");
        if !span.active() {
            return self.search(assumptions);
        }
        let before = (self.conflicts, self.propagations, self.learned, self.restarts);
        self.lsz_min = u64::MAX;
        self.lsz_max = 0;
        let lsz_sum0 = self.lsz_sum;
        let learned0 = self.learned;
        let result = self.search(assumptions);
        let d_conflicts = self.conflicts - before.0;
        let d_props = self.propagations - before.1;
        let d_learned = self.learned - before.2;
        let d_restarts = self.restarts - before.3;
        metrics::counter("sat.conflicts", d_conflicts);
        metrics::counter("sat.propagations", d_props);
        metrics::counter("sat.restarts", d_restarts);
        if d_learned > 0 {
            metrics::histogram_bulk(
                "sat.learned_size",
                self.learned - learned0,
                self.lsz_sum - lsz_sum0,
                self.lsz_min,
                self.lsz_max,
            );
        }
        span.record("result", format!("{result:?}"));
        span.record("conflicts", d_conflicts);
        span.record("propagations", d_props);
        span.record("learned", d_learned);
        span.record("restarts", d_restarts);
        result
    }

    fn search(&mut self, assumptions: &[Lit]) -> SatResult {
        self.assumption_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        let start_conflicts = self.conflicts;
        let mut restart_limit = 100u64;
        let mut conflicts_since_restart = 0u64;

        loop {
            if let Some(ci) = self.propagate() {
                self.conflicts += 1;
                conflicts_since_restart += 1;
                if let Some(limit) = self.conflict_limit {
                    if self.conflicts - start_conflicts > limit {
                        self.backtrack_to(0);
                        return SatResult::Unknown;
                    }
                }
                if self.trail_lim.is_empty() {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learned, bt) = self.analyze(ci);
                self.backtrack_to(bt);
                self.var_inc /= 0.95;
                self.learned += 1;
                let sz = learned.len() as u64;
                self.lsz_sum += sz;
                self.lsz_min = self.lsz_min.min(sz);
                self.lsz_max = self.lsz_max.max(sz);
                match learned.len() {
                    1 => {
                        if self.lit_value(learned[0]) == Some(false) {
                            self.ok = false;
                            return SatResult::Unsat;
                        }
                        if self.lit_value(learned[0]).is_none() {
                            self.enqueue(learned[0], INVALID);
                        }
                    }
                    _ => {
                        let idx = self.clauses.len() as u32;
                        self.watches[learned[0].code()].push(idx);
                        self.watches[learned[1].code()].push(idx);
                        let unit = learned[0];
                        self.clauses.push(ClauseInfo { lits: learned });
                        self.enqueue(unit, idx);
                    }
                }
            } else {
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = restart_limit + restart_limit / 2;
                    self.restarts += 1;
                    self.backtrack_to(0);
                    continue;
                }
                // establish pending assumptions as pseudo-decisions
                if self.trail_lim.len() < assumptions.len() {
                    let a = assumptions[self.trail_lim.len()];
                    match self.lit_value(a) {
                        Some(true) => {
                            // already implied: dummy level keeps the
                            // level/assumption-index correspondence
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.assumption_core = self.analyze_final(a);
                            self.backtrack_to(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, INVALID);
                        }
                    }
                    continue;
                }
                // decide
                match self.pick_branch() {
                    None => return SatResult::Sat,
                    Some(v) => {
                        self.trail_lim.push(self.trail.len());
                        let lit = v.lit(self.phase[v.index()]);
                        self.enqueue(lit, INVALID);
                    }
                }
            }
        }
    }

    /// After an assumption-dependent `Unsat` from
    /// [`solve_under_assumptions`](Self::solve_under_assumptions): a
    /// subset of the assumptions whose conjunction already contradicts
    /// the clause set. Empty when the last `Unsat` was unconditional.
    pub fn assumption_core(&self) -> &[Lit] {
        &self.assumption_core
    }

    /// Final-conflict analysis (MiniSat's `analyzeFinal`): `failed` is
    /// an assumption whose complement is implied by the clauses plus
    /// the assumptions established so far. Walks the trail backwards,
    /// expanding propagation reasons, until only pseudo-decisions
    /// (assumptions) remain — those, plus `failed` itself, form the
    /// core. Level-0 facts are unconditional and excluded.
    fn analyze_final(&self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        if self.trail_lim.is_empty() {
            return core;
        }
        let mut seen = vec![false; self.num_vars()];
        seen[failed.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            if !seen[v] {
                continue;
            }
            let r = self.reason[v];
            if r == INVALID {
                // a pseudo-decision: an assumption the conflict uses
                core.push(l);
            } else {
                // position 0 is the propagated literal; the rest are
                // the antecedents to expand
                for &q in &self.clauses[r as usize].lits[1..] {
                    if self.level[q.var().index()] > 0 {
                        seen[q.var().index()] = true;
                    }
                }
            }
        }
        core
    }

    fn pick_branch(&self) -> Option<BVar> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == 0 {
                match best {
                    Some((_, a)) if a >= self.activity[v] => {}
                    _ => best = Some((v, self.activity[v])),
                }
            }
        }
        best.map(|(v, _)| BVar(v as u32))
    }
}

impl fmt::Debug for SatSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SatSolver {{ vars: {}, clauses: {}, conflicts: {} }}",
            self.num_vars(),
            self.clauses.len(),
            self.conflicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_satisfies(s: &SatSolver, clauses: &[Vec<Lit>]) -> bool {
        clauses.iter().all(|c| {
            c.iter().any(|&l| s.value(l.var()) == Some(l.is_positive()))
        })
    }

    #[test]
    fn trivial_sat_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert!(!s.add_clause(&[a.negative()]) || s.solve() == SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive(), a.negative()]));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn xor_chain_sat() {
        // (a xor b) encoded in CNF, plus forcing units
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        s.add_clause(&[a.negative(), b.negative()]);
        s.add_clause(&[a.positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(false));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: var p_i_h means pigeon i in hole h
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..6 {
            v.push(s.new_var());
        }
        let p = |i: usize, h: usize| v[i * 2 + h];
        for i in 0..3 {
            s.add_clause(&[p(i, 0).positive(), p(i, 1).positive()]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_3_sat() {
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..9 {
            v.push(s.new_var());
        }
        let p = |i: usize, h: usize| v[i * 3 + h];
        let mut all = vec![];
        for i in 0..3 {
            let c = vec![p(i, 0).positive(), p(i, 1).positive(), p(i, 2).positive()];
            s.add_clause(&c);
            all.push(c);
        }
        for h in 0..3 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    let c = vec![p(i, h).negative(), p(j, h).negative()];
                    s.add_clause(&c);
                    all.push(c);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(model_satisfies(&s, &all));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.positive(), b.positive(), c.positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        // block current model repeatedly; 7 models of 3 vars satisfy the clause
        let mut count = 0;
        loop {
            if s.solve() != SatResult::Sat {
                break;
            }
            count += 1;
            assert!(count <= 7, "too many models");
            let block: Vec<Lit> = [a, b, c]
                .iter()
                .map(|&v| v.lit(!s.value(v).unwrap()))
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 7);
    }

    #[test]
    fn php_4_3_unsat_exercises_learning() {
        let n = 4usize;
        let m = 3usize;
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..n * m {
            v.push(s.new_var());
        }
        let p = |i: usize, h: usize| v[i * m + h];
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|h| p(i, h).positive()).collect();
            s.add_clause(&c);
        }
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.num_conflicts() > 0);
    }

    #[test]
    fn conflict_limit_returns_unknown() {
        // php 7/6 with a conflict limit of 1 should bail out
        let n = 7usize;
        let m = 6usize;
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..n * m {
            v.push(s.new_var());
        }
        let p = |i: usize, h: usize| v[i * m + h];
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|h| p(i, h).positive()).collect();
            s.add_clause(&c);
        }
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                }
            }
        }
        s.set_conflict_limit(Some(1));
        assert_eq!(s.solve(), SatResult::Unknown);
        s.set_conflict_limit(None);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_models() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve_under_assumptions(&[a.negative()]), SatResult::Sat);
        assert_eq!(s.value(a), Some(false));
        assert_eq!(s.value(b), Some(true));
        assert_eq!(s.solve_under_assumptions(&[b.negative()]), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(false));
    }

    #[test]
    fn conflicting_assumptions_do_not_poison_solver() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]); // a -> b
        // a and ~b contradict a -> b, but only under assumptions
        let r = s.solve_under_assumptions(&[a.positive(), b.negative()]);
        assert_eq!(r, SatResult::Unsat);
        let core = s.assumption_core().to_vec();
        assert!(!core.is_empty(), "assumption-dependent unsat needs a core");
        assert!(core.contains(&a.positive()) && core.contains(&b.negative()));
        // the solver must remain usable: same clauses, weaker assumptions
        assert_eq!(s.solve_under_assumptions(&[a.positive()]), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn directly_contradictory_assumptions() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        let r = s.solve_under_assumptions(&[a.positive(), a.negative()]);
        assert_eq!(r, SatResult::Unsat);
        let core = s.assumption_core();
        assert!(core.contains(&a.positive()) && core.contains(&a.negative()));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn final_conflict_core_is_minimal_subset() {
        // chain a -> b -> c; assuming {a, d, ~c} fails, and the core
        // must not mention the irrelevant assumption d.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let d = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]);
        s.add_clause(&[b.negative(), c.positive()]);
        let r = s.solve_under_assumptions(&[a.positive(), d.positive(), c.negative()]);
        assert_eq!(r, SatResult::Unsat);
        let core = s.assumption_core().to_vec();
        assert!(core.contains(&a.positive()), "core {core:?}");
        assert!(core.contains(&c.negative()), "core {core:?}");
        assert!(!core.contains(&d.positive()), "irrelevant assumption in core {core:?}");
        // and the core itself must be unsat when re-assumed
        assert_eq!(s.solve_under_assumptions(&core), SatResult::Unsat);
    }

    #[test]
    fn unconditional_unsat_reports_empty_core() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive()]);
        s.add_clause(&[a.negative()]);
        assert_eq!(s.solve_under_assumptions(&[b.positive()]), SatResult::Unsat);
        assert!(s.assumption_core().is_empty());
    }

    #[test]
    fn state_reuse_across_many_calls() {
        // php 4/3 with activation literals g_h guarding "hole h is
        // usable": repeated calls under different guard sets reuse
        // learned clauses — conflicts and learned counts must be
        // monotone, and clauses learned in earlier calls must not be
        // relearned wholesale in later identical calls.
        let n = 4usize;
        let m = 3usize;
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..n * m {
            v.push(s.new_var());
        }
        let guards: Vec<BVar> = (0..m).map(|_| s.new_var()).collect();
        let p = |i: usize, h: usize| v[i * m + h];
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|h| p(i, h).positive()).collect();
            s.add_clause(&c);
        }
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    // guarded mutual exclusion: only active when g_h
                    s.add_clause(&[
                        guards[h].negative(),
                        p(i, h).negative(),
                        p(j, h).negative(),
                    ]);
                }
            }
        }
        let all: Vec<Lit> = guards.iter().map(|g| g.positive()).collect();
        // call 1: all holes exclusive -> unsat (pigeonhole)
        assert_eq!(s.solve_under_assumptions(&all), SatResult::Unsat);
        let conflicts1 = s.num_conflicts();
        let learned1 = s.num_learned();
        assert!(learned1 > 0, "pigeonhole must learn clauses");
        // call 2: identical query; learned clauses make it cheaper
        assert_eq!(s.solve_under_assumptions(&all), SatResult::Unsat);
        let conflicts2 = s.num_conflicts() - conflicts1;
        assert!(
            conflicts2 <= conflicts1,
            "second identical call must not be harder: {conflicts2} vs {conflicts1}"
        );
        // call 3: relax one hole -> sat, state still consistent
        assert_eq!(
            s.solve_under_assumptions(&all[..m - 1]),
            SatResult::Sat
        );
        // call 4: back to the full query, still unsat
        assert_eq!(s.solve_under_assumptions(&all), SatResult::Unsat);
        assert!(s.num_learned() >= learned1);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use linarb_testutil::XorShiftRng;
        let mut rng = XorShiftRng::seed_from_u64(0xC0FFEE);
        for round in 0..200 {
            let nvars = rng.gen_range(1..=8usize);
            let nclauses = rng.gen_range(1..=24usize);
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            let mut s = SatSolver::new();
            let vars: Vec<BVar> = (0..nvars).map(|_| s.new_var()).collect();
            for _ in 0..nclauses {
                let len = rng.gen_range(1..=3usize);
                let c: Vec<Lit> = (0..len)
                    .map(|_| vars[rng.gen_range(0..nvars)].lit(rng.gen_bool(0.5)))
                    .collect();
                clauses.push(c.clone());
                s.add_clause(&c);
            }
            // brute force
            let mut brute_sat = false;
            for bits in 0..(1u32 << nvars) {
                let assign = |v: BVar| bits >> v.index() & 1 == 1;
                if clauses
                    .iter()
                    .all(|c| c.iter().any(|&l| assign(l.var()) == l.is_positive()))
                {
                    brute_sat = true;
                    break;
                }
            }
            let res = s.solve();
            if brute_sat {
                assert_eq!(res, SatResult::Sat, "round {round}");
                assert!(model_satisfies(&s, &clauses), "round {round} bad model");
            } else {
                assert_eq!(res, SatResult::Unsat, "round {round}");
            }
        }
    }

    #[test]
    fn random_assumptions_agree_with_unit_clauses() {
        // solve_under_assumptions(A) must classify exactly like a
        // fresh solver with A added as unit clauses — across repeated
        // incremental calls on the same solver.
        use linarb_testutil::XorShiftRng;
        let mut rng = XorShiftRng::seed_from_u64(0xA55);
        for round in 0..100 {
            let nvars = rng.gen_range(2..=7usize);
            let nclauses = rng.gen_range(1..=18usize);
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            let mut inc = SatSolver::new();
            let vars: Vec<BVar> = (0..nvars).map(|_| inc.new_var()).collect();
            for _ in 0..nclauses {
                let len = rng.gen_range(1..=3usize);
                let c: Vec<Lit> = (0..len)
                    .map(|_| vars[rng.gen_range(0..nvars)].lit(rng.gen_bool(0.5)))
                    .collect();
                clauses.push(c.clone());
                inc.add_clause(&c);
            }
            // several assumption queries against the same solver
            for _ in 0..4 {
                let nass = rng.gen_range(0..=nvars);
                let assumptions: Vec<Lit> = (0..nass)
                    .map(|_| vars[rng.gen_range(0..nvars)].lit(rng.gen_bool(0.5)))
                    .collect();
                let mut fresh = SatSolver::new();
                let fvars: Vec<BVar> = (0..nvars).map(|_| fresh.new_var()).collect();
                for c in &clauses {
                    let fc: Vec<Lit> = c
                        .iter()
                        .map(|l| fvars[l.var().index()].lit(l.is_positive()))
                        .collect();
                    fresh.add_clause(&fc);
                }
                for a in &assumptions {
                    fresh.add_clause(&[fvars[a.var().index()].lit(a.is_positive())]);
                }
                let ri = inc.solve_under_assumptions(&assumptions);
                let rf = fresh.solve();
                assert_eq!(ri, rf, "round {round} assumptions {assumptions:?}");
                if ri == SatResult::Sat {
                    assert!(model_satisfies(&inc, &clauses), "round {round}");
                    for a in &assumptions {
                        assert_eq!(
                            inc.value(a.var()),
                            Some(a.is_positive()),
                            "assumption not honored in model, round {round}"
                        );
                    }
                } else {
                    // the reported core must itself be unsat
                    let core = inc.assumption_core().to_vec();
                    assert_eq!(
                        inc.solve_under_assumptions(&core),
                        SatResult::Unsat,
                        "round {round}: core {core:?} not unsat"
                    );
                }
            }
        }
    }
}

/// Parses a DIMACS CNF document into a fresh solver, returning the
/// solver and the variables in index order.
///
/// # Errors
///
/// Returns a message describing the malformed line.
///
/// ```
/// use linarb_sat::{parse_dimacs, SatResult};
/// let (mut solver, vars) = parse_dimacs("p cnf 2 2\n1 2 0\n-1 -2 0\n")?;
/// assert_eq!(vars.len(), 2);
/// assert_eq!(solver.solve(), SatResult::Sat);
/// # Ok::<(), String>(())
/// ```
pub fn parse_dimacs(text: &str) -> Result<(SatSolver, Vec<BVar>), String> {
    let mut solver = SatSolver::new();
    let mut vars: Vec<BVar> = Vec::new();
    let mut clause: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if line.starts_with('p') {
            let mut parts = line.split_whitespace();
            let (_, fmt) = (parts.next(), parts.next());
            if fmt != Some("cnf") {
                return Err(format!("unsupported DIMACS format line: `{line}`"));
            }
            let nvars: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("bad variable count in `{line}`"))?;
            while vars.len() < nvars {
                vars.push(solver.new_var());
            }
            continue;
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| format!("bad literal `{tok}`"))?;
            if n == 0 {
                solver.add_clause(&clause);
                clause.clear();
                continue;
            }
            let idx = n.unsigned_abs() as usize - 1;
            while vars.len() <= idx {
                vars.push(solver.new_var());
            }
            clause.push(vars[idx].lit(n > 0));
        }
    }
    if !clause.is_empty() {
        solver.add_clause(&clause);
    }
    Ok((solver, vars))
}

#[cfg(test)]
mod dimacs_tests {
    use super::*;

    #[test]
    fn parses_and_solves() {
        let (mut s, vars) = parse_dimacs("c comment\np cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n").unwrap();
        assert_eq!(vars.len(), 3);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(vars[0]), Some(false));
        // clause 1: -2 must hold, so 3 must hold
        assert_eq!(s.value(vars[1]), Some(false));
        assert_eq!(s.value(vars[2]), Some(true));
    }

    #[test]
    fn unsat_instance() {
        let (mut s, _) = parse_dimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_dimacs("p cnf x 2").is_err());
        assert!(parse_dimacs("1 two 0").is_err());
        assert!(parse_dimacs("p dnf 1 1").is_err());
    }

    #[test]
    fn trailing_clause_without_zero() {
        let (mut s, _) = parse_dimacs("p cnf 2 1\n1 2").unwrap();
        assert_eq!(s.solve(), SatResult::Sat);
    }
}
