//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! This is the boolean core of linarb's lazy SMT solver
//! (`linarb-smt`): the SMT layer abstracts theory atoms into boolean
//! variables, asks this solver for a satisfying assignment, and feeds
//! back *theory conflict clauses* until the assignment is
//! theory-consistent or the formula becomes unsatisfiable.
//!
//! The design is a compact MiniSat: two-watched-literal propagation,
//! first-UIP conflict analysis with clause learning, VSIDS-style
//! activity heuristics with phase saving, and geometric restarts.
//!
//! # Examples
//!
//! ```
//! use linarb_sat::{SatSolver, SatResult};
//!
//! let mut s = SatSolver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a.positive(), b.positive()]);
//! s.add_clause(&[a.negative(), b.negative()]);
//! assert_eq!(s.solve(), SatResult::Sat);
//! let (va, vb) = (s.value(a).unwrap(), s.value(b).unwrap());
//! assert!(va != vb);
//! ```

use std::fmt;

/// A boolean variable, identified by index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BVar(u32);

impl BVar {
    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given polarity.
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A literal: a boolean variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> BVar {
        BVar(self.0 >> 1)
    }

    /// `true` for a positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negated()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "b{}", self.0 >> 1)
        } else {
            write!(f, "~b{}", self.0 >> 1)
        }
    }
}

/// Result of a [`SatSolver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found; read it with
    /// [`SatSolver::value`].
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before an answer was reached.
    Unknown,
}

const INVALID: u32 = u32::MAX;

/// First clause-DB reduction happens after this many learned clauses.
const REDUCE_FIRST: u64 = 300;
/// Each subsequent reduction waits this much longer (linear ramp,
/// glucose's increment). Long-lived incremental solvers accrete
/// theory-lemma clauses across checks, so the ramp must stay shallow
/// or propagation drowns in a bloated learned DB.
const REDUCE_STEP: u64 = 100;
/// Learned clauses with LBD at or below this are "glue" (they connect
/// few decision levels) and are never removed.
const GLUE_LBD: u32 = 2;

#[derive(Clone)]
struct ClauseInfo {
    lits: Vec<Lit>,
    /// Learned by conflict analysis or a theory hook (eligible for DB
    /// reduction), as opposed to a problem clause from `add_clause`.
    learned: bool,
    /// Literal block distance at learning time: the number of distinct
    /// decision levels among the literals. Low LBD predicts reuse.
    lbd: u32,
}

/// Response of a [`TheoryHook`] to a complete boolean assignment.
#[derive(Clone, Debug)]
pub enum TheoryResponse {
    /// The assignment is consistent with the theory: search ends with
    /// [`SatResult::Sat`].
    Sat,
    /// The assignment is theory-inconsistent. The clause must be over
    /// existing variables with every literal false under the current
    /// assignment; it is learned (with an LBD tag) and the search
    /// backjumps past it and continues in place.
    Conflict(Vec<Lit>),
    /// The theory gave up on this assignment (incomplete check or
    /// exhausted budget). The search returns [`SatResult::Sat`] and
    /// the caller distinguishes a real model from a pause by its own
    /// state.
    Pause,
}

/// Theory callback for online DPLL(T): consulted by
/// [`SatSolver::solve_with_theory`] whenever the search reaches a
/// complete assignment, *before* declaring it a model.
pub trait TheoryHook {
    /// Judges the solver's current complete assignment (read it with
    /// [`SatSolver::value`]).
    fn check_model(&mut self, solver: &SatSolver) -> TheoryResponse;
}

/// A CDCL SAT solver over clauses of [`Lit`]s.
///
/// Cloning yields an independent solver with identical state (clause
/// database, learned clauses, activities, saved phases): the clone and
/// the original answer future queries identically. Parallel clause
/// checking uses this for speculative checks that may be discarded.
///
/// See the [crate documentation](crate) for an example.
#[derive(Clone)]
pub struct SatSolver {
    clauses: Vec<ClauseInfo>,
    /// Watch lists indexed by literal code: clauses watching that literal.
    watches: Vec<Vec<u32>>,
    /// Assignment: 0 = unassigned, 1 = true, 2 = false.
    assign: Vec<u8>,
    /// Saved phase for decisions.
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    ok: bool,
    conflict_limit: Option<u64>,
    conflicts: u64,
    propagations: u64,
    learned: u64,
    restarts: u64,
    /// Learned-clause size aggregate (count, sum, and per-solve-call
    /// min/max), kept as plain integers so the hot learning path never
    /// touches the metrics registry; flushed once per solve call.
    lsz_sum: u64,
    lsz_min: u64,
    lsz_max: u64,
    assumption_core: Vec<Lit>,
    db_reductions: u64,
    /// Alive-learned-clause count that triggers a DB reduction (the
    /// threshold ramps by [`REDUCE_STEP`] per reduction performed).
    /// Keying on the *alive* count rather than the cumulative learned
    /// counter matters for long-lived incremental solvers: theory
    /// lemmas accrete across checks, and a cumulative trigger lets the
    /// surviving DB ratchet upward between ever-rarer reductions.
    /// Deterministic solver state (never wall time), so reduction
    /// points are identical across reruns and cloned solvers — this
    /// carries the PR 4 bit-identical-across-thread-counts guarantee.
    reduce_first: u64,
    /// Per-reduction ramp added to [`Self::reduce_first`]; a struct
    /// field (not the [`REDUCE_STEP`] const) so tests can force tiny,
    /// frequent reductions.
    reduce_step: u64,
}

impl Default for SatSolver {
    fn default() -> Self {
        SatSolver::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            ok: true,
            conflict_limit: None,
            conflicts: 0,
            propagations: 0,
            learned: 0,
            restarts: 0,
            lsz_sum: 0,
            lsz_min: u64::MAX,
            lsz_max: 0,
            assumption_core: Vec::new(),
            db_reductions: 0,
            reduce_first: REDUCE_FIRST,
            reduce_step: REDUCE_STEP,
        }
    }

    /// Creates a fresh boolean variable.
    pub fn new_var(&mut self) -> BVar {
        let v = BVar(self.assign.len() as u32);
        self.assign.push(0);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(INVALID);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of conflicts encountered so far (for statistics).
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of unit propagations performed (for statistics).
    pub fn num_propagations(&self) -> u64 {
        self.propagations
    }

    /// Number of clauses learned by conflict analysis so far (for
    /// statistics). Learned clauses persist across solve calls, so
    /// this grows monotonically over an incremental session.
    pub fn num_learned(&self) -> u64 {
        self.learned
    }

    /// Number of search restarts performed so far (for statistics).
    pub fn num_restarts(&self) -> u64 {
        self.restarts
    }

    /// Number of clauses currently stored (problem + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of clause-database reductions performed so far (for
    /// statistics).
    pub fn num_db_reductions(&self) -> u64 {
        self.db_reductions
    }

    /// Number of learned clauses currently alive in the database
    /// (unlike [`num_learned`](Self::num_learned), this shrinks when
    /// DB reduction removes clauses).
    pub fn learned_db_size(&self) -> usize {
        self.clauses.iter().filter(|c| c.learned).count()
    }

    /// Caps the number of conflicts a single [`solve`](Self::solve)
    /// may spend; exceeded budgets yield [`SatResult::Unknown`].
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (adding is then a no-op).
    ///
    /// Duplicate literals are removed; tautologies are ignored.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        // Restart search state: learned state is kept, trail is reset,
        // because callers add clauses between solve calls.
        self.backtrack_to(0);
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort();
        c.dedup();
        // tautology?
        if c.windows(2).any(|w| w[0] == w[1].negated()) {
            return true;
        }
        // remove literals false at level 0, detect satisfied clause
        c.retain(|&l| self.lit_value(l) != Some(false) || self.level[l.var().index()] != 0);
        if c.iter().any(|&l| self.lit_value(l) == Some(true) && self.level[l.var().index()] == 0) {
            return true;
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if self.lit_value(c[0]) == Some(false) {
                    self.ok = false;
                    return false;
                }
                if self.lit_value(c[0]).is_none() {
                    self.enqueue(c[0], INVALID);
                }
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[c[0].code()].push(idx);
                self.watches[c[1].code()].push(idx);
                self.clauses.push(ClauseInfo { lits: c, learned: false, lbd: 0 });
                true
            }
        }
    }

    /// The current value of a variable. After [`SatResult::Sat`], every
    /// variable is assigned.
    pub fn value(&self, v: BVar) -> Option<bool> {
        match self.assign[v.index()] {
            1 => Some(true),
            2 => Some(false),
            _ => None,
        }
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b == l.is_positive())
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert!(self.lit_value(l).is_none());
        let v = l.var().index();
        self.assign[v] = if l.is_positive() { 1 } else { 2 };
        self.phase[v] = l.is_positive();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    fn backtrack_to(&mut self, level: usize) {
        if self.trail_lim.len() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for &l in &self.trail[lim..] {
            self.assign[l.var().index()] = 0;
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len().min(self.qhead.min(lim));
        self.qhead = lim.min(self.trail.len());
    }

    /// Unit propagation; returns a conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let falsified = l.negated();
            let mut i = 0;
            let mut watch_list = std::mem::take(&mut self.watches[falsified.code()]);
            while i < watch_list.len() {
                let ci = watch_list[i];
                let (w0, w1) = {
                    let c = &self.clauses[ci as usize];
                    (c.lits[0], c.lits[1])
                };
                // Ensure falsified literal is at position 1.
                if w0 == falsified {
                    self.clauses[ci as usize].lits.swap(0, 1);
                }
                let first = self.clauses[ci as usize].lits[0];
                debug_assert_eq!(self.clauses[ci as usize].lits[1], falsified);
                let _ = (w0, w1);
                if self.lit_value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // search replacement watch
                let mut moved = false;
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let cand = self.clauses[ci as usize].lits[k];
                    if self.lit_value(cand) != Some(false) {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[cand.code()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // clause is unit or conflicting
                if self.lit_value(first) == Some(false) {
                    // conflict: restore remaining watches
                    self.watches[falsified.code()].extend_from_slice(&watch_list[..]);
                    return Some(ci);
                }
                self.enqueue(first, ci);
                i += 1;
            }
            let existing = std::mem::take(&mut self.watches[falsified.code()]);
            watch_list.extend(existing);
            self.watches[falsified.code()] = watch_list;
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learned clause, backtrack level).
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, usize) {
        let mut learned: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause = conflict;
        let mut trail_idx = self.trail.len();
        let decision_level = self.trail_lim.len() as u32;

        loop {
            let lits: Vec<Lit> = self.clauses[clause as usize].lits.clone();
            let start = if p.is_none() { 0 } else { 1 };
            for &q in &lits[start..] {
                let v = q.var().index();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] == decision_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // pick next literal to resolve from trail
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found above").var().index();
            seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = p.expect("found above").negated();
                break;
            }
            clause = self.reason[pv];
            debug_assert_ne!(clause, INVALID, "resolved literal must have a reason");
            // skip position 0 of reason clause (the propagated literal)
        }

        // Move a max-level literal into position 1: it becomes the
        // second watch, so after backjumping the clause is unit on
        // learned[0] and the watches stay valid without rescanning.
        if learned.len() > 1 {
            let mut mi = 1;
            for i in 2..learned.len() {
                if self.level[learned[i].var().index()] > self.level[learned[mi].var().index()] {
                    mi = i;
                }
            }
            learned.swap(1, mi);
        }
        // backtrack level = max level among learned[1..] (now at [1])
        let bt = learned
            .get(1)
            .map(|l| self.level[l.var().index()] as usize)
            .unwrap_or(0);
        (learned, bt)
    }

    /// Literal block distance: the number of distinct non-zero
    /// decision levels among `lits`. Must be computed while those
    /// literals are still assigned (before backjumping).
    fn lbd_of(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var().index()])
            .filter(|&lv| lv > 0)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn limit_exceeded(&self, start_conflicts: u64) -> bool {
        self.conflict_limit
            .map_or(false, |limit| self.conflicts - start_conflicts > limit)
    }

    fn record_learned(&mut self, lits: &[Lit]) {
        self.learned += 1;
        let sz = lits.len() as u64;
        self.lsz_sum += sz;
        self.lsz_min = self.lsz_min.min(sz);
        self.lsz_max = self.lsz_max.max(sz);
    }

    /// Runs a clause-DB reduction if the number of learned clauses
    /// currently alive has crossed the ramping threshold. Only call at
    /// decision level 0 with propagation complete.
    fn maybe_reduce_db(&mut self) {
        let alive = self.clauses.iter().filter(|c| c.learned).count() as u64;
        if alive < self.reduce_first + self.reduce_step * self.db_reductions {
            return;
        }
        self.reduce_db();
    }

    /// Glucose-style reduction: removes the worse half of the
    /// removable learned clauses, ranked by (LBD, size, age). Binary
    /// clauses, glue clauses (LBD ≤ [`GLUE_LBD`]), problem clauses,
    /// and clauses locked as the reason of a current assignment all
    /// survive. The ranking and the trigger depend only on
    /// deterministic solver state, so reduction points replay
    /// identically on cloned solvers and at any thread count.
    fn reduce_db(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "reduce_db needs decision level 0");
        debug_assert_eq!(self.qhead, self.trail.len(), "reduce_db needs full propagation");
        self.db_reductions += 1;
        let mut locked = vec![false; self.clauses.len()];
        for &l in &self.trail {
            let r = self.reason[l.var().index()];
            if r != INVALID {
                locked[r as usize] = true;
            }
        }
        let mut removable: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learned && !locked[i as usize] && c.lits.len() > 2 && c.lbd > GLUE_LBD
            })
            .collect();
        removable.sort_by_key(|&i| {
            let c = &self.clauses[i as usize];
            (c.lbd, c.lits.len(), i)
        });
        let keep = removable.len() - removable.len() / 2;
        if removable[keep..].is_empty() {
            return;
        }
        let mut to_drop = vec![false; self.clauses.len()];
        for &i in &removable[keep..] {
            to_drop[i as usize] = true;
        }
        // Compact the clause vector; remap surviving indices.
        let mut remap: Vec<u32> = vec![INVALID; self.clauses.len()];
        let old = std::mem::take(&mut self.clauses);
        let mut kept: Vec<ClauseInfo> = Vec::with_capacity(keep);
        for (i, c) in old.into_iter().enumerate() {
            if to_drop[i] {
                continue;
            }
            remap[i] = kept.len() as u32;
            kept.push(c);
        }
        self.clauses = kept;
        // Rebuild the watch lists: every clause still watches its
        // first two literals, so the watch invariant is preserved.
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].code()].push(i as u32);
            self.watches[c.lits[1].code()].push(i as u32);
        }
        // Reasons of assigned variables are locked and survive; any
        // other stored reason is stale and must not leak a remapped
        // index.
        for v in 0..self.reason.len() {
            if self.assign[v] != 0 && self.reason[v] != INVALID {
                self.reason[v] = remap[self.reason[v] as usize];
                debug_assert_ne!(self.reason[v], INVALID, "locked reason dropped");
            } else {
                self.reason[v] = INVALID;
            }
        }
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SatResult {
        self.solve_under_assumptions(&[])
    }

    /// Resets the branching heuristics — activities, saved phases, and
    /// the activity increment — to their initial values, as if the
    /// solver had just been built. Clauses (including learned ones)
    /// and watcher state are untouched. Incremental callers use this
    /// to make model *selection* independent of earlier queries:
    /// without it, phase saving replays fragments of previous models,
    /// which matters when the caller samples models rather than just
    /// testing satisfiability.
    pub fn reset_decision_state(&mut self) {
        self.activity.iter_mut().for_each(|a| *a = 0.0);
        self.phase.iter_mut().for_each(|p| *p = false);
        self.var_inc = 1.0;
    }

    /// Solves the current clause set under the given assumption
    /// literals, MiniSat-style: each assumption is decided at its own
    /// pseudo-decision level before any search decision, so learned
    /// clauses, activity, and watcher state all survive the call and
    /// are reused by later calls.
    ///
    /// An `Unsat` answer that depends on the assumptions does **not**
    /// poison the solver: drop or change the assumptions and solve
    /// again. [`assumption_core`](Self::assumption_core) then holds a
    /// subset of the assumptions that is jointly inconsistent with the
    /// clause set (the *final conflict*). An empty core means the
    /// clause set is unsatisfiable regardless of assumptions.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_instrumented(assumptions, None)
    }

    /// Like [`solve_under_assumptions`](Self::solve_under_assumptions),
    /// but consults `hook` at every complete assignment (online
    /// DPLL(T)): theory conflicts are learned in-search and the search
    /// backjumps and continues instead of returning. `Sat` here means
    /// the hook accepted the final assignment *or* asked for a pause —
    /// the caller tells those apart from the hook's own state.
    pub fn solve_with_theory(
        &mut self,
        assumptions: &[Lit],
        hook: &mut dyn TheoryHook,
    ) -> SatResult {
        self.solve_instrumented(assumptions, Some(hook))
    }

    fn solve_instrumented<'h>(
        &mut self,
        assumptions: &[Lit],
        mut hook: Option<&mut (dyn TheoryHook + 'h)>,
    ) -> SatResult {
        use linarb_trace::{metrics, Level};
        let mut span = linarb_trace::span(Level::Debug, "sat", "sat.solve");
        if !span.active() {
            return self.search(assumptions, hook.as_deref_mut());
        }
        let before = (self.conflicts, self.propagations, self.learned, self.restarts);
        self.lsz_min = u64::MAX;
        self.lsz_max = 0;
        let lsz_sum0 = self.lsz_sum;
        let learned0 = self.learned;
        let reductions0 = self.db_reductions;
        let result = self.search(assumptions, hook.as_deref_mut());
        let d_conflicts = self.conflicts - before.0;
        let d_props = self.propagations - before.1;
        let d_learned = self.learned - before.2;
        let d_restarts = self.restarts - before.3;
        metrics::counter("sat.conflicts", d_conflicts);
        metrics::counter("sat.propagations", d_props);
        metrics::counter("sat.restarts", d_restarts);
        metrics::counter("sat.db_reductions", self.db_reductions - reductions0);
        // Distribution (not just the total): how hard individual
        // solver calls are — the tail is what profiles can't show.
        metrics::histogram("sat.solve_conflicts", d_conflicts);
        if d_learned > 0 {
            metrics::histogram_bulk(
                "sat.learned_size",
                self.learned - learned0,
                self.lsz_sum - lsz_sum0,
                self.lsz_min,
                self.lsz_max,
            );
        }
        span.record("result", format!("{result:?}"));
        span.record("conflicts", d_conflicts);
        span.record("propagations", d_props);
        span.record("learned", d_learned);
        span.record("restarts", d_restarts);
        result
    }

    /// First-UIP learning from the conflicting clause `ci` at decision
    /// level > 0: analyze, backjump, install and assert the learned
    /// clause. Returns `false` if the clause set became unsatisfiable.
    fn handle_conflict(&mut self, ci: u32) -> bool {
        let (learned, bt) = self.analyze(ci);
        let lbd = self.lbd_of(&learned);
        self.backtrack_to(bt);
        self.var_inc /= 0.95;
        self.record_learned(&learned);
        match learned.len() {
            1 => {
                if self.lit_value(learned[0]) == Some(false) {
                    self.ok = false;
                    return false;
                }
                if self.lit_value(learned[0]).is_none() {
                    self.enqueue(learned[0], INVALID);
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[learned[0].code()].push(idx);
                self.watches[learned[1].code()].push(idx);
                let unit = learned[0];
                self.clauses.push(ClauseInfo { lits: learned, learned: true, lbd });
                self.enqueue(unit, idx);
            }
        }
        true
    }

    /// Installs a theory conflict clause (every literal false under
    /// the current complete assignment), learns it with its LBD, and
    /// backjumps so the search continues past the refuted assignment.
    /// Returns `false` if the clause set became unsatisfiable.
    fn learn_theory_conflict(&mut self, mut clause: Vec<Lit>) -> bool {
        debug_assert!(
            clause.iter().all(|&l| self.lit_value(l) == Some(false)),
            "theory conflict clause must be falsified by the current assignment"
        );
        // Literals false at level 0 are permanently false.
        clause.retain(|&l| self.level[l.var().index()] > 0);
        if clause.is_empty() {
            self.ok = false;
            return false;
        }
        // Highest decision level to position 0, second-highest to 1
        // (stable sort: ties keep the theory's deterministic order),
        // so the watches land on the right literals.
        clause.sort_by_key(|&l| std::cmp::Reverse(self.level[l.var().index()]));
        let lbd = self.lbd_of(&clause);
        self.var_inc /= 0.95;
        self.record_learned(&clause);
        if clause.len() == 1 {
            self.backtrack_to(0);
            if self.lit_value(clause[0]) == Some(false) {
                self.ok = false;
                return false;
            }
            if self.lit_value(clause[0]).is_none() {
                self.enqueue(clause[0], INVALID);
            }
            return true;
        }
        let top = self.level[clause[0].var().index()] as usize;
        let second = self.level[clause[1].var().index()] as usize;
        let first = clause[0];
        let idx = self.clauses.len() as u32;
        self.watches[clause[0].code()].push(idx);
        self.watches[clause[1].code()].push(idx);
        self.clauses.push(ClauseInfo { lits: clause, learned: true, lbd });
        if second < top {
            // Unit after backjumping below the top level.
            self.backtrack_to(second);
            self.enqueue(first, idx);
            true
        } else {
            // Two or more literals at the top level: the clause is
            // still conflicting there, so resolve it with ordinary
            // first-UIP analysis.
            self.backtrack_to(top);
            self.handle_conflict(idx)
        }
    }

    fn search<'h>(
        &mut self,
        assumptions: &[Lit],
        mut hook: Option<&mut (dyn TheoryHook + 'h)>,
    ) -> SatResult {
        self.assumption_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        self.maybe_reduce_db();
        let start_conflicts = self.conflicts;
        let mut restart_limit = 100u64;
        let mut conflicts_since_restart = 0u64;

        loop {
            if let Some(ci) = self.propagate() {
                self.conflicts += 1;
                conflicts_since_restart += 1;
                if self.limit_exceeded(start_conflicts) {
                    self.backtrack_to(0);
                    return SatResult::Unknown;
                }
                if self.trail_lim.is_empty() {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                if !self.handle_conflict(ci) {
                    return SatResult::Unsat;
                }
            } else {
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = restart_limit + restart_limit / 2;
                    self.restarts += 1;
                    self.backtrack_to(0);
                    self.maybe_reduce_db();
                    continue;
                }
                // establish pending assumptions as pseudo-decisions
                if self.trail_lim.len() < assumptions.len() {
                    let a = assumptions[self.trail_lim.len()];
                    match self.lit_value(a) {
                        Some(true) => {
                            // already implied: dummy level keeps the
                            // level/assumption-index correspondence
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.assumption_core = self.analyze_final(a);
                            self.backtrack_to(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, INVALID);
                        }
                    }
                    continue;
                }
                // decide
                match self.pick_branch() {
                    None => {
                        // Complete assignment: let the theory judge it
                        // before declaring a model.
                        let response = match hook.as_deref_mut() {
                            None => return SatResult::Sat,
                            Some(h) => h.check_model(self),
                        };
                        match response {
                            TheoryResponse::Sat | TheoryResponse::Pause => {
                                return SatResult::Sat;
                            }
                            TheoryResponse::Conflict(clause) => {
                                self.conflicts += 1;
                                conflicts_since_restart += 1;
                                if self.limit_exceeded(start_conflicts) {
                                    self.backtrack_to(0);
                                    return SatResult::Unknown;
                                }
                                if !self.learn_theory_conflict(clause) {
                                    return SatResult::Unsat;
                                }
                            }
                        }
                    }
                    Some(v) => {
                        self.trail_lim.push(self.trail.len());
                        let lit = v.lit(self.phase[v.index()]);
                        self.enqueue(lit, INVALID);
                    }
                }
            }
        }
    }

    /// After an assumption-dependent `Unsat` from
    /// [`solve_under_assumptions`](Self::solve_under_assumptions): a
    /// subset of the assumptions whose conjunction already contradicts
    /// the clause set. Empty when the last `Unsat` was unconditional.
    pub fn assumption_core(&self) -> &[Lit] {
        &self.assumption_core
    }

    /// Final-conflict analysis (MiniSat's `analyzeFinal`): `failed` is
    /// an assumption whose complement is implied by the clauses plus
    /// the assumptions established so far. Walks the trail backwards,
    /// expanding propagation reasons, until only pseudo-decisions
    /// (assumptions) remain — those, plus `failed` itself, form the
    /// core. Level-0 facts are unconditional and excluded.
    fn analyze_final(&self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        if self.trail_lim.is_empty() {
            return core;
        }
        let mut seen = vec![false; self.num_vars()];
        seen[failed.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            if !seen[v] {
                continue;
            }
            let r = self.reason[v];
            if r == INVALID {
                // a pseudo-decision: an assumption the conflict uses
                core.push(l);
            } else {
                // position 0 is the propagated literal; the rest are
                // the antecedents to expand
                for &q in &self.clauses[r as usize].lits[1..] {
                    if self.level[q.var().index()] > 0 {
                        seen[q.var().index()] = true;
                    }
                }
            }
        }
        core
    }

    fn pick_branch(&self) -> Option<BVar> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == 0 {
                match best {
                    Some((_, a)) if a >= self.activity[v] => {}
                    _ => best = Some((v, self.activity[v])),
                }
            }
        }
        best.map(|(v, _)| BVar(v as u32))
    }
}

impl fmt::Debug for SatSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SatSolver {{ vars: {}, clauses: {}, conflicts: {} }}",
            self.num_vars(),
            self.clauses.len(),
            self.conflicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_satisfies(s: &SatSolver, clauses: &[Vec<Lit>]) -> bool {
        clauses.iter().all(|c| {
            c.iter().any(|&l| s.value(l.var()) == Some(l.is_positive()))
        })
    }

    #[test]
    fn trivial_sat_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert!(!s.add_clause(&[a.negative()]) || s.solve() == SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive(), a.negative()]));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn xor_chain_sat() {
        // (a xor b) encoded in CNF, plus forcing units
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        s.add_clause(&[a.negative(), b.negative()]);
        s.add_clause(&[a.positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(false));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: var p_i_h means pigeon i in hole h
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..6 {
            v.push(s.new_var());
        }
        let p = |i: usize, h: usize| v[i * 2 + h];
        for i in 0..3 {
            s.add_clause(&[p(i, 0).positive(), p(i, 1).positive()]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_3_sat() {
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..9 {
            v.push(s.new_var());
        }
        let p = |i: usize, h: usize| v[i * 3 + h];
        let mut all = vec![];
        for i in 0..3 {
            let c = vec![p(i, 0).positive(), p(i, 1).positive(), p(i, 2).positive()];
            s.add_clause(&c);
            all.push(c);
        }
        for h in 0..3 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    let c = vec![p(i, h).negative(), p(j, h).negative()];
                    s.add_clause(&c);
                    all.push(c);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(model_satisfies(&s, &all));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.positive(), b.positive(), c.positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        // block current model repeatedly; 7 models of 3 vars satisfy the clause
        let mut count = 0;
        loop {
            if s.solve() != SatResult::Sat {
                break;
            }
            count += 1;
            assert!(count <= 7, "too many models");
            let block: Vec<Lit> = [a, b, c]
                .iter()
                .map(|&v| v.lit(!s.value(v).unwrap()))
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 7);
    }

    #[test]
    fn php_4_3_unsat_exercises_learning() {
        let n = 4usize;
        let m = 3usize;
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..n * m {
            v.push(s.new_var());
        }
        let p = |i: usize, h: usize| v[i * m + h];
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|h| p(i, h).positive()).collect();
            s.add_clause(&c);
        }
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.num_conflicts() > 0);
    }

    #[test]
    fn conflict_limit_returns_unknown() {
        // php 7/6 with a conflict limit of 1 should bail out
        let n = 7usize;
        let m = 6usize;
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..n * m {
            v.push(s.new_var());
        }
        let p = |i: usize, h: usize| v[i * m + h];
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|h| p(i, h).positive()).collect();
            s.add_clause(&c);
        }
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                }
            }
        }
        s.set_conflict_limit(Some(1));
        assert_eq!(s.solve(), SatResult::Unknown);
        s.set_conflict_limit(None);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_restrict_models() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve_under_assumptions(&[a.negative()]), SatResult::Sat);
        assert_eq!(s.value(a), Some(false));
        assert_eq!(s.value(b), Some(true));
        assert_eq!(s.solve_under_assumptions(&[b.negative()]), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(false));
    }

    #[test]
    fn conflicting_assumptions_do_not_poison_solver() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]); // a -> b
        // a and ~b contradict a -> b, but only under assumptions
        let r = s.solve_under_assumptions(&[a.positive(), b.negative()]);
        assert_eq!(r, SatResult::Unsat);
        let core = s.assumption_core().to_vec();
        assert!(!core.is_empty(), "assumption-dependent unsat needs a core");
        assert!(core.contains(&a.positive()) && core.contains(&b.negative()));
        // the solver must remain usable: same clauses, weaker assumptions
        assert_eq!(s.solve_under_assumptions(&[a.positive()]), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn directly_contradictory_assumptions() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        let r = s.solve_under_assumptions(&[a.positive(), a.negative()]);
        assert_eq!(r, SatResult::Unsat);
        let core = s.assumption_core();
        assert!(core.contains(&a.positive()) && core.contains(&a.negative()));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn final_conflict_core_is_minimal_subset() {
        // chain a -> b -> c; assuming {a, d, ~c} fails, and the core
        // must not mention the irrelevant assumption d.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let d = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]);
        s.add_clause(&[b.negative(), c.positive()]);
        let r = s.solve_under_assumptions(&[a.positive(), d.positive(), c.negative()]);
        assert_eq!(r, SatResult::Unsat);
        let core = s.assumption_core().to_vec();
        assert!(core.contains(&a.positive()), "core {core:?}");
        assert!(core.contains(&c.negative()), "core {core:?}");
        assert!(!core.contains(&d.positive()), "irrelevant assumption in core {core:?}");
        // and the core itself must be unsat when re-assumed
        assert_eq!(s.solve_under_assumptions(&core), SatResult::Unsat);
    }

    #[test]
    fn unconditional_unsat_reports_empty_core() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive()]);
        s.add_clause(&[a.negative()]);
        assert_eq!(s.solve_under_assumptions(&[b.positive()]), SatResult::Unsat);
        assert!(s.assumption_core().is_empty());
    }

    #[test]
    fn state_reuse_across_many_calls() {
        // php 4/3 with activation literals g_h guarding "hole h is
        // usable": repeated calls under different guard sets reuse
        // learned clauses — conflicts and learned counts must be
        // monotone, and clauses learned in earlier calls must not be
        // relearned wholesale in later identical calls.
        let n = 4usize;
        let m = 3usize;
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..n * m {
            v.push(s.new_var());
        }
        let guards: Vec<BVar> = (0..m).map(|_| s.new_var()).collect();
        let p = |i: usize, h: usize| v[i * m + h];
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|h| p(i, h).positive()).collect();
            s.add_clause(&c);
        }
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    // guarded mutual exclusion: only active when g_h
                    s.add_clause(&[
                        guards[h].negative(),
                        p(i, h).negative(),
                        p(j, h).negative(),
                    ]);
                }
            }
        }
        let all: Vec<Lit> = guards.iter().map(|g| g.positive()).collect();
        // call 1: all holes exclusive -> unsat (pigeonhole)
        assert_eq!(s.solve_under_assumptions(&all), SatResult::Unsat);
        let conflicts1 = s.num_conflicts();
        let learned1 = s.num_learned();
        assert!(learned1 > 0, "pigeonhole must learn clauses");
        // call 2: identical query; learned clauses make it cheaper
        assert_eq!(s.solve_under_assumptions(&all), SatResult::Unsat);
        let conflicts2 = s.num_conflicts() - conflicts1;
        assert!(
            conflicts2 <= conflicts1,
            "second identical call must not be harder: {conflicts2} vs {conflicts1}"
        );
        // call 3: relax one hole -> sat, state still consistent
        assert_eq!(
            s.solve_under_assumptions(&all[..m - 1]),
            SatResult::Sat
        );
        // call 4: back to the full query, still unsat
        assert_eq!(s.solve_under_assumptions(&all), SatResult::Unsat);
        assert!(s.num_learned() >= learned1);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use linarb_testutil::XorShiftRng;
        let mut rng = XorShiftRng::seed_from_u64(0xC0FFEE);
        for round in 0..200 {
            let nvars = rng.gen_range(1..=8usize);
            let nclauses = rng.gen_range(1..=24usize);
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            let mut s = SatSolver::new();
            let vars: Vec<BVar> = (0..nvars).map(|_| s.new_var()).collect();
            for _ in 0..nclauses {
                let len = rng.gen_range(1..=3usize);
                let c: Vec<Lit> = (0..len)
                    .map(|_| vars[rng.gen_range(0..nvars)].lit(rng.gen_bool(0.5)))
                    .collect();
                clauses.push(c.clone());
                s.add_clause(&c);
            }
            // brute force
            let mut brute_sat = false;
            for bits in 0..(1u32 << nvars) {
                let assign = |v: BVar| bits >> v.index() & 1 == 1;
                if clauses
                    .iter()
                    .all(|c| c.iter().any(|&l| assign(l.var()) == l.is_positive()))
                {
                    brute_sat = true;
                    break;
                }
            }
            let res = s.solve();
            if brute_sat {
                assert_eq!(res, SatResult::Sat, "round {round}");
                assert!(model_satisfies(&s, &clauses), "round {round} bad model");
            } else {
                assert_eq!(res, SatResult::Unsat, "round {round}");
            }
        }
    }

    #[test]
    fn random_assumptions_agree_with_unit_clauses() {
        // solve_under_assumptions(A) must classify exactly like a
        // fresh solver with A added as unit clauses — across repeated
        // incremental calls on the same solver.
        use linarb_testutil::XorShiftRng;
        let mut rng = XorShiftRng::seed_from_u64(0xA55);
        for round in 0..100 {
            let nvars = rng.gen_range(2..=7usize);
            let nclauses = rng.gen_range(1..=18usize);
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            let mut inc = SatSolver::new();
            let vars: Vec<BVar> = (0..nvars).map(|_| inc.new_var()).collect();
            for _ in 0..nclauses {
                let len = rng.gen_range(1..=3usize);
                let c: Vec<Lit> = (0..len)
                    .map(|_| vars[rng.gen_range(0..nvars)].lit(rng.gen_bool(0.5)))
                    .collect();
                clauses.push(c.clone());
                inc.add_clause(&c);
            }
            // several assumption queries against the same solver
            for _ in 0..4 {
                let nass = rng.gen_range(0..=nvars);
                let assumptions: Vec<Lit> = (0..nass)
                    .map(|_| vars[rng.gen_range(0..nvars)].lit(rng.gen_bool(0.5)))
                    .collect();
                let mut fresh = SatSolver::new();
                let fvars: Vec<BVar> = (0..nvars).map(|_| fresh.new_var()).collect();
                for c in &clauses {
                    let fc: Vec<Lit> = c
                        .iter()
                        .map(|l| fvars[l.var().index()].lit(l.is_positive()))
                        .collect();
                    fresh.add_clause(&fc);
                }
                for a in &assumptions {
                    fresh.add_clause(&[fvars[a.var().index()].lit(a.is_positive())]);
                }
                let ri = inc.solve_under_assumptions(&assumptions);
                let rf = fresh.solve();
                assert_eq!(ri, rf, "round {round} assumptions {assumptions:?}");
                if ri == SatResult::Sat {
                    assert!(model_satisfies(&inc, &clauses), "round {round}");
                    for a in &assumptions {
                        assert_eq!(
                            inc.value(a.var()),
                            Some(a.is_positive()),
                            "assumption not honored in model, round {round}"
                        );
                    }
                } else {
                    // the reported core must itself be unsat
                    let core = inc.assumption_core().to_vec();
                    assert_eq!(
                        inc.solve_under_assumptions(&core),
                        SatResult::Unsat,
                        "round {round}: core {core:?} not unsat"
                    );
                }
            }
        }
    }

    #[test]
    fn lbd_counts_distinct_nonzero_levels() {
        let mut s = SatSolver::new();
        let vars: Vec<BVar> = (0..6).map(|_| s.new_var()).collect();
        // Fabricate an assignment: levels 0, 1, 1, 2, 3, 3.
        s.assign = vec![1; 6];
        s.level = vec![0, 1, 1, 2, 3, 3];
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        // Level 0 is excluded; {1, 2, 3} remain.
        assert_eq!(s.lbd_of(&lits), 3);
        assert_eq!(s.lbd_of(&lits[..3]), 1);
        assert_eq!(s.lbd_of(&lits[..1]), 0);
    }

    #[test]
    fn learned_clauses_carry_lbd_tags() {
        // Any instance that learns clauses must tag them with an LBD
        // in [1, size] (a learned clause has at least its UIP level).
        let n = 4usize;
        let m = 3usize;
        let mut s = SatSolver::new();
        let mut v = vec![];
        for _ in 0..n * m {
            v.push(s.new_var());
        }
        let p = |i: usize, h: usize| v[i * m + h];
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|h| p(i, h).positive()).collect();
            s.add_clause(&c);
        }
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        let learned: Vec<&ClauseInfo> = s.clauses.iter().filter(|c| c.learned).collect();
        assert!(!learned.is_empty(), "pigeonhole must store learned clauses");
        for c in &learned {
            assert!(c.lbd >= 1, "learned clause with zero LBD");
            assert!(
                (c.lbd as usize) <= c.lits.len(),
                "LBD {} exceeds clause size {}",
                c.lbd,
                c.lits.len()
            );
        }
        for c in s.clauses.iter().filter(|c| !c.learned) {
            assert_eq!(c.lbd, 0, "problem clauses are untagged");
        }
    }

    #[test]
    fn db_reduction_is_deterministic_and_preserves_answers() {
        use linarb_testutil::XorShiftRng;
        // Force frequent reductions with a tiny threshold, then check
        // (a) verdicts and models still agree with brute force and
        // (b) two identical runs replay the identical trajectory.
        let run = |seed: u64| -> (SatSolver, Vec<Vec<Lit>>, Vec<SatResult>) {
            let mut rng = XorShiftRng::seed_from_u64(seed);
            let mut s = SatSolver::new();
            // reduce early and often
            s.reduce_first = 5;
            s.reduce_step = 2;
            let nvars = 9usize;
            let vars: Vec<BVar> = (0..nvars).map(|_| s.new_var()).collect();
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            let mut verdicts = Vec::new();
            // Incremental rounds so reductions interleave with solving.
            for _ in 0..30 {
                for _ in 0..4 {
                    let len = rng.gen_range(2..=3usize);
                    let c: Vec<Lit> = (0..len)
                        .map(|_| vars[rng.gen_range(0..nvars)].lit(rng.gen_bool(0.5)))
                        .collect();
                    clauses.push(c.clone());
                    s.add_clause(&c);
                }
                verdicts.push(s.solve());
            }
            (s, clauses, verdicts)
        };
        for seed in [0xDEAD_BEEFu64, 0x5EED, 42] {
            let (s1, clauses, verdicts1) = run(seed);
            let (s2, _, verdicts2) = run(seed);
            // determinism: identical trajectory statistics and state
            assert_eq!(verdicts1, verdicts2, "seed {seed:#x}");
            assert_eq!(s1.num_conflicts(), s2.num_conflicts(), "seed {seed:#x}");
            assert_eq!(s1.num_learned(), s2.num_learned(), "seed {seed:#x}");
            assert_eq!(s1.num_db_reductions(), s2.num_db_reductions(), "seed {seed:#x}");
            assert_eq!(s1.learned_db_size(), s2.learned_db_size(), "seed {seed:#x}");
            assert_eq!(s1.num_clauses(), s2.num_clauses(), "seed {seed:#x}");
            // correctness: final verdict agrees with brute force
            let nvars = 9usize;
            let mut brute_sat = false;
            for bits in 0..(1u32 << nvars) {
                let assign = |v: BVar| bits >> v.index() & 1 == 1;
                if clauses
                    .iter()
                    .all(|c| c.iter().any(|&l| assign(l.var()) == l.is_positive()))
                {
                    brute_sat = true;
                    break;
                }
            }
            let last = *verdicts1.last().unwrap();
            if brute_sat {
                assert_eq!(last, SatResult::Sat, "seed {seed:#x}");
                assert!(model_satisfies(&s1, &clauses), "seed {seed:#x} bad model");
            } else {
                assert_eq!(last, SatResult::Unsat, "seed {seed:#x}");
            }
        }
    }

    #[test]
    fn db_reduction_keeps_glue_binary_and_problem_clauses() {
        let mut s = SatSolver::new();
        let vars: Vec<BVar> = (0..8).map(|_| s.new_var()).collect();
        // One problem clause so watches exist.
        s.add_clause(&[vars[0].positive(), vars[1].positive(), vars[2].positive()]);
        let problem_clauses = s.num_clauses();
        // Hand-install learned clauses with varying LBD.
        for (i, lbd) in [(3usize, 1u32), (4, 2), (5, 7), (6, 8), (7, 9)] {
            let lits = vec![vars[i].positive(), vars[0].negative(), vars[1].negative()];
            let idx = s.clauses.len() as u32;
            s.watches[lits[0].code()].push(idx);
            s.watches[lits[1].code()].push(idx);
            s.clauses.push(ClauseInfo { lits, learned: true, lbd });
        }
        s.reduce_db();
        // Removable set was the three clauses with LBD 7, 8, 9; the
        // worse half (8 and 9, ⌊3/2⌋ = 1... sorted ascending, dropping
        // the top half drops LBD 9) leaves glue and better clauses.
        let alive: Vec<u32> = s.clauses.iter().filter(|c| c.learned).map(|c| c.lbd).collect();
        assert_eq!(alive, vec![1, 2, 7, 8], "worst-LBD clause must go first");
        assert_eq!(s.num_clauses() - s.learned_db_size(), problem_clauses);
        // The solver must still answer correctly after compaction.
        assert_eq!(s.solve(), SatResult::Sat);
    }

    struct ForbidBothTrue {
        a: BVar,
        b: BVar,
        calls: u64,
    }

    impl TheoryHook for ForbidBothTrue {
        fn check_model(&mut self, s: &SatSolver) -> TheoryResponse {
            self.calls += 1;
            if s.value(self.a) == Some(true) && s.value(self.b) == Some(true) {
                TheoryResponse::Conflict(vec![self.a.negative(), self.b.negative()])
            } else {
                TheoryResponse::Sat
            }
        }
    }

    #[test]
    fn theory_hook_conflicts_are_learned_in_search() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.positive(), b.positive(), c.positive()]);
        // push the solver toward all-true first
        s.add_clause(&[a.positive()]);
        let mut hook = ForbidBothTrue { a, b, calls: 0 };
        let learned0 = s.num_learned();
        assert_eq!(s.solve_with_theory(&[], &mut hook), SatResult::Sat);
        assert!(hook.calls >= 1);
        assert!(
            !(s.value(a) == Some(true) && s.value(b) == Some(true)),
            "model violates the theory"
        );
        // If the theory ever objected, its clause was learned in-search.
        if hook.calls > 1 {
            assert!(s.num_learned() > learned0);
        }
        // The theory clause is permanent: plain solving respects it too.
        s.add_clause(&[b.positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(true));
    }

    struct BlockEverything;

    impl TheoryHook for BlockEverything {
        fn check_model(&mut self, s: &SatSolver) -> TheoryResponse {
            let clause: Vec<Lit> = (0..s.num_vars())
                .map(|v| {
                    let var = BVar(v as u32);
                    var.lit(!s.value(var).unwrap())
                })
                .collect();
            TheoryResponse::Conflict(clause)
        }
    }

    #[test]
    fn theory_hook_rejecting_every_model_yields_unsat() {
        let mut s = SatSolver::new();
        let vars: Vec<BVar> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[vars[0].positive(), vars[1].positive()]);
        let mut hook = BlockEverything;
        assert_eq!(s.solve_with_theory(&[], &mut hook), SatResult::Unsat);
        // 2^4 assignments minus those killed by the problem clause and
        // by subsumption through learning: at most 16 theory conflicts.
        assert!(s.num_conflicts() <= 32);
    }

    struct PauseImmediately;

    impl TheoryHook for PauseImmediately {
        fn check_model(&mut self, _s: &SatSolver) -> TheoryResponse {
            TheoryResponse::Pause
        }
    }

    #[test]
    fn theory_hook_pause_returns_sat_without_learning() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        let learned0 = s.num_learned();
        let mut hook = PauseImmediately;
        assert_eq!(s.solve_with_theory(&[], &mut hook), SatResult::Sat);
        assert_eq!(s.num_learned(), learned0);
    }

    #[test]
    fn theory_hook_respects_assumptions() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        let mut hook = ForbidBothTrue { a, b, calls: 0 };
        assert_eq!(
            s.solve_with_theory(&[a.positive(), b.positive()], &mut hook),
            SatResult::Unsat,
            "theory clause contradicts the assumptions"
        );
        let core = s.assumption_core().to_vec();
        assert!(!core.is_empty());
        // Without the conflicting assumptions: satisfiable again.
        assert_eq!(
            s.solve_with_theory(&[a.positive()], &mut hook),
            SatResult::Sat
        );
        assert_eq!(s.value(b), Some(false));
    }
}

/// Parses a DIMACS CNF document into a fresh solver, returning the
/// solver and the variables in index order.
///
/// # Errors
///
/// Returns a message describing the malformed line.
///
/// ```
/// use linarb_sat::{parse_dimacs, SatResult};
/// let (mut solver, vars) = parse_dimacs("p cnf 2 2\n1 2 0\n-1 -2 0\n")?;
/// assert_eq!(vars.len(), 2);
/// assert_eq!(solver.solve(), SatResult::Sat);
/// # Ok::<(), String>(())
/// ```
pub fn parse_dimacs(text: &str) -> Result<(SatSolver, Vec<BVar>), String> {
    let mut solver = SatSolver::new();
    let mut vars: Vec<BVar> = Vec::new();
    let mut clause: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if line.starts_with('p') {
            let mut parts = line.split_whitespace();
            let (_, fmt) = (parts.next(), parts.next());
            if fmt != Some("cnf") {
                return Err(format!("unsupported DIMACS format line: `{line}`"));
            }
            let nvars: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("bad variable count in `{line}`"))?;
            while vars.len() < nvars {
                vars.push(solver.new_var());
            }
            continue;
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| format!("bad literal `{tok}`"))?;
            if n == 0 {
                solver.add_clause(&clause);
                clause.clear();
                continue;
            }
            let idx = n.unsigned_abs() as usize - 1;
            while vars.len() <= idx {
                vars.push(solver.new_var());
            }
            clause.push(vars[idx].lit(n > 0));
        }
    }
    if !clause.is_empty() {
        solver.add_clause(&clause);
    }
    Ok((solver, vars))
}

#[cfg(test)]
mod dimacs_tests {
    use super::*;

    #[test]
    fn parses_and_solves() {
        let (mut s, vars) = parse_dimacs("c comment\np cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n").unwrap();
        assert_eq!(vars.len(), 3);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(vars[0]), Some(false));
        // clause 1: -2 must hold, so 3 must hold
        assert_eq!(s.value(vars[1]), Some(false));
        assert_eq!(s.value(vars[2]), Some(true));
    }

    #[test]
    fn unsat_instance() {
        let (mut s, _) = parse_dimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_dimacs("p cnf x 2").is_err());
        assert!(parse_dimacs("1 two 0").is_err());
        assert!(parse_dimacs("p dnf 1 1").is_err());
    }

    #[test]
    fn trailing_clause_without_zero() {
        let (mut s, _) = parse_dimacs("p cnf 2 1\n1 2").unwrap();
        assert_eq!(s.solve(), SatResult::Sat);
    }
}
