//! Structured trace events and their JSON serialization.

use std::fmt;

/// A field value attached to an event. The variants cover everything
//  the solver stack reports; strings are the escape hatch.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (counters, ids).
    UInt(u64),
    /// Floating point (ratios, seconds).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Free-form text.
    Str(String),
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::UInt(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::UInt(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::UInt(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::UInt(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl Value {
    /// JSON rendering of the value.
    pub fn to_json(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::UInt(v) => v.to_string(),
            Value::F64(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                }
            }
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => json_string(s),
        }
    }
}

/// What an event marks: a point occurrence or a span boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A point-in-time occurrence.
    Event,
    /// The opening edge of a span.
    SpanStart,
    /// The closing edge of a span (carries the duration).
    SpanEnd,
}

impl EventKind {
    /// Stable label used in the JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Event => "event",
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
        }
    }
}

/// One structured trace record.
#[derive(Clone, Debug)]
pub struct Event {
    /// Microseconds since the trace clock's origin (process-global,
    /// monotonic). Stripped when comparing runs for determinism.
    pub t_us: u64,
    /// Event kind (point event or span edge).
    pub kind: EventKind,
    /// The emitting subsystem (crate short name: `sat`, `smt`, `core`,
    /// `ml`, …).
    pub target: &'static str,
    /// Dotted event name, e.g. `cegar.iteration`.
    pub name: &'static str,
    /// Span duration in microseconds (span-end events only).
    pub dur_us: Option<u64>,
    /// Pool worker that produced the event, when it was captured
    /// inside a parallel region and replayed on the merge thread.
    /// Like `t_us`, excluded from [`Event::deterministic_key`]: which
    /// worker ran a check is scheduling noise, not solver behaviour.
    pub thread: Option<u64>,
    /// Structured payload, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Serializes the event as a single JSON object (one JSONL line,
    /// without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"t_us\":");
        out.push_str(&self.t_us.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.label());
        out.push_str("\",\"target\":\"");
        out.push_str(self.target);
        out.push_str("\",\"name\":\"");
        out.push_str(self.name);
        out.push('"');
        if let Some(d) = self.dur_us {
            out.push_str(",\"dur_us\":");
            out.push_str(&d.to_string());
        }
        if let Some(t) = self.thread {
            out.push_str(",\"thread\":");
            out.push_str(&t.to_string());
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(k));
                out.push(':');
                out.push_str(&v.to_json());
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// A timestamp-free rendering (kind, target, name, fields — no
    /// `t_us`/`dur_us`): two runs of a deterministic solver must
    /// produce identical sequences of these.
    pub fn deterministic_key(&self) -> String {
        let mut out = format!("{}:{}:{}", self.kind.label(), self.target, self.name);
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_shape() {
        let e = Event {
            t_us: 42,
            kind: EventKind::SpanEnd,
            target: "core",
            name: "cegar.check",
            dur_us: Some(7),
            thread: None,
            fields: vec![("clause", Value::UInt(3)), ("verdict", Value::from("sat"))],
        };
        let j = e.to_json();
        assert_eq!(
            j,
            "{\"t_us\":42,\"kind\":\"span_end\",\"target\":\"core\",\"name\":\"cegar.check\",\
             \"dur_us\":7,\"fields\":{\"clause\":3,\"verdict\":\"sat\"}}"
        );
        assert!(crate::json::parse(&j).is_ok());
        let mut tagged = e.clone();
        tagged.thread = Some(2);
        assert!(tagged.to_json().contains("\"thread\":2"));
        assert_eq!(tagged.deterministic_key(), e.deterministic_key());
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn deterministic_key_ignores_time() {
        let mk = |t| Event {
            t_us: t,
            kind: EventKind::Event,
            target: "smt",
            name: "x",
            dur_us: None,
            thread: None,
            fields: vec![("n", Value::Int(-4))],
        };
        assert_eq!(mk(1).deterministic_key(), mk(999).deterministic_key());
    }
}
