//! Hierarchical self-profiler: aggregates the RAII spans of
//! [`crate::span`] into a per-thread call tree with inclusive time,
//! exclusive time, and call counts.
//!
//! The profiler reuses the span instrumentation that already covers
//! every solver layer — no extra annotation is needed. While a
//! [`ProfileScope`] is installed on a thread, each span push/pop on
//! that thread walks a cursor through an arena-backed tree keyed by
//! span name; identical call paths aggregate into one node. Children
//! are stored in a [`BTreeMap`], so sibling order (and therefore every
//! serialization) is deterministic.
//!
//! # Overhead contract
//!
//! Same as events and metrics: with no scope installed anywhere, the
//! per-span cost is one relaxed atomic load and a branch
//! ([`profiling_enabled`]). Time-stamping reuses the span's existing
//! `Instant` pair, so an enabled profile adds two map operations per
//! span and nothing else.
//!
//! # Parallel merges
//!
//! Profiles are strictly per-thread. A parallel region mirrors the
//! caller's setup on each worker (install a [`ProfileScope`], run the
//! task, [`ProfileScope::take_tree`]) and ships the tree back to the
//! merge thread, which grafts it at its *current* tree position with
//! [`absorb_current`] — exactly where the subtree would have grown had
//! the task run inline. Merging in a deterministic order therefore
//! yields the same tree shape and call counts at every thread count;
//! only the recorded times differ.
//!
//! # Exports
//!
//! [`ProfileTree::to_json`] is a nested JSON document (children as
//! name-sorted arrays); [`ProfileTree::to_collapsed`] emits
//! semicolon-joined collapsed-stack lines
//! (`linarb;cegar.solve;core.oracle 1234`, values in exclusive
//! microseconds) directly consumable by flamegraph tooling.

use crate::event::json_string;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Live [`ProfileScope`]s across all threads. THE fast-path gate.
static SCOPES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LOCAL: RefCell<Option<Rc<RefCell<ProfInner>>>> = const { RefCell::new(None) };
}

/// `true` when some thread is profiling. The per-span disabled cost:
/// one relaxed atomic load and a compare.
#[inline]
pub fn profiling_enabled() -> bool {
    SCOPES.load(Ordering::Relaxed) > 0
}

/// Arena-backed aggregation tree. Index 0 is the synthetic root.
struct ProfInner {
    nodes: Vec<NodeRec>,
    /// Indices of the open ancestor chain; `stack[0] == 0` always.
    stack: Vec<usize>,
}

struct NodeRec {
    name: String,
    children: BTreeMap<String, usize>,
    calls: u64,
    incl_us: u64,
}

impl ProfInner {
    fn new() -> ProfInner {
        ProfInner {
            nodes: vec![NodeRec {
                name: String::new(),
                children: BTreeMap::new(),
                calls: 0,
                incl_us: 0,
            }],
            stack: vec![0],
        }
    }

    fn child_of(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&i) = self.nodes[parent].children.get(name) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(NodeRec {
            name: name.to_string(),
            children: BTreeMap::new(),
            calls: 0,
            incl_us: 0,
        });
        self.nodes[parent].children.insert(name.to_string(), i);
        i
    }

    fn push(&mut self, name: &str) {
        let parent = *self.stack.last().expect("root never pops");
        let i = self.child_of(parent, name);
        self.nodes[i].calls += 1;
        self.stack.push(i);
    }

    fn pop(&mut self, dur: Duration) {
        // Defensive: a span that outlives the scope it started under
        // must not underflow the fresh scope's stack.
        if self.stack.len() > 1 {
            let i = self.stack.pop().expect("non-empty");
            self.nodes[i].incl_us += dur.as_micros() as u64;
        }
    }

    fn graft(&mut self, parent: usize, children: &BTreeMap<String, ProfileNode>) {
        for node in children.values() {
            let i = self.child_of(parent, &node.name);
            self.nodes[i].calls += node.calls;
            self.nodes[i].incl_us += node.incl_us;
            self.graft(i, &node.children);
        }
    }

    fn build(&self, i: usize) -> ProfileNode {
        let rec = &self.nodes[i];
        ProfileNode {
            name: rec.name.clone(),
            calls: rec.calls,
            incl_us: rec.incl_us,
            children: rec
                .children
                .iter()
                .map(|(name, &c)| (name.clone(), self.build(c)))
                .collect(),
        }
    }
}

/// Records one span push on the current thread's profiler. Returns
/// `true` when a profiler consumed it (the span must then [`pop`] on
/// drop). Called by [`crate::span`]; not part of the public surface
/// instrumented code uses directly.
#[inline]
pub(crate) fn push(name: &'static str) -> bool {
    if !profiling_enabled() {
        return false;
    }
    LOCAL.with(|l| match l.borrow().as_ref() {
        Some(rc) => {
            rc.borrow_mut().push(name);
            true
        }
        None => false,
    })
}

/// Records the matching span pop with the span's duration.
#[inline]
pub(crate) fn pop(dur: Duration) {
    LOCAL.with(|l| {
        if let Some(rc) = l.borrow().as_ref() {
            rc.borrow_mut().pop(dur);
        }
    });
}

/// Grafts an already-aggregated tree (typically a pool worker's
/// profile) under the current thread's *current* tree position — the
/// node whose span is innermost-open right now. No-op when this thread
/// has no profiler. Call on the merge thread, in a deterministic
/// order, exactly for the work the merge consumed.
pub fn absorb_current(tree: &ProfileTree) {
    LOCAL.with(|l| {
        if let Some(rc) = l.borrow().as_ref() {
            let mut inner = rc.borrow_mut();
            let parent = *inner.stack.last().expect("root never pops");
            inner.graft(parent, &tree.root.children);
        }
    });
}

/// A thread-local profiling scope: while alive, every span on this
/// thread feeds the scope's call tree. Scopes nest (an inner scope
/// shadows the outer until dropped), mirroring [`crate::MetricsScope`].
pub struct ProfileScope {
    inner: Rc<RefCell<ProfInner>>,
    prev: Option<Rc<RefCell<ProfInner>>>,
}

impl ProfileScope {
    /// Installs a fresh scope on the current thread.
    #[allow(clippy::new_without_default)]
    pub fn new() -> ProfileScope {
        let inner = Rc::new(RefCell::new(ProfInner::new()));
        let prev = LOCAL.with(|l| l.borrow_mut().replace(Rc::clone(&inner)));
        SCOPES.fetch_add(1, Ordering::Relaxed);
        ProfileScope { inner, prev }
    }

    /// Drains the scope's aggregation into a [`ProfileTree`] (the
    /// scope restarts empty, open spans keep their stack positions).
    pub fn take_tree(&self) -> ProfileTree {
        let mut inner = self.inner.borrow_mut();
        let tree = ProfileTree { root: inner.build(0) };
        let depth = inner.stack.len();
        *inner = ProfInner::new();
        // Re-open placeholder frames for spans still on the stack so
        // their pops stay balanced (they contribute no named nodes —
        // the root absorbs them).
        inner.stack = vec![0; depth];
        tree
    }
}

impl Drop for ProfileScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        LOCAL.with(|l| *l.borrow_mut() = prev);
        SCOPES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One aggregated call-tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name (`cegar.solve`, `core.oracle`, …). Empty for the
    /// synthetic root.
    pub name: String,
    /// Completed spans aggregated into this node.
    pub calls: u64,
    /// Inclusive time: total microseconds spent inside this call path,
    /// children included.
    pub incl_us: u64,
    /// Children keyed by name — deterministic sibling order.
    pub children: BTreeMap<String, ProfileNode>,
}

impl ProfileNode {
    /// Exclusive (self) time: inclusive minus the children's inclusive
    /// time, clamped at zero (a child still open when the tree was
    /// taken can momentarily exceed its parent's recorded time).
    pub fn excl_us(&self) -> u64 {
        let children: u64 = self.children.values().map(|c| c.incl_us).sum();
        self.incl_us.saturating_sub(children)
    }

    fn merge(&mut self, other: &ProfileNode) {
        self.calls += other.calls;
        self.incl_us += other.incl_us;
        for (name, child) in &other.children {
            match self.children.get_mut(name) {
                Some(mine) => mine.merge(child),
                None => {
                    self.children.insert(name.clone(), child.clone());
                }
            }
        }
    }

    fn to_json_into(&self, out: &mut String) {
        out.push_str("{\"name\":");
        out.push_str(&json_string(&self.name));
        out.push_str(&format!(
            ",\"calls\":{},\"incl_us\":{},\"excl_us\":{},\"children\":[",
            self.calls,
            self.incl_us,
            self.excl_us()
        ));
        for (i, child) in self.children.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.to_json_into(out);
        }
        out.push_str("]}");
    }

    fn collapse_into(&self, prefix: &str, out: &mut String) {
        let path = if prefix.is_empty() {
            self.name.clone()
        } else {
            format!("{prefix};{}", self.name)
        };
        let excl = self.excl_us();
        // Zero-self interior nodes are implied by their children's
        // paths; leaves always get a line so sub-microsecond call
        // paths still appear in the flamegraph.
        if excl > 0 || self.children.is_empty() {
            out.push_str(&format!("{path} {excl}\n"));
        }
        for child in self.children.values() {
            child.collapse_into(&path, out);
        }
    }
}

/// A complete aggregated profile (one thread's scope, or several
/// merged).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileTree {
    /// The synthetic root; its children are the outermost spans.
    pub root: ProfileNode,
}

impl ProfileTree {
    /// An empty tree.
    pub fn empty() -> ProfileTree {
        ProfileTree {
            root: ProfileNode {
                name: String::new(),
                calls: 0,
                incl_us: 0,
                children: BTreeMap::new(),
            },
        }
    }

    /// Total inclusive time over the outermost spans — the profile's
    /// measured wall-clock, for cross-checking against an external
    /// timer.
    pub fn root_incl_us(&self) -> u64 {
        self.root.children.values().map(|c| c.incl_us).sum()
    }

    /// Merges another tree into this one (calls and times add;
    /// structure unions).
    pub fn merge(&mut self, other: &ProfileTree) {
        // The roots are both synthetic: merge their children.
        for (name, child) in &other.root.children {
            match self.root.children.get_mut(name) {
                Some(mine) => mine.merge(child),
                None => {
                    self.root.children.insert(name.clone(), child.clone());
                }
            }
        }
    }

    /// The tree as one JSON document:
    /// `{"profile":[{"name":...,"calls":...,"incl_us":...,"excl_us":...,"children":[...]}]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"profile\":[");
        for (i, child) in self.root.children.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.to_json_into(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Collapsed-stack rendering (`linarb;<path> <exclusive_us>`, one
    /// line per call path), the input format of flamegraph tooling.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for child in self.root.children.values() {
            child.collapse_into("linarb", &mut out);
        }
        out
    }

    /// A time-free rendering — call paths and counts only — that must
    /// be identical across runs of a deterministic solver (times are
    /// the only sanctioned difference).
    pub fn deterministic_key(&self) -> String {
        fn walk(node: &ProfileNode, prefix: &str, out: &mut String) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            out.push_str(&format!("{path} calls={}\n", node.calls));
            for child in node.children.values() {
                walk(child, &path, out);
            }
        }
        let mut out = String::new();
        for child in self.root.children.values() {
            walk(child, "", &mut out);
        }
        out
    }

    /// Checks the structural invariant every profile must satisfy:
    /// at each node, the children's inclusive times sum to at most the
    /// node's inclusive time (within `slack_us` per node for open-span
    /// truncation). Returns the first violating path, if any.
    pub fn check_invariant(&self, slack_us: u64) -> Option<String> {
        fn walk(node: &ProfileNode, path: &str, slack: u64) -> Option<String> {
            let children: u64 = node.children.values().map(|c| c.incl_us).sum();
            if children > node.incl_us + slack {
                return Some(format!(
                    "{path}: children sum {children}us > inclusive {}us",
                    node.incl_us
                ));
            }
            for child in node.children.values() {
                let p = format!("{path};{}", child.name);
                if let Some(v) = walk(child, &p, slack) {
                    return Some(v);
                }
            }
            None
        }
        for child in self.root.children.values() {
            if let Some(v) = walk(child, &child.name, slack_us) {
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    #[test]
    fn spans_aggregate_into_tree() {
        let scope = ProfileScope::new();
        for _ in 0..3 {
            let _outer = crate::span(Level::Trace, "t", "outer");
            let _inner = crate::span(Level::Trace, "t", "inner");
        }
        {
            let _other = crate::span(Level::Trace, "t", "other");
        }
        let tree = scope.take_tree();
        let outer = &tree.root.children["outer"];
        assert_eq!(outer.calls, 3);
        assert_eq!(outer.children["inner"].calls, 3);
        assert_eq!(tree.root.children["other"].calls, 1);
        assert!(outer.incl_us >= outer.children["inner"].incl_us);
        assert!(tree.check_invariant(0).is_none(), "{tree:?}");
        // Exclusive never exceeds inclusive, by construction.
        assert!(outer.excl_us() <= outer.incl_us);
    }

    #[test]
    fn disabled_thread_records_nothing() {
        // No scope on this thread: spans don't touch the profiler.
        assert!(!push("nope") || profiling_enabled());
        {
            let _sp = crate::span(Level::Trace, "t", "unprofiled");
        }
        let scope = ProfileScope::new();
        let tree = scope.take_tree();
        assert!(tree.root.children.is_empty());
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = ProfileScope::new();
        {
            let _sp = crate::span(Level::Trace, "t", "a");
        }
        {
            let inner = ProfileScope::new();
            {
                let _sp = crate::span(Level::Trace, "t", "b");
            }
            let t = inner.take_tree();
            assert!(t.root.children.contains_key("b"));
            assert!(!t.root.children.contains_key("a"));
        }
        {
            let _sp = crate::span(Level::Trace, "t", "c");
        }
        let t = outer.take_tree();
        assert!(t.root.children.contains_key("a"));
        assert!(t.root.children.contains_key("c"));
        assert!(!t.root.children.contains_key("b"));
    }

    #[test]
    fn absorb_grafts_at_current_position() {
        // Build a "worker" tree containing one oracle call.
        let worker_tree = {
            let scope = ProfileScope::new();
            {
                let _sp = crate::span(Level::Trace, "t", "oracle");
                let _in = crate::span(Level::Trace, "t", "simplex");
            }
            scope.take_tree()
        };
        // Merge thread: inside an open "solve" span, absorbing must
        // place the worker's subtree under "solve".
        let scope = ProfileScope::new();
        {
            let _solve = crate::span(Level::Trace, "t", "solve");
            absorb_current(&worker_tree);
        }
        let tree = scope.take_tree();
        let solve = &tree.root.children["solve"];
        assert_eq!(solve.children["oracle"].calls, 1);
        assert_eq!(solve.children["oracle"].children["simplex"].calls, 1);
    }

    #[test]
    fn merge_adds_counts_and_unions_structure() {
        let mk = |names: &[&str]| {
            let scope = ProfileScope::new();
            for n in names {
                // Leak the names via Box to get 'static strs in tests.
                let name: &'static str = Box::leak(n.to_string().into_boxed_str());
                let _sp = crate::span(Level::Trace, "t", name);
            }
            scope.take_tree()
        };
        let mut a = mk(&["x", "y"]);
        let b = mk(&["y", "z"]);
        a.merge(&b);
        assert_eq!(a.root.children["x"].calls, 1);
        assert_eq!(a.root.children["y"].calls, 2);
        assert_eq!(a.root.children["z"].calls, 1);
    }

    #[test]
    fn exports_are_deterministic_and_parseable() {
        let scope = ProfileScope::new();
        {
            let _a = crate::span(Level::Trace, "t", "beta");
        }
        {
            let _b = crate::span(Level::Trace, "t", "alpha");
            let _c = crate::span(Level::Trace, "t", "gamma");
        }
        let tree = scope.take_tree();
        let json = tree.to_json();
        assert!(crate::json::parse(&json).is_ok(), "{json}");
        // BTreeMap ordering: alpha before beta regardless of emission
        // order.
        let ja = json.find("alpha").unwrap();
        let jb = json.find("beta").unwrap();
        assert!(ja < jb);
        let collapsed = tree.to_collapsed();
        assert!(collapsed.contains("linarb;alpha;gamma "));
        assert!(collapsed.contains("linarb;beta "));
        for line in collapsed.lines() {
            let (path, val) = line.rsplit_once(' ').expect("path value");
            assert!(!path.is_empty());
            val.parse::<u64>().expect("numeric value");
        }
        let key = tree.deterministic_key();
        assert!(key.contains("alpha;gamma calls=1"));
    }

    #[test]
    fn take_tree_keeps_open_spans_balanced() {
        let scope = ProfileScope::new();
        let _open = crate::span(Level::Trace, "t", "still_open");
        let t1 = scope.take_tree();
        assert_eq!(t1.root.children["still_open"].calls, 1);
        assert_eq!(t1.root.children["still_open"].incl_us, 0, "not yet closed");
        {
            let _sp = crate::span(Level::Trace, "t", "after");
        }
        let t2 = scope.take_tree();
        // The still-open span's eventual pop lands on the placeholder
        // stack, not on a named node; "after" nests under it.
        assert!(t2.deterministic_key().contains("after calls=1"));
    }
}
