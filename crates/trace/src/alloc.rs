//! A dependency-free allocation-counting [`GlobalAlloc`] wrapper
//! around [`std::alloc::System`].
//!
//! The type is always compiled (it is just four atomics and a
//! delegation), but it only takes effect in binaries that *install* it
//! with `#[global_allocator]` — `perf_smoke` does so behind the
//! `count-alloc` feature of `linarb-bench`, so the default build's
//! allocation path is completely untouched:
//!
//! ```ignore
//! #[cfg(feature = "count-alloc")]
//! #[global_allocator]
//! static ALLOC: linarb_trace::alloc::CountingAlloc = linarb_trace::alloc::CountingAlloc;
//! ```
//!
//! Counters are process-global relaxed atomics: total bytes ever
//! allocated, live bytes, the peak of live bytes, and the allocation
//! count. [`reset_peak`] rebases the peak to the current live size so
//! benchmark phases can each report their own high-water mark.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Counting wrapper around the system allocator. Zero-sized; install
/// with `#[global_allocator]` (see module docs).
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn on_alloc(size: usize) {
        INSTALLED.store(true, Ordering::Relaxed);
        TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn on_dealloc(size: usize) {
        // Saturate rather than wrap: frees of memory allocated before
        // the first counted alloc (or by a foreign allocator) must not
        // underflow the live counter.
        let mut live = LIVE_BYTES.load(Ordering::Relaxed);
        loop {
            let next = live.saturating_sub(size as u64);
            match LIVE_BYTES.compare_exchange_weak(live, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(cur) => live = cur,
            }
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                Self::on_alloc(new_size - layout.size());
                // Growth is one logical allocation event; on_alloc
                // already counted it.
            } else {
                Self::on_dealloc(layout.size() - new_size);
            }
        }
        p
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// `true` when a [`CountingAlloc`] is installed in this process
    /// and has observed at least one allocation.
    pub enabled: bool,
    /// Total bytes ever allocated (monotone).
    pub total_bytes: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes since process start or the last
    /// [`reset_peak`].
    pub peak_bytes: u64,
    /// Number of allocation events (monotone).
    pub allocations: u64,
}

/// Reads the current counters. All zeros (and `enabled == false`) when
/// no [`CountingAlloc`] is installed.
pub fn stats() -> AllocStats {
    AllocStats {
        enabled: INSTALLED.load(Ordering::Relaxed),
        total_bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
    }
}

/// Rebases the peak to the current live size, so the next [`stats`]
/// reading reports the high-water mark of the phase that follows.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// The difference of two readings — per-phase totals for reports.
pub fn delta(before: &AllocStats, after: &AllocStats) -> AllocStats {
    AllocStats {
        enabled: after.enabled,
        total_bytes: after.total_bytes.saturating_sub(before.total_bytes),
        live_bytes: after.live_bytes,
        peak_bytes: after.peak_bytes,
        allocations: after.allocations.saturating_sub(before.allocations),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so counters stay
    // inert — which is itself the contract to check here. Arithmetic
    // is exercised directly.
    #[test]
    fn uninstalled_counters_are_inert() {
        let before = stats();
        let v: Vec<u64> = (0..1024).collect();
        assert_eq!(v.len(), 1024);
        let after = stats();
        // Real allocations must not move the counters when no
        // CountingAlloc is installed. (`enabled` can flip if the
        // sibling test drives the hooks concurrently; the byte counts
        // it adds are deterministic, so subtract them out.)
        assert!(after.total_bytes - before.total_bytes <= 1500);
    }

    #[test]
    fn counting_hooks_track_live_and_peak() {
        // Drive the hooks directly (installing a global allocator in a
        // unit test would affect the whole test binary).
        let base = stats();
        CountingAlloc::on_alloc(1000);
        CountingAlloc::on_alloc(500);
        CountingAlloc::on_dealloc(300);
        let s = stats();
        assert_eq!(s.total_bytes - base.total_bytes, 1500);
        assert!(s.peak_bytes >= base.live_bytes + 1500);
        assert_eq!(s.allocations - base.allocations, 2);
        CountingAlloc::on_dealloc(1200);
        // Underflow protection: a dealloc larger than live saturates.
        CountingAlloc::on_dealloc(u64::MAX as usize & (1 << 40));
        assert!(stats().live_bytes <= s.live_bytes);
        reset_peak();
        assert_eq!(stats().peak_bytes, stats().live_bytes);
    }
}
