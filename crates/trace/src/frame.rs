//! Length-prefixed framing for the serve daemon's socket protocol
//! (DESIGN.md §15).
//!
//! A frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 (in practice JSON for the [`crate::json`]
//! parser). Framing lives here, next to the JSON layer it carries,
//! so both ends of the wire — the daemon, the CLI client, the bench
//! replay driver — share one codec.

use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload (64 MiB). Large enough for
/// any realistic CHC batch, small enough to stop a corrupt or hostile
/// length prefix from forcing an absurd allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one frame and flushes the stream.
///
/// # Errors
///
/// `InvalidData` when the payload exceeds [`MAX_FRAME`]; otherwise
/// whatever the underlying writer reports.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream (EOF
/// before the first length byte) — the peer closing between frames is
/// the normal way a connection ends.
///
/// # Errors
///
/// `UnexpectedEof` on EOF inside a frame, `InvalidData` on an
/// oversized length prefix or non-UTF-8 payload, otherwise whatever
/// the underlying reader reports.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    // The first byte distinguishes clean EOF from a truncated frame.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    len[0] = first[0];
    r.read_exact(&mut len[1..])?;
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {n} exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clean_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "{\"op\":\"ping\"}").unwrap();
        write_frame(&mut wire, "").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"op\":\"ping\"}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let wire = (MAX_FRAME as u32 + 1).to_be_bytes();
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
