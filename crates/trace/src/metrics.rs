//! Named counters, histograms, and span timers aggregated into a
//! [`MetricsReport`].
//!
//! Collection is gated by a single relaxed atomic
//! ([`metrics_enabled`]): when no collector is active every recording
//! call is a load-and-branch. A collector is either the process-global
//! registry ([`enable`]) or a thread-local scope ([`MetricsScope`]) —
//! the latter exists so concurrently running tests can each aggregate
//! their own run without cross-talk.

use crate::event::json_string;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Any collector active (global enabled OR ≥ 1 live thread-local
/// scope)? Kept as one atomic so the disabled fast path is one load.
static METRICS_ANY: AtomicBool = AtomicBool::new(false);
/// Whether the process-global registry is collecting.
static GLOBAL_ON: AtomicBool = AtomicBool::new(false);
/// Live thread-local scopes across all threads.
static LOCAL_SCOPES: AtomicUsize = AtomicUsize::new(0);

static GLOBAL: Mutex<Option<MetricsInner>> = Mutex::new(None);

thread_local! {
    static LOCAL: RefCell<Option<Rc<RefCell<MetricsInner>>>> = const { RefCell::new(None) };
}

fn refresh_any() {
    let any = GLOBAL_ON.load(Ordering::Relaxed) || LOCAL_SCOPES.load(Ordering::Relaxed) > 0;
    METRICS_ANY.store(any, Ordering::Relaxed);
}

/// `true` when some collector is active. The instrumentation fast
/// path: a single relaxed atomic load.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ANY.load(Ordering::Relaxed)
}

/// Turns the process-global registry on or off. Turning it on resets
/// nothing; pair with [`take_report`] to segment runs.
pub fn enable(on: bool) {
    if on {
        let mut g = GLOBAL.lock().unwrap();
        if g.is_none() {
            *g = Some(MetricsInner::default());
        }
    }
    GLOBAL_ON.store(on, Ordering::Relaxed);
    refresh_any();
}

/// Drains the process-global registry into a report (the registry
/// restarts empty; the enabled flag is unchanged).
pub fn take_report() -> MetricsReport {
    let mut g = GLOBAL.lock().unwrap();
    let inner = g.take().unwrap_or_default();
    if GLOBAL_ON.load(Ordering::Relaxed) {
        *g = Some(MetricsInner::default());
    }
    inner.into_report()
}

/// A thread-local metrics scope: while alive, this thread's recordings
/// go to the scope's private registry instead of the global one.
/// Scopes nest: an inner scope shadows the outer one until dropped,
/// at which point the outer scope resumes collecting.
pub struct MetricsScope {
    inner: Rc<RefCell<MetricsInner>>,
    prev: Option<Rc<RefCell<MetricsInner>>>,
}

impl MetricsScope {
    /// Installs a fresh scope on the current thread.
    #[allow(clippy::new_without_default)]
    pub fn new() -> MetricsScope {
        let inner = Rc::new(RefCell::new(MetricsInner::default()));
        let prev = LOCAL.with(|l| l.borrow_mut().replace(Rc::clone(&inner)));
        LOCAL_SCOPES.fetch_add(1, Ordering::Relaxed);
        refresh_any();
        MetricsScope { inner, prev }
    }

    /// Drains this scope's registry into a report.
    pub fn take_report(&self) -> MetricsReport {
        std::mem::take(&mut *self.inner.borrow_mut()).into_report()
    }
}

impl Drop for MetricsScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        LOCAL.with(|l| *l.borrow_mut() = prev);
        LOCAL_SCOPES.fetch_sub(1, Ordering::Relaxed);
        refresh_any();
    }
}

fn with_collector(f: impl FnOnce(&mut MetricsInner)) {
    let mut f = Some(f);
    let handled = LOCAL.with(|l| {
        if let Some(rc) = l.borrow().as_ref() {
            (f.take().unwrap())(&mut rc.borrow_mut());
            true
        } else {
            false
        }
    });
    if handled {
        return;
    }
    if GLOBAL_ON.load(Ordering::Relaxed) {
        if let Some(inner) = GLOBAL.lock().unwrap().as_mut() {
            (f.take().unwrap())(inner);
        }
    }
}

// The closure is only built after the enabled check, so the disabled
// path allocates nothing.

/// Adds `delta` to the named counter.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !metrics_enabled() {
        return;
    }
    with_collector(|m| *m.counters.entry(Cow::Borrowed(name)).or_insert(0) += delta);
}

/// Records one observation into the named histogram.
#[inline]
pub fn histogram(name: &'static str, value: u64) {
    if !metrics_enabled() {
        return;
    }
    with_collector(|m| m.hists.entry(Cow::Borrowed(name)).or_default().record(value));
}

/// Merges a pre-aggregated batch (count observations with the given
/// sum/min/max) into the named histogram. Lets hot loops aggregate in
/// plain integers and flush once per phase.
#[inline]
pub fn histogram_bulk(name: &'static str, count: u64, sum: u64, min: u64, max: u64) {
    if count == 0 || !metrics_enabled() {
        return;
    }
    with_collector(|m| m.hists.entry(Cow::Borrowed(name)).or_default().merge(count, sum, min, max));
}

/// Adds a span duration to the named timer.
#[inline]
pub fn timer(name: &'static str, dur: Duration) {
    if !metrics_enabled() {
        return;
    }
    with_collector(|m| m.timers.entry(Cow::Borrowed(name)).or_default().record(dur));
}

/// Merges an already-aggregated report into the current thread's
/// active collector (thread-local scope if installed, the global
/// registry otherwise). This is how per-worker metrics collected
/// inside a parallel region are folded back into the run's report —
/// call it on the merge thread, in a deterministic order.
pub fn absorb_current(report: &MetricsReport) {
    if !metrics_enabled() {
        return;
    }
    with_collector(|m| {
        for (k, v) in &report.counters {
            *m.counters.entry(Cow::Owned(k.clone())).or_insert(0) += v;
        }
        for (k, h) in &report.hists {
            if h.count > 0 {
                m.hists
                    .entry(Cow::Owned(k.clone()))
                    .or_default()
                    .merge(h.count, h.sum, h.min, h.max);
            }
        }
        for (k, t) in &report.timers {
            let e = m.timers.entry(Cow::Owned(k.clone())).or_default();
            e.count += t.count;
            e.total_us += t.total_us;
        }
    });
}

// Keys are `Cow` so the hot recording paths keep using borrowed
// `&'static str` names while absorbed worker reports (whose keys are
// owned strings) merge without interning.
#[derive(Clone, Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<Cow<'static, str>, u64>,
    hists: BTreeMap<Cow<'static, str>, HistAgg>,
    timers: BTreeMap<Cow<'static, str>, TimerAgg>,
}

impl MetricsInner {
    fn into_report(self) -> MetricsReport {
        MetricsReport {
            counters: self.counters.into_iter().map(|(k, v)| (k.into_owned(), v)).collect(),
            hists: self.hists.into_iter().map(|(k, v)| (k.into_owned(), v)).collect(),
            timers: self.timers.into_iter().map(|(k, v)| (k.into_owned(), v)).collect(),
        }
    }
}

/// Aggregate of a histogram: count/sum/min/max (mean derived).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistAgg {
    /// Number of observations.
    pub count: u64,
    /// Sum over observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for HistAgg {
    fn default() -> Self {
        HistAgg { count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl HistAgg {
    fn record(&mut self, v: u64) {
        self.merge(1, v, v, v);
    }

    fn merge(&mut self, count: u64, sum: u64, min: u64, max: u64) {
        self.count += count;
        self.sum += sum;
        self.min = self.min.min(min);
        self.max = self.max.max(max);
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregate of a span timer: invocation count and total time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimerAgg {
    /// Number of completed spans.
    pub count: u64,
    /// Total duration in microseconds.
    pub total_us: u64,
}

impl TimerAgg {
    fn record(&mut self, dur: Duration) {
        self.count += 1;
        self.total_us += dur.as_micros() as u64;
    }

    /// Total time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_us as f64 / 1e6
    }
}

/// The end-of-run aggregation: every counter, histogram, and timer
/// recorded while a collector was active, plus any caller-injected
/// values (e.g. the CEGAR loop's `SolveStats`). Serializes to JSON
/// without serde.
#[derive(Clone, Debug, Default)]
pub struct MetricsReport {
    /// Named monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Named histograms.
    pub hists: BTreeMap<String, HistAgg>,
    /// Named span timers.
    pub timers: BTreeMap<String, TimerAgg>,
}

impl MetricsReport {
    /// Inserts (or overwrites) a counter — the hook for merging
    /// externally tracked statistics into the report.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// The named counter, or 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named timer's total seconds, or 0.
    pub fn timer_secs(&self, name: &str) -> f64 {
        self.timers.get(name).map(TimerAgg::total_secs).unwrap_or(0.0)
    }

    /// Merges another report into this one (counters add, histograms
    /// and timers merge).
    pub fn absorb(&mut self, other: &MetricsReport) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.hists {
            let e = self.hists.entry(k.clone()).or_default();
            if v.count > 0 {
                e.merge(v.count, v.sum, v.min, v.max);
            }
        }
        for (k, v) in &other.timers {
            let e = self.timers.entry(k.clone()).or_default();
            e.count += v.count;
            e.total_us += v.total_us;
        }
    }

    /// Serializes the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3}}}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.mean()
            ));
        }
        out.push_str("},\"timers\":{");
        for (i, (k, t)) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push_str(&format!(
                ":{{\"count\":{},\"total_us\":{},\"total_s\":{:.6}}}",
                t.count,
                t.total_us,
                t.total_secs()
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_dropped() {
        // No scope on this thread, global off (other tests' scopes are
        // thread-local so they cannot capture these).
        counter("test.nobody_home", 5);
        let scope = MetricsScope::new();
        counter("test.scoped", 2);
        counter("test.scoped", 3);
        let rep = scope.take_report();
        assert_eq!(rep.counter("test.scoped"), 5);
        assert_eq!(rep.counter("test.nobody_home"), 0);
    }

    #[test]
    fn histogram_and_timer_aggregate() {
        let scope = MetricsScope::new();
        histogram("h", 4);
        histogram("h", 10);
        histogram_bulk("h", 2, 6, 1, 5);
        timer("t", Duration::from_micros(250));
        timer("t", Duration::from_micros(750));
        let rep = scope.take_report();
        let h = rep.hists["h"];
        assert_eq!((h.count, h.sum, h.min, h.max), (4, 20, 1, 10));
        let t = rep.timers["t"];
        assert_eq!((t.count, t.total_us), (2, 1000));
        assert!(crate::json::parse(&rep.to_json()).is_ok(), "{}", rep.to_json());
    }

    #[test]
    fn absorb_merges() {
        let scope = MetricsScope::new();
        counter("c", 1);
        histogram("h", 2);
        timer("t", Duration::from_micros(10));
        let a = scope.take_report();
        counter("c", 2);
        histogram("h", 8);
        let b = scope.take_report();
        let mut m = MetricsReport::default();
        m.absorb(&a);
        m.absorb(&b);
        assert_eq!(m.counter("c"), 3);
        assert_eq!(m.hists["h"].count, 2);
        assert_eq!(m.hists["h"].max, 8);
        assert_eq!(m.timers["t"].count, 1);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = MetricsScope::new();
        counter("nest.c", 1);
        {
            let inner = MetricsScope::new();
            counter("nest.c", 10);
            assert_eq!(inner.take_report().counter("nest.c"), 10);
        }
        counter("nest.c", 2);
        assert_eq!(outer.take_report().counter("nest.c"), 3);
    }

    #[test]
    fn absorb_current_merges_into_active_scope() {
        let scope = MetricsScope::new();
        counter("abs.c", 1);
        timer("abs.t", Duration::from_micros(5));
        let mut worker = MetricsReport::default();
        worker.set_counter("abs.c", 4);
        worker.timers.insert("abs.t".to_string(), TimerAgg { count: 2, total_us: 10 });
        worker.hists.insert(
            "abs.h".to_string(),
            HistAgg { count: 1, sum: 7, min: 7, max: 7 },
        );
        absorb_current(&worker);
        let rep = scope.take_report();
        assert_eq!(rep.counter("abs.c"), 5);
        assert_eq!(rep.timers["abs.t"].count, 3);
        assert_eq!(rep.timers["abs.t"].total_us, 15);
        assert_eq!(rep.hists["abs.h"].sum, 7);
    }

    #[test]
    fn set_counter_overrides() {
        let mut r = MetricsReport::default();
        r.set_counter("cegar.iterations", 7);
        assert_eq!(r.counter("cegar.iterations"), 7);
        assert_eq!(r.counter("missing"), 0);
    }
}
