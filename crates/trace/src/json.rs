//! A minimal JSON reader — just enough to validate JSONL traces and
//! scrape numbers out of benchmark reports, keeping the workspace
//! dependency-free.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64; traces only emit integers small
    /// enough to round-trip).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let b = text.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Validates a JSONL document: every non-empty line must parse.
/// Returns the number of valid lines.
pub fn validate_jsonl(text: &str) -> Result<usize, (usize, JsonError)> {
    let mut n = 0;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        parse(line).map_err(|e| (lineno + 1, e))?;
        n += 1;
    }
    Ok(n)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.i, msg: msg.to_string() }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let c = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match c {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs are not reconstructed;
                            // traces never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        match text.parse::<f64>() {
            // `"1e999".parse::<f64>()` yields `inf` rather than an
            // error; a non-finite value can't round-trip through any
            // emitter in this workspace, so treat overflow as malformed
            // input instead of silently propagating infinities.
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            Ok(_) => Err(self.err("number overflows f64")),
            Err(_) => Err(self.err("bad number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2.5, "x\n", true, null], "b": {"c": 3e2}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(300.0));
        match v.get("a").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items.len(), 5);
                assert_eq!(items[2].as_str(), Some("x\n"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn jsonl_validation() {
        assert_eq!(validate_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap(), 2);
        let err = validate_jsonl("{\"a\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.0, 2);
    }

    #[test]
    fn escape_sequences_round_trip() {
        let v = parse(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/d\u{8}\u{c}\n\r\t"));
        let v = parse(r#""Aé世""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé世"));
        // Lone surrogates degrade to the replacement character rather
        // than producing invalid UTF-8.
        let v = parse(r#""\ud800""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{fffd}"));
        // The emitter's own escaping parses back exactly.
        let original = "quote\" slash\\ ctrl\u{1} tab\t nl\n";
        let emitted = crate::event::json_string(original);
        assert_eq!(parse(&emitted).unwrap().as_str(), Some(original));
    }

    #[test]
    fn bad_escapes_rejected() {
        assert!(parse(r#""\q""#).is_err());
        assert!(parse(r#""\u12""#).is_err()); // short \u escape
        assert!(parse(r#""\uzzzz""#).is_err());
        assert!(parse("\"abc\\").is_err()); // escape at EOF
    }

    #[test]
    fn deeply_nested_structures() {
        let mut doc = String::new();
        for _ in 0..64 {
            doc.push_str("[{\"k\":");
        }
        doc.push('1');
        for _ in 0..64 {
            doc.push_str("}]");
        }
        let mut v = &parse(&doc).unwrap();
        for _ in 0..64 {
            let Json::Arr(items) = v else { panic!("expected array") };
            v = items[0].get("k").unwrap();
        }
        assert_eq!(v.as_f64(), Some(1.0));
    }

    #[test]
    fn numeric_edge_cases() {
        assert_eq!(parse("0").unwrap().as_f64(), Some(0.0));
        assert_eq!(parse("-0.5e-2").unwrap().as_f64(), Some(-0.005));
        // u64::MAX loses precision in f64 but must still parse.
        let v = parse("18446744073709551615").unwrap().as_f64().unwrap();
        assert!((v - 1.8446744073709552e19).abs() / v < 1e-9);
        // Overflow to infinity is rejected, not propagated.
        let err = parse("1e999").unwrap_err();
        assert!(err.msg.contains("overflow"), "{err}");
        assert!(parse("-1e999").is_err());
        assert!(parse("[1e400]").is_err());
        // Malformed numbers.
        assert!(parse("-").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn truncated_documents_rejected() {
        for doc in [
            "{\"a\":", "{\"a\"", "{\"a\":1,", "[1,2", "[", "{", "\"ab", "tru", "-", "[{\"x\":[",
        ] {
            assert!(parse(doc).is_err(), "should reject truncated {doc:?}");
        }
        // Truncation mid-line in a JSONL stream reports the line.
        let err = validate_jsonl("{\"a\":1}\n{\"b\":").unwrap_err();
        assert_eq!(err.0, 2);
    }
}
