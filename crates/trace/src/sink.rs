//! Event sinks: where dispatched trace events go.

use crate::event::Event;
use crate::metrics::MetricsReport;
use crate::EventKind;
use std::cell::RefCell;
use std::io::{BufWriter, Write};
use std::rc::Rc;

/// Consumes trace events. Installed globally ([`crate::set_global_sink`],
/// requires `Send`) or per-thread ([`crate::LocalSinkGuard`]).
pub trait Sink {
    /// Receives one event.
    fn event(&mut self, e: &Event);

    /// Receives the end-of-run metrics report (sinks that persist
    /// traces append it as a trailer; others may ignore it).
    fn metrics(&mut self, _report: &MetricsReport) {}

    /// Flushes buffered output.
    fn flush(&mut self) {}
}

/// Human-readable progress log on stderr: one line per event, with
/// millisecond timestamps and indentation following span nesting.
#[derive(Debug, Default)]
pub struct StderrSink {
    depth: usize,
}

impl StderrSink {
    /// Creates the sink.
    pub fn new() -> StderrSink {
        StderrSink { depth: 0 }
    }
}

impl Sink for StderrSink {
    fn event(&mut self, e: &Event) {
        if e.kind == EventKind::SpanEnd {
            self.depth = self.depth.saturating_sub(1);
        }
        let mut line = format!(
            "[{:>10.3}ms] {:4} {}{}{}",
            e.t_us as f64 / 1e3,
            e.target,
            "  ".repeat(self.depth.min(12)),
            match e.kind {
                EventKind::SpanStart => "> ",
                EventKind::SpanEnd => "< ",
                EventKind::Event => "- ",
            },
            e.name,
        );
        if let Some(d) = e.dur_us {
            line.push_str(&format!(" [{:.3}ms]", d as f64 / 1e3));
        }
        if let Some(t) = e.thread {
            line.push_str(&format!(" [w{t}]"));
        }
        for (k, v) in &e.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
        if e.kind == EventKind::SpanStart {
            self.depth += 1;
        }
    }

    fn metrics(&mut self, report: &MetricsReport) {
        eprintln!("[metrics] {}", report.to_json());
    }
}

/// Machine-readable JSONL sink: one JSON object per line, with the
/// metrics report appended as a final `{"kind":"metrics_report",...}`
/// record.
pub struct JsonlSink<W: Write> {
    out: BufWriter<W>,
}

impl JsonlSink<std::fs::File> {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink<std::fs::File>> {
        Ok(JsonlSink { out: BufWriter::new(std::fs::File::create(path)?) })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(w: W) -> JsonlSink<W> {
        JsonlSink { out: BufWriter::new(w) }
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn event(&mut self, e: &Event) {
        // Trace output is best-effort: a full disk must not take the
        // solver down with it.
        let _ = writeln!(self.out, "{}", e.to_json());
    }

    fn metrics(&mut self, report: &MetricsReport) {
        let _ = writeln!(self.out, "{{\"kind\":\"metrics_report\",\"report\":{}}}", report.to_json());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// An in-memory sink for tests: events accumulate in a shared buffer
/// the test keeps a handle to.
#[derive(Clone, Default)]
pub struct CollectingSink {
    events: Rc<RefCell<Vec<Event>>>,
}

impl CollectingSink {
    /// Creates an empty collector.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Drains and returns the collected events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.borrow_mut())
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// `true` when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl Sink for CollectingSink {
    fn event(&mut self, e: &Event) {
        self.events.borrow_mut().push(e.clone());
    }
}

/// A sink broadcasting each event to two sinks (e.g. stderr + JSONL).
pub struct TeeSink<A: Sink, B: Sink> {
    /// First receiver.
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A: Sink, B: Sink> Sink for TeeSink<A, B> {
    fn event(&mut self, e: &Event) {
        self.a.event(e);
        self.b.event(e);
    }

    fn metrics(&mut self, report: &MetricsReport) {
        self.a.metrics(report);
        self.b.metrics(report);
    }

    fn flush(&mut self) {
        self.a.flush();
        self.b.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn ev(name: &'static str) -> Event {
        Event {
            t_us: 1,
            kind: EventKind::Event,
            target: "test",
            name,
            dur_us: None,
            thread: None,
            fields: vec![("k", Value::Int(1))],
        }
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            sink.event(&ev("a"));
            sink.event(&ev("b"));
            sink.metrics(&MetricsReport::default());
            sink.flush();
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert!(crate::json::parse(l).is_ok(), "bad line: {l}");
        }
        assert!(lines[2].contains("metrics_report"));
    }

    #[test]
    fn collecting_sink_shares_buffer() {
        let sink = CollectingSink::new();
        let handle = sink.clone();
        let mut boxed: Box<dyn Sink> = Box::new(sink);
        boxed.event(&ev("x"));
        assert_eq!(handle.len(), 1);
        assert_eq!(handle.take()[0].name, "x");
        assert!(handle.is_empty());
    }
}
