//! `linarb-trace` — dependency-free structured tracing and metrics
//! for the whole solver stack.
//!
//! The paper evaluates LinearArbitrary by counting samples and solver
//! iterations; this crate is the in-tree observability layer that
//! makes those (and much finer-grained) numbers visible on any run:
//!
//! * **Events and spans** ([`event!`], [`span`]) — structured records
//!   with a monotonic timestamp, a target (crate short name), a dotted
//!   name, and typed fields. Spans are RAII guards attributing
//!   wall-clock time to phases (oracle, learner, sample extraction…).
//! * **Sinks** ([`Sink`]) — a human-readable stderr log
//!   ([`StderrSink`]) and a machine-readable JSONL file sink
//!   ([`JsonlSink`]), installed globally or per-thread.
//! * **Metrics** ([`metrics`]) — named counters, histograms, and span
//!   timers aggregated into a [`MetricsReport`] (JSON-serializable
//!   without serde).
//!
//! # Overhead contract
//!
//! With no sink installed and metrics off, every instrumentation point
//! compiles down to one relaxed atomic load and a branch: no
//! allocation, no time-stamping, no locking. [`enabled`] is the fast
//! path; event payloads are only constructed after it returns `true`
//! (the [`event!`] macro guarantees this — field expressions are not
//! even evaluated). Span guards are `Option`-backed: a disabled span
//! is a `None` and its drop is a no-op.
//!
//! # Example
//!
//! ```
//! use linarb_trace::{self as trace, Level};
//!
//! // Tests use thread-local sinks so parallel tests don't interfere.
//! let sink = trace::CollectingSink::new();
//! let _guard = trace::LocalSinkGuard::install(Box::new(sink.clone()), Level::Debug);
//! {
//!     let mut span = trace::span(Level::Debug, "demo", "work");
//!     trace::event!(Level::Debug, "demo", "step", "n" => 1u64);
//!     span.record("outcome", "ok");
//! }
//! let events = sink.take();
//! assert_eq!(events.len(), 3); // span_start, step, span_end
//! assert_eq!(events[2].fields[0].1.to_string(), "ok");
//! ```

pub mod alloc;
mod event;
pub mod frame;
pub mod json;
pub mod metrics;
pub mod profile;
mod sink;

pub use event::{json_string, Event, EventKind, Value};
pub use metrics::{HistAgg, MetricsReport, MetricsScope, TimerAgg};
pub use profile::{ProfileNode, ProfileScope, ProfileTree};
pub use sink::{CollectingSink, JsonlSink, Sink, StderrSink, TeeSink};

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Trace verbosity, ordered: `Off < Info < Debug < Trace`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum Level {
    /// No events.
    #[default]
    Off = 0,
    /// Run-level milestones (solve start/end, verdicts).
    Info = 1,
    /// Per-iteration/per-check detail across all crates.
    Debug = 2,
    /// High-frequency detail (encodings, countermodels, rounds).
    Trace = 3,
}

impl Level {
    /// Parses `off|info|debug|trace` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "info" | "1" => Some(Level::Info),
            "debug" | "2" => Some(Level::Debug),
            "trace" | "3" => Some(Level::Trace),
            _ => None,
        }
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Max level any active sink (global or thread-local, on any thread)
/// listens at. THE fast-path gate: one relaxed load.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
/// Level of the global sink.
static GLOBAL_LEVEL: AtomicU8 = AtomicU8::new(0);
/// Max level over live thread-local sinks (monotone while any live;
/// recomputed to 0 when the count drops to 0).
static LOCAL_MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
/// Number of live thread-local sinks.
static LOCAL_COUNT: AtomicUsize = AtomicUsize::new(0);

static GLOBAL_SINK: Mutex<Option<Box<dyn Sink + Send>>> = Mutex::new(None);

thread_local! {
    static LOCAL_SINK: RefCell<Option<(Box<dyn Sink>, Level)>> = const { RefCell::new(None) };
}

fn refresh_max() {
    let g = GLOBAL_LEVEL.load(Ordering::Relaxed);
    let l = LOCAL_MAX_LEVEL.load(Ordering::Relaxed);
    MAX_LEVEL.store(g.max(l), Ordering::Relaxed);
}

/// `true` when an event at `level` would reach some sink. This is the
/// disabled-path cost of every instrumentation point: a relaxed atomic
/// load and a compare.
#[inline(always)]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed) && level != Level::Off
}

/// Installs the process-global sink, listening at `level` (replacing
/// any previous global sink).
pub fn set_global_sink(sink: Box<dyn Sink + Send>, level: Level) {
    let mut g = GLOBAL_SINK.lock().unwrap();
    if let Some(mut old) = g.replace(sink) {
        old.flush();
    }
    GLOBAL_LEVEL.store(level as u8, Ordering::Relaxed);
    refresh_max();
}

/// Removes and returns the global sink (flushed).
pub fn clear_global_sink() -> Option<Box<dyn Sink + Send>> {
    let mut g = GLOBAL_SINK.lock().unwrap();
    GLOBAL_LEVEL.store(0, Ordering::Relaxed);
    refresh_max();
    let mut old = g.take();
    if let Some(s) = old.as_mut() {
        s.flush();
    }
    old
}

/// Forwards the end-of-run metrics report to the active sink (the
/// thread-local one if installed, the global one otherwise). JSONL
/// sinks append it as a final trailer record.
pub fn emit_metrics(report: &MetricsReport) {
    let handled = LOCAL_SINK.with(|l| {
        if let Some((sink, _)) = l.borrow_mut().as_mut() {
            sink.metrics(report);
            true
        } else {
            false
        }
    });
    if !handled {
        if let Some(sink) = GLOBAL_SINK.lock().unwrap().as_mut() {
            sink.metrics(report);
        }
    }
}

/// RAII installation of a thread-local sink: while alive, this
/// thread's events go to `sink` instead of the global one. Built for
/// tests (deterministic capture under parallel test execution) and
/// for per-task capture inside parallel solver regions. Guards nest:
/// installing over an existing local sink shadows it, and dropping
/// the inner guard restores the outer sink.
pub struct LocalSinkGuard {
    prev: Option<(Box<dyn Sink>, Level)>,
}

impl LocalSinkGuard {
    /// Installs `sink` on the current thread at `level`.
    pub fn install(sink: Box<dyn Sink>, level: Level) -> LocalSinkGuard {
        let prev = LOCAL_SINK.with(|l| l.borrow_mut().replace((sink, level)));
        LOCAL_COUNT.fetch_add(1, Ordering::Relaxed);
        // Monotone max while any local sink lives; exact enough (the
        // gate only needs to be ≥ every listener's level).
        LOCAL_MAX_LEVEL.fetch_max(level as u8, Ordering::Relaxed);
        refresh_max();
        LocalSinkGuard { prev }
    }
}

impl Drop for LocalSinkGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        LOCAL_SINK.with(|l| {
            let mut slot = l.borrow_mut();
            if let Some((sink, _)) = slot.as_mut() {
                sink.flush();
            }
            *slot = prev;
        });
        if LOCAL_COUNT.fetch_sub(1, Ordering::Relaxed) == 1 {
            LOCAL_MAX_LEVEL.store(0, Ordering::Relaxed);
        }
        refresh_max();
    }
}

/// The trace clock's origin (first use).
fn clock_origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Microseconds since the trace clock's origin.
pub fn now_us() -> u64 {
    clock_origin().elapsed().as_micros() as u64
}

/// The level the current thread's events are filtered at: the local
/// sink's level when one is installed, the global level otherwise.
/// Parallel regions read this before fanning out so each worker can
/// capture at exactly the verbosity the merge thread will replay.
pub fn effective_level() -> Level {
    let local = LOCAL_SINK.with(|l| l.borrow().as_ref().map(|(_, lvl)| *lvl));
    local.unwrap_or(match GLOBAL_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Info,
        2 => Level::Debug,
        _ => Level::Trace,
    })
}

/// Forwards an already-captured event to the current thread's active
/// sink (thread-local if installed, global otherwise) without level
/// filtering — the event was filtered when it was captured. Used to
/// merge per-worker event buffers back into the main trace stream in
/// a deterministic order.
pub fn replay(e: &Event) {
    let handled = LOCAL_SINK.with(|l| {
        if let Some((sink, _)) = l.borrow_mut().as_mut() {
            sink.event(e);
            true
        } else {
            false
        }
    });
    if !handled && GLOBAL_LEVEL.load(Ordering::Relaxed) > 0 {
        if let Some(sink) = GLOBAL_SINK.lock().unwrap().as_mut() {
            sink.event(e);
        }
    }
}

fn dispatch(level: Level, e: &Event) {
    let handled = LOCAL_SINK.with(|l| {
        if let Some((sink, lvl)) = l.borrow_mut().as_mut() {
            if level <= *lvl {
                sink.event(e);
            }
            // A thread-local sink claims the whole thread, even for
            // levels it ignores: local scopes must never leak into a
            // concurrently installed global sink.
            true
        } else {
            false
        }
    });
    if handled {
        return;
    }
    if level as u8 <= GLOBAL_LEVEL.load(Ordering::Relaxed) {
        if let Some(sink) = GLOBAL_SINK.lock().unwrap().as_mut() {
            sink.event(e);
        }
    }
}

/// Emits a point event. Callers normally go through [`event!`], which
/// skips field construction when the level is disabled.
pub fn emit(level: Level, target: &'static str, name: &'static str, fields: Vec<(&'static str, Value)>) {
    if !enabled(level) {
        return;
    }
    let e = Event {
        t_us: now_us(),
        kind: EventKind::Event,
        target,
        name,
        dur_us: None,
        thread: None,
        fields,
    };
    dispatch(level, &e);
}

/// Emits a point event with no fields.
pub fn emit0(level: Level, target: &'static str, name: &'static str) {
    emit(level, target, name, Vec::new());
}

/// Structured event emission, lazily evaluated:
///
/// ```
/// # use linarb_trace::{event, Level};
/// event!(Level::Debug, "smt", "check.done", "rounds" => 3u64, "verdict" => "unsat");
/// ```
#[macro_export]
macro_rules! event {
    ($lvl:expr, $target:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {
        if $crate::enabled($lvl) {
            $crate::emit($lvl, $target, $name,
                ::std::vec![$(($k, $crate::Value::from($v))),*]);
        }
    };
}

/// An RAII span: emits `span_start` on creation and `span_end` (with
/// duration) on drop, feeds the duration into the metrics timer named
/// after the span, and records a call-tree frame when the thread is
/// profiling ([`profile`]). Inert (zero work on drop) when events,
/// metrics, and profiling are all off.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    level: Level,
    target: &'static str,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
    emit_events: bool,
    profiled: bool,
}

/// Opens a span. The span's name doubles as its metrics timer key.
pub fn span(level: Level, target: &'static str, name: &'static str) -> SpanGuard {
    let emit_events = enabled(level);
    // `push` only succeeds when this thread has a live ProfileScope;
    // a successful push obliges the span to pop on drop.
    let profiled = profile::push(name);
    if !emit_events && !profiled && !metrics::metrics_enabled() {
        return SpanGuard { inner: None };
    }
    if emit_events {
        let e = Event {
            t_us: now_us(),
            kind: EventKind::SpanStart,
            target,
            name,
            dur_us: None,
            thread: None,
            fields: Vec::new(),
        };
        dispatch(level, &e);
    }
    SpanGuard {
        inner: Some(SpanInner {
            level,
            target,
            name,
            start: Instant::now(),
            fields: Vec::new(),
            emit_events,
            profiled,
        }),
    }
}

impl SpanGuard {
    /// `true` when the span is live (events or metrics active) —
    /// lets callers skip computing expensive field values.
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a field, reported on the span-end event.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            if inner.emit_events {
                inner.fields.push((key, value.into()));
            }
        }
    }

    /// The span's elapsed time so far (zero when inert).
    pub fn elapsed(&self) -> Duration {
        self.inner.as_ref().map(|i| i.start.elapsed()).unwrap_or(Duration::ZERO)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let dur = inner.start.elapsed();
        if inner.profiled {
            profile::pop(dur);
        }
        metrics::timer(inner.name, dur);
        if inner.emit_events {
            let e = Event {
                t_us: now_us(),
                kind: EventKind::SpanEnd,
                target: inner.target,
                name: inner.name,
                dur_us: Some(dur.as_micros() as u64),
                thread: None,
                fields: inner.fields,
            };
            dispatch(inner.level, &e);
        }
    }
}

/// Reads `LINARB_TRACE` (a [`Level`]) and `LINARB_TRACE_OUT` (a JSONL
/// path) and installs the corresponding global sink: stderr log when
/// only the level is set, JSONL file when a path is set, both (teed)
/// when the path is set and `LINARB_TRACE_STDERR=1`. Returns the
/// effective level. Call once from binary entry points.
pub fn init_from_env() -> Level {
    let level = std::env::var("LINARB_TRACE")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(Level::Off);
    let out = std::env::var("LINARB_TRACE_OUT").ok();
    install_cli_sink(level, out.as_deref())
}

/// Installs the global sink for a CLI invocation: `level` from
/// `--trace`, `trace_out` from `--trace-out`. A `trace_out` path with
/// level `Off` still records at `Debug` (asking for a trace file
/// implies wanting its contents). Returns the effective level.
pub fn install_cli_sink(level: Level, trace_out: Option<&str>) -> Level {
    let level = match (level, trace_out) {
        (Level::Off, Some(_)) => Level::Debug,
        (l, _) => l,
    };
    if level == Level::Off {
        return level;
    }
    match trace_out {
        None => set_global_sink(Box::new(StderrSink::new()), level),
        Some(path) => {
            let jsonl = match JsonlSink::create(std::path::Path::new(path)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("linarb-trace: cannot open {path}: {e}");
                    return Level::Off;
                }
            };
            let tee = std::env::var("LINARB_TRACE_STDERR").map(|v| v == "1").unwrap_or(false);
            if tee {
                set_global_sink(Box::new(TeeSink { a: jsonl, b: StderrSink::new() }), level);
            } else {
                set_global_sink(Box::new(jsonl), level);
            }
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_cheap_and_silent() {
        // No sink anywhere on this thread: spans are inert.
        let s = span(Level::Trace, "t", "test.nothing");
        assert!(!s.active() || metrics::metrics_enabled() || enabled(Level::Trace));
    }

    #[test]
    fn local_sink_captures_at_level() {
        let sink = CollectingSink::new();
        let guard = LocalSinkGuard::install(Box::new(sink.clone()), Level::Debug);
        event!(Level::Info, "t", "a", "x" => 1u64);
        event!(Level::Debug, "t", "b");
        event!(Level::Trace, "t", "c"); // above the local level: dropped
        drop(guard);
        event!(Level::Info, "t", "d"); // after uninstall: dropped
        let events = sink.take();
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(events[0].fields, vec![("x", Value::UInt(1))]);
    }

    #[test]
    fn span_emits_start_end_and_times() {
        let sink = CollectingSink::new();
        let _guard = LocalSinkGuard::install(Box::new(sink.clone()), Level::Debug);
        let scope = MetricsScope::new();
        {
            let mut sp = span(Level::Debug, "t", "test.span");
            assert!(sp.active());
            sp.record("k", 5u64);
        }
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[1].kind, EventKind::SpanEnd);
        assert!(events[1].dur_us.is_some());
        assert_eq!(events[1].fields, vec![("k", Value::UInt(5))]);
        let rep = scope.take_report();
        assert_eq!(rep.timers["test.span"].count, 1);
    }

    #[test]
    fn metrics_only_span_skips_events() {
        let scope = MetricsScope::new();
        {
            let sp = span(Level::Debug, "t", "test.metrics_only");
            // No sink on this thread -> span is metrics-only but live.
            assert!(sp.active());
        }
        let rep = scope.take_report();
        assert_eq!(rep.timers["test.metrics_only"].count, 1);
    }

    #[test]
    fn local_sinks_nest_and_restore() {
        let outer = CollectingSink::new();
        let _og = LocalSinkGuard::install(Box::new(outer.clone()), Level::Debug);
        assert_eq!(effective_level(), Level::Debug);
        event!(Level::Info, "t", "before");
        {
            let inner = CollectingSink::new();
            let _ig = LocalSinkGuard::install(Box::new(inner.clone()), Level::Trace);
            assert_eq!(effective_level(), Level::Trace);
            event!(Level::Trace, "t", "inner_only");
            assert_eq!(inner.take().len(), 1);
        }
        // Inner guard dropped: the outer sink is active again.
        event!(Level::Info, "t", "after");
        let names: Vec<&str> = outer.take().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["before", "after"]);
    }

    #[test]
    fn replay_bypasses_level_filter() {
        let sink = CollectingSink::new();
        let _g = LocalSinkGuard::install(Box::new(sink.clone()), Level::Info);
        let e = Event {
            t_us: 1,
            kind: EventKind::Event,
            target: "t",
            name: "captured_at_trace",
            dur_us: None,
            thread: Some(3),
            fields: Vec::new(),
        };
        replay(&e);
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].thread, Some(3));
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("TRACE"), Some(Level::Trace));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("garbage"), None);
        assert!(Level::Info < Level::Debug);
    }
}
