//! # linarb-pool — scoped work-stealing thread pool
//!
//! A small, dependency-free thread pool for the solver stack. Design
//! constraints, in order:
//!
//! 1. **Borrowed data.** Clause contexts, interpretations, and CHC
//!    systems live on the caller's stack; none of them are `'static`.
//!    Every primitive here is built on [`std::thread::scope`], so
//!    tasks may borrow anything that outlives the call.
//! 2. **Deterministic results.** [`Pool::parallel_map`] returns its
//!    outputs in input order no matter which worker ran which task,
//!    so callers can merge results deterministically.
//! 3. **No runtime state.** Workers are spawned per call and joined
//!    before it returns. There is no global pool, no background
//!    threads between calls, and nothing to shut down. For the
//!    coarse-grained tasks this crate serves (SMT oracle checks in
//!    the millisecond-to-second range) the per-call spawn cost is
//!    noise; in exchange, a `threads == 1` pool runs everything
//!    inline on the caller's thread with zero overhead.
//!
//! Work distribution is a mutex-sharded deque per worker: tasks are
//! dealt round-robin at submission, each worker pops its own deque
//! from the front, and an idle worker steals from the *back* of a
//! victim's deque (the classic Chase–Lev orientation, which keeps
//! owners and thieves on opposite ends and steals the largest pending
//! chunks under skewed task sizes). Steals are counted on the pool
//! for observability.
//!
//! Panics inside tasks are caught, the first payload is kept, and the
//! panic is re-raised on the calling thread after all workers have
//! joined — so a panicking task never leaks threads or deadlocks the
//! caller.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

type Payload = Box<dyn Any + Send + 'static>;

thread_local! {
    /// The id of the pool worker currently running on this thread
    /// (0 on threads that are not inside a pool primitive — the
    /// caller itself always acts as worker 0).
    static WORKER_ID: Cell<usize> = const { Cell::new(0) };
}

/// The pool-worker id of the current thread. Worker 0 is the calling
/// thread; ids `1..threads` are the spawned helpers. Outside any pool
/// primitive this returns 0.
pub fn current_worker() -> usize {
    WORKER_ID.with(|w| w.get())
}

/// RAII guard that tags the current thread with a worker id and
/// restores the previous id on drop (so nested pool calls unwind
/// correctly).
struct WorkerIdGuard {
    prev: usize,
}

impl WorkerIdGuard {
    fn enter(id: usize) -> WorkerIdGuard {
        let prev = WORKER_ID.with(|w| w.replace(id));
        WorkerIdGuard { prev }
    }
}

impl Drop for WorkerIdGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        WORKER_ID.with(|w| w.set(prev));
    }
}

/// Pops a task for worker `w`: own deque front first, then steal from
/// the back of the other deques, scanning from the nearest neighbour.
fn pop_or_steal<T>(queues: &[Mutex<VecDeque<T>>], w: usize, steals: &AtomicU64) -> Option<T> {
    if let Some(t) = queues[w].lock().unwrap().pop_front() {
        return Some(t);
    }
    let k = queues.len();
    for off in 1..k {
        let victim = (w + off) % k;
        if let Some(t) = queues[victim].lock().unwrap().pop_back() {
            steals.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
    }
    None
}

/// Stores the first panic payload; later panics are dropped (the
/// caller can only re-raise one).
fn record_panic(slot: &Mutex<Option<Payload>>, p: Payload) {
    let mut s = slot.lock().unwrap();
    if s.is_none() {
        *s = Some(p);
    }
}

/// A work-stealing thread pool of a fixed width.
///
/// The pool itself owns no threads; each primitive spawns `threads - 1`
/// scoped helpers (the caller is worker 0) and joins them before
/// returning. A pool of width 1 runs everything inline.
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    steals: AtomicU64,
}

impl Pool {
    /// Creates a pool of the given width. Width 0 is promoted to 1.
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
            steals: AtomicU64::new(0),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total tasks stolen across workers over the pool's lifetime.
    /// Timing-dependent — useful as telemetry, never for control flow.
    pub fn steal_count(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Applies `f` to every item, in parallel across the pool's
    /// workers, and returns the results **in input order**.
    ///
    /// Items are dealt round-robin onto per-worker deques; idle
    /// workers steal from the back of their neighbours' deques. With
    /// one worker (or zero/one items) everything runs inline on the
    /// calling thread in input order — the sequential and parallel
    /// paths compute identical results by construction.
    ///
    /// If any task panics, the first panic is re-raised here after
    /// all workers have drained.
    pub fn parallel_map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let _g = WorkerIdGuard::enter(0);
            return items.into_iter().map(f).collect();
        }

        let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].lock().unwrap().push_back((i, item));
        }
        let pending = AtomicUsize::new(n);
        let panic: Mutex<Option<Payload>> = Mutex::new(None);

        let work = |w: usize| {
            let _g = WorkerIdGuard::enter(w);
            loop {
                match pop_or_steal(&queues, w, &self.steals) {
                    Some((i, item)) => {
                        // Once a task has panicked, drain the rest
                        // without running them so everyone exits fast.
                        if panic.lock().unwrap().is_none() {
                            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                                Ok(u) => *slots[i].lock().unwrap() = Some(u),
                                Err(p) => record_panic(&panic, p),
                            }
                        }
                        pending.fetch_sub(1, Ordering::AcqRel);
                    }
                    None => {
                        if pending.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        thread::yield_now();
                    }
                }
            }
        };

        thread::scope(|s| {
            let work = &work;
            let helpers: Vec<_> = (1..workers).map(|w| s.spawn(move || work(w))).collect();
            work(0);
            for h in helpers {
                let _ = h.join();
            }
        });

        if let Some(p) = panic.into_inner().unwrap() {
            resume_unwind(p);
        }
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("pool: task result missing"))
            .collect()
    }

    /// Runs two closures, potentially in parallel, and returns both
    /// results. With a single-threaded pool both run inline, in order.
    pub fn join<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if self.threads <= 1 {
            let a = fa();
            let b = fb();
            return (a, b);
        }
        thread::scope(|s| {
            let hb = s.spawn(fb);
            // Run `fa` here but defer its panic until `fb` has been
            // joined, so a panicking `fa` never abandons the helper.
            let ra = catch_unwind(AssertUnwindSafe(fa));
            let rb = hb.join();
            match (ra, rb) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(p), _) => resume_unwind(p),
                (_, Err(p)) => resume_unwind(p),
            }
        })
    }

    /// Opens a fork-join scope: `f` receives a [`Scope`] on which it
    /// can [`Scope::spawn`] any number of tasks borrowing data from
    /// outside the call. All tasks complete (workers + the calling
    /// thread drain them cooperatively) before `scope` returns; the
    /// first task panic is re-raised afterwards.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let scope = Scope {
            queues: (0..self.threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            pending: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            panic: Mutex::new(None),
            steals: AtomicU64::new(0),
        };
        let done = AtomicBool::new(false);

        let r = thread::scope(|s| {
            let sref = &scope;
            let dref = &done;
            let helpers: Vec<_> = (1..self.threads)
                .map(|w| s.spawn(move || sref.work(w, Some(dref))))
                .collect();
            let r = f(&scope);
            // Help until every spawned task has finished. Tasks
            // cannot spawn further tasks (a job can't borrow the
            // scope it runs in), so pending == 0 is final.
            scope.work(0, None);
            done.store(true, Ordering::Release);
            for h in helpers {
                let _ = h.join();
            }
            r
        });

        self.steals
            .fetch_add(scope.steals.load(Ordering::Relaxed), Ordering::Relaxed);
        if let Some(p) = scope.panic.into_inner().unwrap() {
            resume_unwind(p);
        }
        r
    }
}

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A fork-join scope handed to the closure of [`Pool::scope`]. Tasks
/// spawned here may borrow anything that outlives the `scope` call.
pub struct Scope<'env> {
    queues: Vec<Mutex<VecDeque<Job<'env>>>>,
    pending: AtomicUsize,
    next: AtomicUsize,
    panic: Mutex<Option<Payload>>,
    steals: AtomicU64,
}

impl<'env> Scope<'env> {
    /// Queues a task. It runs on some worker (possibly the calling
    /// thread) before the enclosing [`Pool::scope`] returns.
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[w].lock().unwrap().push_back(Box::new(job));
    }

    /// Worker loop. Helpers (`done = Some(..)`) run until the scope
    /// signals completion; the caller (`done = None`) helps until the
    /// pending count hits zero.
    fn work(&self, w: usize, done: Option<&AtomicBool>) {
        let _g = WorkerIdGuard::enter(w);
        loop {
            match pop_or_steal(&self.queues, w, &self.steals) {
                Some(job) => {
                    if self.panic.lock().unwrap().is_none() {
                        if let Err(p) = catch_unwind(AssertUnwindSafe(job)) {
                            record_panic(&self.panic, p);
                        }
                    }
                    self.pending.fetch_sub(1, Ordering::AcqRel);
                }
                None => match done {
                    Some(flag) => {
                        if flag.load(Ordering::Acquire) {
                            break;
                        }
                        thread::yield_now();
                    }
                    None => {
                        if self.pending.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        thread::yield_now();
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    #[test]
    fn parallel_map_preserves_input_order() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..257).collect();
        let out = pool.parallel_map(items, |x| x * 2 + 1);
        assert_eq!(out, (0..257).map(|x| x * 2 + 1).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_map_single_thread_is_inline() {
        let pool = Pool::new(1);
        let out = pool.parallel_map(vec![1, 2, 3], |x| x + 10);
        assert_eq!(out, vec![11, 12, 13]);
        assert_eq!(pool.steal_count(), 0);
    }

    #[test]
    fn parallel_map_borrows_caller_data() {
        let data = vec![String::from("a"), String::from("bb")];
        let pool = Pool::new(2);
        let lens = pool.parallel_map(vec![0usize, 1], |i| data[i].len());
        assert_eq!(lens, vec![1, 2]);
        drop(data);
    }

    #[test]
    fn work_stealing_under_skewed_task_sizes() {
        // Round-robin dealing puts the slow tasks (even indices) on
        // worker 0 and the instant ones on worker 1; worker 1 must
        // steal from worker 0's deque to finish the batch.
        let pool = Pool::new(2);
        let items: Vec<usize> = (0..8).collect();
        let out = pool.parallel_map(items, |i| {
            if i % 2 == 0 {
                thread::sleep(Duration::from_millis(20));
            }
            i * i
        });
        assert_eq!(out, (0..8).map(|i| i * i).collect::<Vec<usize>>());
        assert!(
            pool.steal_count() > 0,
            "expected the idle worker to steal under a skewed load"
        );
    }

    #[test]
    fn parallel_map_propagates_panics() {
        let pool = Pool::new(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map((0..16).collect::<Vec<u32>>(), |i| {
                if i == 7 {
                    panic!("task seven exploded");
                }
                i
            })
        }));
        let payload = r.expect_err("panic should propagate to the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "task seven exploded");
    }

    #[test]
    fn scope_runs_all_spawned_tasks() {
        let pool = Pool::new(3);
        let counter = AtomicU32::new(0);
        pool.scope(|s| {
            for i in 0..50u32 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (0..50).sum::<u32>());
    }

    #[test]
    fn nested_scopes() {
        // A task spawned in an outer scope opens its own pool scope;
        // worker-id bookkeeping and result collection must nest.
        let pool = Pool::new(2);
        let inner_pool = Pool::new(2);
        let total = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let total = &total;
                let inner_pool = &inner_pool;
                s.spawn(move || {
                    let parts = inner_pool.parallel_map(vec![1u32, 2, 3], |x| x * 10);
                    total.fetch_add(parts.iter().sum::<u32>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 60);
        assert_eq!(current_worker(), 0, "worker id must be restored after nesting");
    }

    #[test]
    fn scope_propagates_panics_after_draining() {
        let pool = Pool::new(2);
        let ran = AtomicU32::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("scoped task failed"));
                for _ in 0..8 {
                    let ran = &ran;
                    s.spawn(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(r.is_err(), "scope must re-raise the task panic");
    }

    #[test]
    fn join_returns_both_results() {
        let pool = Pool::new(2);
        let (a, b) = pool.join(|| 6 * 7, || "right".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "right");
        let seq = Pool::new(1);
        let (a, b) = seq.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn join_propagates_right_panic() {
        let pool = Pool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1u32, || -> u32 { panic!("right side failed") })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn zero_width_pool_is_promoted() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.parallel_map(vec![5], |x| x + 1), vec![6]);
    }
}
