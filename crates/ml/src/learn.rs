//! `Learn` — Algorithm 2: the layered machine-learning toolchain.
//!
//! Runs [`linear_arbitrary`] (Algorithm 1) to discover feature
//! attributes, then generalizes with decision-tree learning over those
//! attributes plus predefined features (unit "Box" directions, `mod`
//! features). Falls back to the raw `LinearArbitrary` formula when the
//! decision tree cannot classify perfectly, preserving Lemma 3.1: the
//! returned formula is valid on every positive and invalid on every
//! negative sample.

use crate::algorithm::{linear_arbitrary_seeded, LearnConfig, LearnError};
use crate::dataset::Dataset;
use crate::dtree::{dt_learn, Feature};
use crate::seed::SeedPlane;
use linarb_arith::BigInt;
use linarb_logic::{Formula, Var};

/// Statistics of one `Learn` invocation, used by the evaluation
/// harness to report the paper's `#A` (conjuncts per disjunct) and by
/// the ablation bench.
#[derive(Clone, Debug, Default)]
pub struct LearnStats {
    /// Atoms produced by `LinearArbitrary`.
    pub la_atoms: usize,
    /// Whether the decision tree succeeded (vs. falling back).
    pub dt_used: bool,
    /// Node count of the decision tree (0 when unused).
    pub dt_size: usize,
    /// Seed-store indices of symbolic seeds the recursion used
    /// directly in place of a classifier run (may repeat).
    pub seed_hits: Vec<usize>,
    /// Seed directions added to the decision tree's feature set (not
    /// already present among the learned atoms).
    pub seeded_features: usize,
}

/// Learns a classifier for `data` as a formula over `params`
/// (Algorithm 2).
///
/// # Errors
///
/// Propagates [`LearnError::ContradictorySamples`] from Algorithm 1.
///
/// ```
/// use linarb_arith::int;
/// use linarb_logic::Var;
/// use linarb_ml::{learn, Dataset, LearnConfig};
///
/// let mut d = Dataset::new(2);
/// d.add_positive(vec![int(1), int(0)]);
/// d.add_positive(vec![int(1), int(1)]);
/// d.add_negative(vec![int(0), int(5)]);
/// let params = vec![Var::from_index(0), Var::from_index(1)];
/// let (f, stats) = learn(&d, &params, &LearnConfig::default())?;
/// assert!(stats.la_atoms >= 1);
/// # let _ = f;
/// # Ok::<(), linarb_ml::LearnError>(())
/// ```
pub fn learn(
    data: &Dataset,
    params: &[Var],
    config: &LearnConfig,
) -> Result<(Formula, LearnStats), LearnError> {
    learn_seeded(data, params, config, &[])
}

/// [`learn`] with a set of symbolic seed planes: the `LinearArbitrary`
/// recursion tries each seed as a first-choice separator (recording
/// direct uses in `LearnStats::seed_hits`), and every seed direction is
/// offered to the decision tree as an extra feature attribute.
///
/// With `seeds` empty this is exactly [`learn`].
pub fn learn_seeded(
    data: &Dataset,
    params: &[Var],
    config: &LearnConfig,
    seeds: &[SeedPlane],
) -> Result<(Formula, LearnStats), LearnError> {
    use linarb_trace::{metrics, Level};
    let mut span = linarb_trace::span(Level::Debug, "ml", "ml.learn");
    if !span.active() {
        return learn_inner(data, params, config, seeds);
    }
    span.record("pos", data.num_positive());
    span.record("neg", data.num_negative());
    span.record("dims", params.len());
    span.record("seeds", seeds.len());
    let result = learn_inner(data, params, config, seeds);
    match &result {
        Ok((_, stats)) => {
            span.record("la_atoms", stats.la_atoms);
            span.record("dt_used", stats.dt_used);
            span.record("dt_size", stats.dt_size);
            span.record("seed_hits", stats.seed_hits.len());
            // Per-invocation distributions: dataset size and how many
            // half-planes the recursion needed — the learner-side
            // analogue of the oracle's pivot/conflict histograms.
            metrics::histogram(
                "ml.learn_samples",
                (data.num_positive() + data.num_negative()) as u64,
            );
            metrics::histogram("ml.learn_la_atoms", stats.la_atoms as u64);
        }
        Err(_) => span.record("error", true),
    }
    result
}

fn learn_inner(
    data: &Dataset,
    params: &[Var],
    config: &LearnConfig,
    seeds: &[SeedPlane],
) -> Result<(Formula, LearnStats), LearnError> {
    use linarb_trace::{event, Level};
    let mut stats = LearnStats::default();
    // Degenerate classes do not need the pipeline.
    if data.num_positive() == 0 {
        return Ok((Formula::False, stats));
    }
    if data.num_negative() == 0 {
        return Ok((Formula::True, stats));
    }

    let phi = linear_arbitrary_seeded(data, params, config, seeds, &mut stats.seed_hits)?;
    let la_atoms = phi.atoms();
    stats.la_atoms = la_atoms.len();
    if !config.use_decision_tree {
        return Ok((phi, stats));
    }

    // Feature attributes: the homogeneous parts of the learned atoms…
    let mut features: Vec<Feature> = Vec::new();
    for a in &la_atoms {
        let w: Vec<BigInt> = params.iter().map(|v| a.expr().coeff(*v)).collect();
        if w.iter().any(|c| !c.is_zero()) {
            let f = Feature::Linear(w);
            if !features.contains(&f) {
                features.push(f);
            }
        }
    }
    // …plus the symbolic seed directions the recursion did not emit…
    if config.seed_dt_features {
        for s in seeds {
            if s.dir().len() == params.len() && s.dir().iter().any(|c| !c.is_zero()) {
                let f = Feature::Linear(s.dir().to_vec());
                if !features.contains(&f) {
                    features.push(f);
                    stats.seeded_features += 1;
                }
            }
        }
    }
    // …plus predefined ones: unit (Box) directions and mod features.
    for d in 0..params.len() {
        let mut w = vec![BigInt::zero(); params.len()];
        w[d] = BigInt::one();
        let f = Feature::Linear(w);
        if !features.contains(&f) {
            features.push(f);
        }
    }
    for &m in &config.mod_features {
        if m >= 2 {
            for d in 0..params.len() {
                features.push(Feature::Mod { dim: d, modulus: BigInt::from(m as i128) });
            }
        }
    }

    event!(Level::Trace, "ml", "ml.features", "candidates" => features.len());
    match dt_learn(data, &features) {
        Some(tree) => {
            stats.dt_used = true;
            stats.dt_size = tree.size();
            event!(Level::Trace, "ml", "ml.dtree",
                "size" => tree.size(), "depth" => tree.depth());
            Ok((tree.to_formula(&features, params), stats))
        }
        // Lemma 3.1 fallback: the raw LinearArbitrary classifier is
        // always perfect on the training data.
        None => Ok((phi, stats)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::Model;

    fn params(n: u32) -> Vec<Var> {
        (0..n).map(Var::from_index).collect()
    }

    fn dataset(pos: &[&[i64]], neg: &[&[i64]]) -> Dataset {
        let dim = pos.first().or_else(|| neg.first()).map_or(0, |x| x.len());
        let mut d = Dataset::new(dim);
        for p in pos {
            d.add_positive(p.iter().map(|&c| int(c)).collect());
        }
        for n in neg {
            d.add_negative(n.iter().map(|&c| int(c)).collect());
        }
        d
    }

    fn perfect(f: &Formula, ps: &[Var], d: &Dataset) -> bool {
        let at = |s: &[BigInt]| {
            let mut m = Model::new();
            for (v, x) in ps.iter().zip(s.iter()) {
                m.assign(*v, x.clone());
            }
            f.eval(&m)
        };
        d.positives().iter().all(|s| at(s)) && d.negatives().iter().all(|s| !at(s))
    }

    use linarb_arith::BigInt;

    #[test]
    fn lemma_3_1_perfect_classification() {
        // Several shapes; Learn must always be perfect on training data.
        let cases: Vec<(Vec<&[i64]>, Vec<&[i64]>)> = vec![
            (vec![&[1, 0], &[2, 1], &[3, 1]], vec![&[0, 2], &[-1, 0]]),
            (
                vec![&[0, -2], &[0, -1], &[0, 0], &[0, 1]],
                vec![&[3, -3], &[-3, 3]],
            ),
            (vec![&[0, 0], &[5, 5]], vec![&[0, 5], &[5, 0]]),
        ];
        for (pos, neg) in cases {
            let d = dataset(&pos, &neg);
            let ps = params(2);
            let (f, _) = learn(&d, &ps, &LearnConfig::default()).unwrap();
            assert!(perfect(&f, &ps, &d), "{f} imperfect on {pos:?} / {neg:?}");
        }
    }

    #[test]
    fn dt_generalizes_to_simpler_formula() {
        // Positives x>=1 band with noise dimensions; DT should find a
        // small tree.
        let mut pos: Vec<Vec<i64>> = Vec::new();
        let mut neg: Vec<Vec<i64>> = Vec::new();
        for a in 1..8i64 {
            pos.push(vec![a, a % 3]);
        }
        for a in -7..0i64 {
            neg.push(vec![a, a.rem_euclid(3)]);
        }
        let posr: Vec<&[i64]> = pos.iter().map(|v| v.as_slice()).collect();
        let negr: Vec<&[i64]> = neg.iter().map(|v| v.as_slice()).collect();
        let d = dataset(&posr, &negr);
        let ps = params(2);
        let (f, stats) = learn(&d, &ps, &LearnConfig::default()).unwrap();
        assert!(perfect(&f, &ps, &d));
        assert!(stats.dt_used);
        assert!(stats.dt_size <= 5, "expected a small tree, got {}", stats.dt_size);
    }

    #[test]
    fn ablation_no_dt_still_perfect() {
        let d = dataset(&[&[0, 0], &[5, 5]], &[&[0, 5], &[5, 0]]);
        let ps = params(2);
        let config = LearnConfig { use_decision_tree: false, ..LearnConfig::default() };
        let (f, stats) = learn(&d, &ps, &config).unwrap();
        assert!(perfect(&f, &ps, &d));
        assert!(!stats.dt_used);
    }

    #[test]
    fn parity_needs_mod_features() {
        let d = dataset(&[&[0], &[2], &[4], &[6], &[-2]], &[&[1], &[3], &[5], &[-1]]);
        let ps = params(1);
        let (f, stats) = learn(&d, &ps, &LearnConfig::default()).unwrap();
        assert!(perfect(&f, &ps, &d), "{f}");
        assert!(stats.dt_used, "mod feature must rescue the tree");
        // generalization beyond training data:
        let mut m = Model::new();
        m.assign(ps[0], int(100));
        assert!(f.eval(&m), "even number far from data should classify positive: {f}");
        m.assign(ps[0], int(101));
        assert!(!f.eval(&m));
    }

    #[test]
    fn degenerate_classes() {
        let ps = params(1);
        let d = dataset(&[&[1]], &[]);
        assert_eq!(learn(&d, &ps, &LearnConfig::default()).unwrap().0, Formula::True);
        let d = dataset(&[], &[&[1]]);
        assert_eq!(learn(&d, &ps, &LearnConfig::default()).unwrap().0, Formula::False);
    }

    #[test]
    fn contradiction_propagates() {
        let mut d = dataset(&[&[1]], &[&[2]]);
        d.add_negative(vec![int(1)]);
        assert!(matches!(
            learn(&d, &params(1), &LearnConfig::default()),
            Err(LearnError::ContradictorySamples(_))
        ));
    }
}
