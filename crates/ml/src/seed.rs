//! Symbolic seeding: a per-predicate store of candidate separating
//! hyperplane *directions* harvested from symbolic sources — clause
//! constraints and goals, frontend branch conditions, Farkas/interpolant
//! certificates — consumed by the learner as first-try separators and
//! extra decision-tree features.
//!
//! The store is deterministic by construction: insertion order is the
//! harvest order, directions are gcd-normalized with a canonical sign
//! (orientation is irrelevant — the intercept refit tries both), and
//! pruning is driven by counters, never by wall-clock. This keeps the
//! solver's any-thread-count bit-identical trajectory guarantee intact.

use linarb_arith::BigInt;
use linarb_logic::{Atom, PredId, Var};
use std::collections::HashMap;

/// Hard cap on stored planes per predicate.
const MAX_PLANES: usize = 64;
/// Only the first this-many harvested planes participate in pairwise
/// combination (the octagon-style closure below).
const COMBO_BASE: usize = 12;
/// Pairwise combination stops once a predicate holds this many planes.
const COMBO_CAP: usize = 48;
/// A plane seen in this many validity checks without ever appearing in
/// an unsat core is retired (see [`SeedStore::prune_dead`]).
const PRUNE_CORE_SEEN: u64 = 12;

/// One candidate separating direction, with its usage counters.
#[derive(Clone, Debug)]
pub struct SeedPlane {
    dir: Vec<BigInt>,
    hits: u64,
    core_seen: u64,
    core_useful: u64,
}

impl SeedPlane {
    /// The direction (gcd-normalized, first non-zero coefficient
    /// positive).
    pub fn dir(&self) -> &[BigInt] {
        &self.dir
    }

    /// How many times the learner used this plane directly.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// Canonical form of a direction: gcd-normalized, first non-zero
/// coefficient positive; `None` for the zero direction.
fn canonical(mut dir: Vec<BigInt>) -> Option<Vec<BigInt>> {
    let g = dir.iter().fold(BigInt::zero(), |g, c| BigInt::gcd(&g, c));
    if g.is_zero() {
        return None;
    }
    if !g.is_one() {
        for c in &mut dir {
            *c = &*c / &g;
        }
    }
    if dir.iter().find(|c| !c.is_zero())?.is_negative() {
        for c in &mut dir {
            *c = -&*c;
        }
    }
    Some(dir)
}

#[derive(Clone, Debug, Default)]
struct PredSeeds {
    planes: Vec<SeedPlane>,
    /// Bumped on every plane addition/removal; part of the core
    /// solver's learn-memo key.
    version: u64,
}

/// Per-predicate store of seed hyperplane directions.
#[derive(Clone, Debug, Default)]
pub struct SeedStore {
    by_pred: HashMap<PredId, PredSeeds>,
    total_added: usize,
    total_hits: u64,
    total_pruned: usize,
}

impl SeedStore {
    /// An empty store.
    pub fn new() -> SeedStore {
        SeedStore::default()
    }

    /// Harvests the direction of `atom` for `pred`, provided every
    /// variable of the atom is one of the predicate's `params`.
    /// Returns `true` if a new plane was admitted.
    pub fn add_atom(&mut self, pred: PredId, atom: &Atom, params: &[Var]) -> bool {
        let expr = atom.expr();
        if expr.vars().any(|v| !params.contains(&v)) {
            return false;
        }
        let dir: Vec<BigInt> = params.iter().map(|v| expr.coeff(*v)).collect();
        self.add_dir(pred, dir)
    }

    /// Admits a raw direction (deduped against the canonical forms
    /// already stored; zero directions and over-cap additions are
    /// rejected).
    pub fn add_dir(&mut self, pred: PredId, dir: Vec<BigInt>) -> bool {
        let Some(dir) = canonical(dir) else {
            return false;
        };
        let entry = self.by_pred.entry(pred).or_default();
        if entry.planes.len() >= MAX_PLANES
            || entry.planes.iter().any(|p| p.dir == dir)
        {
            return false;
        }
        entry.planes.push(SeedPlane { dir, hits: 0, core_seen: 0, core_useful: 0 });
        entry.version += 1;
        self.total_added += 1;
        true
    }

    /// Octagon-style closure: for every predicate, adds the pairwise
    /// sums and differences of the first [`COMBO_BASE`] harvested
    /// directions (capped at [`COMBO_CAP`] planes). Equality-shaped
    /// invariants like `res + cnt == a + b` typically live exactly one
    /// such combination away from the harvested guard/goal directions.
    pub fn combine_pairs(&mut self) {
        let preds: Vec<PredId> = {
            let mut ps: Vec<PredId> = self.by_pred.keys().copied().collect();
            ps.sort_by_key(|p| p.0);
            ps
        };
        for pred in preds {
            let base: Vec<Vec<BigInt>> = self.by_pred[&pred]
                .planes
                .iter()
                .take(COMBO_BASE)
                .map(|p| p.dir.clone())
                .collect();
            'outer: for i in 0..base.len() {
                for j in (i + 1)..base.len() {
                    for minus in [false, true] {
                        if self.by_pred[&pred].planes.len() >= COMBO_CAP {
                            break 'outer;
                        }
                        let dir: Vec<BigInt> = base[i]
                            .iter()
                            .zip(base[j].iter())
                            .map(|(a, b)| if minus { a - b } else { a + b })
                            .collect();
                        self.add_dir(pred, dir);
                    }
                }
            }
        }
    }

    /// Bulk-imports directions harvested elsewhere — a warm-start
    /// snapshot, a cached neighbor's store — in the given order
    /// (callers control determinism). Each entry goes through
    /// [`add_dir`](Self::add_dir)'s canonicalization, dedup, and cap;
    /// returns how many were admitted.
    pub fn import_dirs(&mut self, dirs: &[(PredId, Vec<BigInt>)]) -> usize {
        let mut admitted = 0;
        for (pred, dir) in dirs {
            if self.add_dir(*pred, dir.clone()) {
                admitted += 1;
            }
        }
        admitted
    }

    /// Every stored direction as `(pred, dir)` pairs, predicates in id
    /// order — the export half of the warm-start round trip.
    pub fn export_dirs(&self) -> Vec<(PredId, Vec<BigInt>)> {
        let mut preds: Vec<PredId> = self.by_pred.keys().copied().collect();
        preds.sort_by_key(|p| p.0);
        let mut out = Vec::new();
        for p in preds {
            for plane in &self.by_pred[&p].planes {
                out.push((p, plane.dir.clone()));
            }
        }
        out
    }

    /// The planes stored for `pred` (empty slice when none).
    pub fn planes(&self, pred: PredId) -> &[SeedPlane] {
        self.by_pred.get(&pred).map_or(&[], |e| e.planes.as_slice())
    }

    /// The store version for `pred` (bumped on every add/remove).
    pub fn version(&self, pred: PredId) -> u64 {
        self.by_pred.get(&pred).map_or(0, |e| e.version)
    }

    /// Records that the learner used plane `idx` of `pred` directly.
    pub fn note_hit(&mut self, pred: PredId, idx: usize) {
        if let Some(e) = self.by_pred.get_mut(&pred) {
            if let Some(p) = e.planes.get_mut(idx) {
                p.hits += 1;
                self.total_hits += 1;
            }
        }
    }

    /// Records an unsat-core observation for a direction of `pred`'s
    /// interpretation: the atom participated in a validity check
    /// (`useful` iff its guard literal appeared in the oracle's
    /// assumption core). Directions that are not stored planes are
    /// ignored.
    pub fn note_core(&mut self, pred: PredId, dir: &[BigInt], useful: bool) {
        let Some(dir) = canonical(dir.to_vec()) else {
            return;
        };
        if let Some(e) = self.by_pred.get_mut(&pred) {
            if let Some(p) = e.planes.iter_mut().find(|p| p.dir == dir) {
                p.core_seen += 1;
                if useful {
                    p.core_useful += 1;
                }
            }
        }
    }

    /// Retires planes that repeatedly reached the oracle without ever
    /// being core-relevant (`core_seen ≥` [`PRUNE_CORE_SEEN`] with zero
    /// `core_useful`). Returns the number of planes removed.
    pub fn prune_dead(&mut self) -> usize {
        let mut removed = 0;
        for e in self.by_pred.values_mut() {
            let before = e.planes.len();
            e.planes
                .retain(|p| p.core_useful > 0 || p.core_seen < PRUNE_CORE_SEEN);
            let gone = before - e.planes.len();
            if gone > 0 {
                e.version += 1;
                removed += gone;
            }
        }
        self.total_pruned += removed;
        removed
    }

    /// Planes currently stored across all predicates.
    pub fn total_planes(&self) -> usize {
        self.by_pred.values().map(|e| e.planes.len()).sum()
    }

    /// Planes ever admitted.
    pub fn total_added(&self) -> usize {
        self.total_added
    }

    /// Direct learner uses across all planes.
    pub fn total_hits(&self) -> u64 {
        self.total_hits
    }

    /// Planes retired by [`SeedStore::prune_dead`].
    pub fn total_pruned(&self) -> usize {
        self.total_pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::{LinExpr, Var};

    fn pid(n: u32) -> PredId {
        PredId(n)
    }

    fn vars(n: u32) -> Vec<Var> {
        (0..n).map(Var::from_index).collect()
    }

    #[test]
    fn canonicalizes_sign_and_gcd() {
        let mut s = SeedStore::new();
        assert!(s.add_dir(pid(0), vec![int(-2), int(4)]));
        assert_eq!(s.planes(pid(0))[0].dir(), &[int(1), int(-2)]);
        // same plane up to scale/sign: rejected as duplicate
        assert!(!s.add_dir(pid(0), vec![int(3), int(-6)]));
        assert!(!s.add_dir(pid(0), vec![int(0), int(0)]));
        assert_eq!(s.total_added(), 1);
    }

    #[test]
    fn add_atom_requires_param_vars_only() {
        let ps = vars(2);
        let stray = Var::from_index(7);
        let mut s = SeedStore::new();
        let a = Atom::le_zero(LinExpr::from_terms(
            [(ps[0], int(1)), (ps[1], int(-1))],
            int(3),
        ));
        assert!(s.add_atom(pid(1), &a, &ps));
        // constant term is irrelevant to the direction
        assert_eq!(s.planes(pid(1))[0].dir(), &[int(1), int(-1)]);
        let b = Atom::le_zero(LinExpr::from_terms([(ps[0], int(1)), (stray, int(1))], int(0)));
        assert!(!s.add_atom(pid(1), &b, &ps));
    }

    #[test]
    fn pairwise_combos_reach_equality_directions() {
        // hhk2008 shape: goal direction res−a−b plus unit cnt must
        // combine into the invariant direction res+cnt−a−b.
        let mut s = SeedStore::new();
        s.add_dir(pid(0), vec![int(-1), int(-1), int(1), int(0)]); // res - a - b
        s.add_dir(pid(0), vec![int(0), int(0), int(0), int(1)]); // cnt
        s.combine_pairs();
        // canonical form of res+cnt-a-b (first non-zero positive)
        let want = vec![int(1), int(1), int(-1), int(-1)];
        assert!(
            s.planes(pid(0)).iter().any(|p| p.dir() == want.as_slice()),
            "combination must contain res+cnt-a-b (canonicalized)"
        );
    }

    #[test]
    fn hit_and_version_tracking() {
        let mut s = SeedStore::new();
        s.add_dir(pid(0), vec![int(1)]);
        let v = s.version(pid(0));
        s.note_hit(pid(0), 0);
        s.note_hit(pid(0), 99); // out of range: ignored
        assert_eq!(s.total_hits(), 1);
        assert_eq!(s.planes(pid(0))[0].hits(), 1);
        assert_eq!(s.version(pid(0)), v, "hits do not bump the version");
    }

    #[test]
    fn core_pruning_retires_dead_planes() {
        let mut s = SeedStore::new();
        s.add_dir(pid(0), vec![int(1), int(0)]);
        s.add_dir(pid(0), vec![int(0), int(1)]);
        let v = s.version(pid(0));
        for _ in 0..PRUNE_CORE_SEEN {
            s.note_core(pid(0), &[int(2), int(0)], false); // matches plane 0 (scaled)
            s.note_core(pid(0), &[int(0), int(-3)], true); // matches plane 1 (sign-flipped)
        }
        assert_eq!(s.prune_dead(), 1);
        assert_eq!(s.planes(pid(0)).len(), 1);
        assert_eq!(s.planes(pid(0))[0].dir(), &[int(0), int(1)]);
        assert!(s.version(pid(0)) > v);
        assert_eq!(s.total_pruned(), 1);
        // second prune is a no-op
        assert_eq!(s.prune_dead(), 0);
    }
}
