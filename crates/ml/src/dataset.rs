//! Labeled sample sets.

use linarb_arith::BigInt;
use std::collections::HashSet;
use std::fmt;

/// A concrete data point: one integer per predicate argument.
pub type Sample = Vec<BigInt>;

/// Positive and negative samples of one unknown predicate.
///
/// Invariants: all samples share the dataset's dimension; duplicates
/// within a class are dropped.
///
/// ```
/// use linarb_arith::int;
/// use linarb_ml::Dataset;
/// let mut d = Dataset::new(2);
/// d.add_positive(vec![int(1), int(0)]);
/// d.add_negative(vec![int(0), int(5)]);
/// assert_eq!((d.num_positive(), d.num_negative()), (1, 1));
/// assert!(d.is_consistent());
/// ```
#[derive(Clone, Default)]
pub struct Dataset {
    dim: usize,
    pos: Vec<Sample>,
    neg: Vec<Sample>,
    pos_set: HashSet<Sample>,
    neg_set: HashSet<Sample>,
    neg_epoch: u64,
}

impl Dataset {
    /// Creates an empty dataset of the given dimension.
    pub fn new(dim: usize) -> Dataset {
        Dataset { dim, ..Dataset::default() }
    }

    /// The number of coordinates per sample.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds a positive sample; returns `false` if it was already
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if the sample dimension does not match.
    pub fn add_positive(&mut self, s: Sample) -> bool {
        assert_eq!(s.len(), self.dim, "sample dimension mismatch");
        if self.pos_set.insert(s.clone()) {
            self.pos.push(s);
            true
        } else {
            false
        }
    }

    /// Adds a negative sample; returns `false` if it was already
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if the sample dimension does not match.
    pub fn add_negative(&mut self, s: Sample) -> bool {
        assert_eq!(s.len(), self.dim, "sample dimension mismatch");
        if self.neg_set.insert(s.clone()) {
            self.neg.push(s);
            true
        } else {
            false
        }
    }

    /// Removes every negative sample (the paper's head-weakening step
    /// clears `s⁻(h)`).
    pub fn clear_negatives(&mut self) {
        self.neg.clear();
        self.neg_set.clear();
        self.neg_epoch += 1;
    }

    /// Counts how many times [`Dataset::clear_negatives`] has run.
    /// Within one epoch both classes are append-only, so the triple
    /// `(num_positive, neg_epoch, num_negative)` uniquely identifies
    /// the dataset's contents over its lifetime — the basis of the
    /// core solver's learn memoization.
    pub fn neg_epoch(&self) -> u64 {
        self.neg_epoch
    }

    /// The positive samples, in insertion order.
    pub fn positives(&self) -> &[Sample] {
        &self.pos
    }

    /// The negative samples, in insertion order.
    pub fn negatives(&self) -> &[Sample] {
        &self.neg
    }

    /// Number of positive samples.
    pub fn num_positive(&self) -> usize {
        self.pos.len()
    }

    /// Number of negative samples.
    pub fn num_negative(&self) -> usize {
        self.neg.len()
    }

    /// Total number of samples (the paper's `#S`).
    pub fn len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Returns `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// Membership test for the positive class.
    pub fn contains_positive(&self, s: &Sample) -> bool {
        self.pos_set.contains(s)
    }

    /// Membership test for the negative class.
    pub fn contains_negative(&self, s: &Sample) -> bool {
        self.neg_set.contains(s)
    }

    /// Returns `true` iff no sample is labeled both positive and
    /// negative.
    pub fn is_consistent(&self) -> bool {
        self.first_contradiction().is_none()
    }

    /// A sample labeled both positive and negative, if any.
    pub fn first_contradiction(&self) -> Option<&Sample> {
        self.pos.iter().find(|s| self.neg_set.contains(*s))
    }
}

impl fmt::Debug for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dataset(dim={}, +{}, -{})", self.dim, self.pos.len(), self.neg.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;

    fn s(a: i64, b: i64) -> Sample {
        vec![int(a), int(b)]
    }

    #[test]
    fn dedup_within_class() {
        let mut d = Dataset::new(2);
        assert!(d.add_positive(s(1, 2)));
        assert!(!d.add_positive(s(1, 2)));
        assert_eq!(d.num_positive(), 1);
    }

    #[test]
    fn contradiction_detection() {
        let mut d = Dataset::new(2);
        d.add_positive(s(0, 0));
        assert!(d.is_consistent());
        d.add_negative(s(0, 0));
        assert!(!d.is_consistent());
        assert_eq!(d.first_contradiction(), Some(&s(0, 0)));
    }

    #[test]
    fn clear_negatives() {
        let mut d = Dataset::new(1);
        d.add_negative(vec![int(3)]);
        d.add_negative(vec![int(4)]);
        assert_eq!(d.num_negative(), 2);
        d.clear_negatives();
        assert_eq!(d.num_negative(), 0);
        // re-adding after clear works
        assert!(d.add_negative(vec![int(3)]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_checked() {
        let mut d = Dataset::new(2);
        d.add_positive(vec![int(1)]);
    }
}
