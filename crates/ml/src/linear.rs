//! Linear classification: Perceptron, soft-margin SVM, and the
//! rationalization pipeline that turns learned directions into exact
//! integer hyperplanes.
//!
//! The paper treats the classifier as a black box ("LinearClassify")
//! with a precision/generalization trade-off knob (the SVM `C`
//! parameter). We reproduce that: [`ClassifierKind::Svm`] runs a
//! Pegasos-style subgradient soft-margin SVM in `f64`, whose weight
//! direction is then *rationalized* to small integer coefficients and
//! given an exact integer intercept refit on the sample projections;
//! [`ClassifierKind::Perceptron`] runs an exact integer perceptron.
//! The §5 "dummy classifier" fallback (retry against a single sample
//! of the opposite class) is implemented in [`linear_classify`].

use crate::dataset::Sample;
use linarb_arith::BigInt;
use linarb_testutil::XorShiftRng;

/// Which linear classification algorithm drives `LinearClassify`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassifierKind {
    /// Soft-margin linear SVM (Pegasos subgradient) with the given
    /// regularization strength encoded in [`SvmParams`].
    Svm,
    /// Exact integer (pocket) perceptron.
    Perceptron,
}

/// SVM hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct SvmParams {
    /// The paper's `C` parameter: larger values penalize
    /// misclassification harder (less margin, more over-fitting).
    pub c: f64,
    /// Subgradient iterations.
    pub iters: usize,
}

impl Default for SvmParams {
    fn default() -> Self {
        // The paper prefers a reasonably small C for larger margins.
        SvmParams { c: 1.0, iters: 2_000 }
    }
}

/// An integer separating hyperplane: the predicate
/// `w·x ≥ threshold`.
///
/// `predict` is `true` on the (intended) positive side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hyperplane {
    /// Integer weight vector (gcd-normalized, not all zero).
    pub weights: Vec<BigInt>,
    /// Integer threshold.
    pub threshold: BigInt,
}

impl Hyperplane {
    /// The projection `w·x`.
    pub fn project(&self, x: &Sample) -> BigInt {
        self.weights
            .iter()
            .zip(x.iter())
            .map(|(w, v)| w * v)
            .sum()
    }

    /// Classifies `x`: `true` iff `w·x ≥ threshold`.
    pub fn predict(&self, x: &Sample) -> bool {
        self.project(x) >= self.threshold
    }
}

/// Runs the configured classifier and returns an integer hyperplane,
/// or `None` when every direction collapses to zero (contradictory or
/// empty data).
///
/// This is the paper's `LinearClassify` with the §5 dummy-classifier
/// retry: if the primary run yields the zero direction, the classifier
/// is re-run against single samples of the opposite class.
pub fn linear_classify(
    kind: ClassifierKind,
    params: &SvmParams,
    pos: &[Sample],
    neg: &[Sample],
    seed: u64,
) -> Option<Hyperplane> {
    linear_classify_warm(kind, params, pos, neg, seed, None)
}

/// [`linear_classify`] with an optional warm-start direction for the
/// SVM (ignored by the perceptron): the subgradient walk starts from
/// the given integer direction instead of zero, so a near-separating
/// symbolic seed converges in a fraction of the iterations.
pub(crate) fn linear_classify_warm(
    kind: ClassifierKind,
    params: &SvmParams,
    pos: &[Sample],
    neg: &[Sample],
    seed: u64,
    warm: Option<&[BigInt]>,
) -> Option<Hyperplane> {
    if pos.is_empty() || neg.is_empty() {
        return None;
    }
    let primary = raw_direction_warm(kind, params, pos, neg, seed, warm)
        .and_then(|dir| refit_intercept(&dir, pos, neg));
    if primary.is_some() {
        return primary;
    }
    // §5 fallback: S⁺ against one random negative, then one random
    // positive against S⁻.
    let mut rng = XorShiftRng::seed_from_u64(seed ^ 0x5eed);
    let n = &neg[rng.gen_range(0..neg.len())];
    if let Some(h) = raw_direction(kind, params, pos, std::slice::from_ref(n), seed ^ 1)
        .and_then(|dir| refit_intercept(&dir, pos, neg))
    {
        return Some(h);
    }
    let p = &pos[rng.gen_range(0..pos.len())];
    if let Some(h) = raw_direction(kind, params, std::slice::from_ref(p), neg, seed ^ 2)
        .and_then(|dir| refit_intercept(&dir, pos, neg))
    {
        return Some(h);
    }
    // Last resort: the exact two-point separator direction p − n.
    let dir: Vec<BigInt> = p.iter().zip(n.iter()).map(|(a, b)| a - b).collect();
    if dir.iter().all(BigInt::is_zero) {
        return None;
    }
    refit_intercept(&normalize_gcd(dir), pos, neg)
}

/// Learns a raw integer *direction* (no meaningful intercept yet).
fn raw_direction(
    kind: ClassifierKind,
    params: &SvmParams,
    pos: &[Sample],
    neg: &[Sample],
    seed: u64,
) -> Option<Vec<BigInt>> {
    raw_direction_warm(kind, params, pos, neg, seed, None)
}

fn raw_direction_warm(
    kind: ClassifierKind,
    params: &SvmParams,
    pos: &[Sample],
    neg: &[Sample],
    seed: u64,
    warm: Option<&[BigInt]>,
) -> Option<Vec<BigInt>> {
    let dir = match kind {
        ClassifierKind::Perceptron => perceptron_direction(pos, neg),
        ClassifierKind::Svm => svm_direction(params, pos, neg, seed, warm),
    };
    let dir = normalize_gcd(dir);
    if dir.iter().all(BigInt::is_zero) {
        None
    } else {
        Some(dir)
    }
}

/// Exact integer pocket perceptron; returns the weight vector with the
/// fewest training mistakes seen.
fn perceptron_direction(pos: &[Sample], neg: &[Sample]) -> Vec<BigInt> {
    let dim = pos.first().or_else(|| neg.first()).map_or(0, Vec::len);
    let mut w = vec![BigInt::zero(); dim];
    let mut b = BigInt::zero();
    let mut best_w = w.clone();
    let mut best_errors = usize::MAX;
    let max_epochs = 64usize;
    for _ in 0..max_epochs {
        let mut mistakes = 0usize;
        for (label_pos, s) in pos
            .iter()
            .map(|s| (true, s))
            .chain(neg.iter().map(|s| (false, s)))
        {
            let score: BigInt = w
                .iter()
                .zip(s.iter())
                .map(|(wi, xi)| wi * xi)
                .sum::<BigInt>()
                + b.clone();
            let ok = if label_pos { score.is_positive() } else { score.is_negative() };
            if !ok {
                mistakes += 1;
                if label_pos {
                    for (wi, xi) in w.iter_mut().zip(s.iter()) {
                        *wi = &*wi + xi;
                    }
                    b = &b + &BigInt::one();
                } else {
                    for (wi, xi) in w.iter_mut().zip(s.iter()) {
                        *wi = &*wi - xi;
                    }
                    b = &b - &BigInt::one();
                }
            }
        }
        if mistakes < best_errors && w.iter().any(|c| !c.is_zero()) {
            best_errors = mistakes;
            best_w = w.clone();
        }
        if mistakes == 0 {
            break;
        }
    }
    best_w
}

/// Pegasos-style soft-margin SVM in `f64`; returns a rationalized
/// integer direction.
///
/// With `warm`, the walk starts from the given direction (scaled onto
/// the Pegasos ball) at a later step index, so the initial learning
/// rate does not erase it, and the iteration count becomes adaptive:
/// at exponentially-spaced probe points the running averaged direction
/// is tested against the data, and the walk stops as soon as it
/// reaches zero hinge loss — a near-separating seed finishes in a few
/// hundred iterations instead of the full budget. Cold (unseeded)
/// walks always run the full budget.
fn svm_direction(
    params: &SvmParams,
    pos: &[Sample],
    neg: &[Sample],
    seed: u64,
    warm: Option<&[BigInt]>,
) -> Vec<BigInt> {
    use linarb_trace::Level;
    let mut span = linarb_trace::span(Level::Trace, "ml", "ml.svm");
    let dim = pos.first().or_else(|| neg.first()).map_or(0, Vec::len);
    let n = pos.len() + neg.len();
    let lambda = 1.0 / (params.c * n as f64).max(1e-9);
    let mut w = vec![0.0f64; dim];
    let mut b = 0.0f64;
    let mut avg_w = vec![0.0f64; dim];
    let mut avg_b = 0.0f64;
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let data: Vec<(f64, Vec<f64>)> = pos
        .iter()
        .map(|s| (1.0, s.iter().map(BigInt::to_f64).collect()))
        .chain(neg.iter().map(|s| (-1.0, s.iter().map(BigInt::to_f64).collect())))
        .collect();
    // Warm start: η·λ = 1 at t = 1 would zero any initial weights, so
    // a warm-started walk begins at a later step index.
    let t0 = match warm {
        Some(init) => {
            let raw: Vec<f64> = init.iter().map(BigInt::to_f64).collect();
            let norm = dot(&raw, &raw).sqrt();
            if norm > 1e-12 {
                let scale = 1.0 / (norm * lambda.sqrt());
                for (wi, xi) in w.iter_mut().zip(raw.iter()) {
                    *wi = xi * scale;
                }
            }
            (params.iters / 8).max(2)
        }
        None => 1,
    };
    let mut done = 0usize;
    // Adaptive iteration count applies to warm-started walks only:
    // there the seed anchors the direction, so stopping at zero hinge
    // loss is principled. A cold walk always runs the full budget —
    // early averaged iterates hug the samples, and their
    // rationalizations send CEGAR down trajectories that stop
    // converging (`jm2006` with an early-exiting cold walk).
    let mut next_probe =
        if warm.is_some() { 256usize.min(params.iters) } else { usize::MAX };
    for t in t0..t0 + params.iters {
        let (y, x) = &data[rng.gen_range(0..n)];
        let eta = 1.0 / (lambda * t as f64);
        let margin = y * (dot(&w, x) + b);
        for wi in w.iter_mut() {
            *wi *= 1.0 - eta * lambda;
        }
        if margin < 1.0 {
            for (wi, xi) in w.iter_mut().zip(x.iter()) {
                *wi += eta * y * xi;
            }
            b += eta * y;
        }
        for (a, wi) in avg_w.iter_mut().zip(w.iter()) {
            *a += wi;
        }
        avg_b += b;
        done += 1;
        if done == next_probe && done < params.iters {
            // Early exit only once the averaged iterate drives hinge
            // loss to zero (functional margin ≥ 1 on every sample) —
            // bare separation (> 0) stops on sample-hugging planes
            // whose rationalizations derail the CEGAR trajectory.
            let s = 1.0 / done as f64;
            let converged = data
                .iter()
                .all(|(y, x)| y * (dot(&avg_w, x) + avg_b) * s >= 1.0);
            if converged {
                break;
            }
            next_probe = (next_probe * 2).min(params.iters);
        }
    }
    let scale = 1.0 / done.max(1) as f64;
    for a in avg_w.iter_mut() {
        *a *= scale;
    }
    let _ = avg_b;
    if span.active() {
        span.record("iters", done);
        span.record("warm", warm.is_some());
    }
    let _rs = linarb_trace::span(Level::Trace, "ml", "ml.rationalize");
    rationalize(&avg_w)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Converts an `f64` direction into small integer coefficients:
/// components are scaled relative to the largest magnitude, snapped to
/// rationals with denominator ≤ 12 by continued fractions, and
/// multiplied out to integers.
pub fn rationalize(w: &[f64]) -> Vec<BigInt> {
    const MAX_DEN: i64 = 6;
    let max = w.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    if max <= 1e-12 || !max.is_finite() {
        return vec![BigInt::zero(); w.len()];
    }
    // Snap each scaled component to p/q with q <= MAX_DEN.
    let fracs: Vec<(i64, i64)> = w
        .iter()
        .map(|&x| approx_fraction(x / max, MAX_DEN))
        .collect();
    let lcm = fracs
        .iter()
        .fold(1i64, |l, &(_, q)| num_lcm(l, q.max(1)));
    fracs
        .iter()
        .map(|&(p, q)| BigInt::from(p * (lcm / q.max(1))))
        .collect()
}

fn num_lcm(a: i64, b: i64) -> i64 {
    fn gcd(mut a: i64, mut b: i64) -> i64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a.abs().max(1)
    }
    (a / gcd(a, b)) * b
}

/// Best rational approximation `p/q` of `x` with `q ≤ max_den`
/// (continued-fraction convergents; values snapped to 0 below 1/(2·max_den)).
fn approx_fraction(x: f64, max_den: i64) -> (i64, i64) {
    if x.abs() < 1.0 / (2.0 * max_den as f64) {
        return (0, 1);
    }
    let neg = x < 0.0;
    let mut x = x.abs();
    let (mut p0, mut q0, mut p1, mut q1) = (0i64, 1i64, 1i64, 0i64);
    for _ in 0..24 {
        let a = x.floor() as i64;
        let (p2, q2) = (a * p1 + p0, a * q1 + q0);
        if q2 > max_den {
            break;
        }
        p0 = p1;
        q0 = q1;
        p1 = p2;
        q1 = q2;
        let frac = x - a as f64;
        if frac < 1e-9 {
            break;
        }
        x = 1.0 / frac;
    }
    if q1 == 0 {
        return (0, 1);
    }
    (if neg { -p1 } else { p1 }, q1)
}

fn normalize_gcd(mut w: Vec<BigInt>) -> Vec<BigInt> {
    let g = w.iter().fold(BigInt::zero(), |g, c| BigInt::gcd(&g, c));
    if g.is_zero() || g.is_one() {
        return w;
    }
    for c in &mut w {
        *c = &*c / &g;
    }
    w
}

/// Given an integer direction, chooses the orientation and integer
/// threshold that best separate the samples, by exact projection.
///
/// The returned hyperplane maximizes classification accuracy over all
/// integer thresholds (midpoints of adjacent projections); ties prefer
/// wider margins. Returns `None` only for the zero direction.
pub fn refit_intercept(dir: &[BigInt], pos: &[Sample], neg: &[Sample]) -> Option<Hyperplane> {
    refit_intercept_scored(dir, pos, neg).map(|(h, _, _)| h)
}

/// [`refit_intercept`] that also reports `(errors, pos_errors)` of the
/// chosen hyperplane on the training data, so callers (the symbolic
/// seed fast path) can rank candidate directions without re-scanning.
///
/// Implementation: projections are computed once and sorted; a single
/// sweep over the distinct values evaluates every candidate threshold
/// in both orientations with running counts — O(n log n) total,
/// replacing the former O(candidates × samples) rescan with its
/// per-candidate `BigInt` clones. The candidate enumeration order (and
/// therefore every tie-break) matches the old exhaustive scan: an
/// ascending pass per orientation, un-flipped first, strict
/// improvement only.
pub(crate) fn refit_intercept_scored(
    dir: &[BigInt],
    pos: &[Sample],
    neg: &[Sample],
) -> Option<(Hyperplane, usize, usize)> {
    if dir.iter().all(BigInt::is_zero) {
        return None;
    }
    let h = Hyperplane { weights: dir.to_vec(), threshold: BigInt::zero() };
    let mut proj: Vec<(BigInt, bool)> = pos
        .iter()
        .map(|s| (h.project(s), true))
        .chain(neg.iter().map(|s| (h.project(s), false)))
        .collect();
    if proj.is_empty() {
        return None;
    }
    proj.sort_by(|a, b| a.0.cmp(&b.0));
    let pos_total = pos.len();
    let neg_total = neg.len();
    // Distinct candidate thresholds, ascending: the minimum projection
    // v₀ (everything classified "≥"), then v+1 after each distinct
    // value v. `*_below` counts entries with projection < candidate.
    // Un-flipped predicts true iff proj ≥ c; flipped (threshold
    // −c + 1 on negated weights) predicts true iff proj < c.
    let mut best_n: Option<(usize, usize, BigInt)> = None; // errors, pos_errors, threshold
    let mut best_f: Option<(usize, usize, BigInt)> = None;
    let mut consider = |pos_below: usize, neg_below: usize, c: &BigInt, plus_one: bool| {
        let thr = if plus_one { c + &BigInt::one() } else { c.clone() };
        let err_n = pos_below + (neg_total - neg_below);
        if best_n.as_ref().map_or(true, |(e, _, _)| err_n < *e) {
            best_n = Some((err_n, pos_below, thr.clone()));
        }
        let err_f = (pos_total - pos_below) + neg_below;
        if best_f.as_ref().map_or(true, |(e, _, _)| err_f < *e) {
            best_f = Some((err_f, pos_total - pos_below, -&thr + &BigInt::one()));
        }
    };
    consider(0, 0, &proj[0].0, false);
    let (mut pb, mut nb) = (0usize, 0usize);
    let mut i = 0;
    while i < proj.len() {
        let mut j = i;
        while j < proj.len() && proj[j].0 == proj[i].0 {
            if proj[j].1 {
                pb += 1;
            } else {
                nb += 1;
            }
            j += 1;
        }
        consider(pb, nb, &proj[i].0, true);
        i = j;
    }
    let (en, pn, tn) = best_n.expect("non-empty projections");
    let (ef, pf, tf) = best_f.expect("non-empty projections");
    let (errors, pos_errors, threshold, flipped) =
        if ef < en { (ef, pf, tf, true) } else { (en, pn, tn, false) };
    let weights = if flipped { dir.iter().map(|c| -c).collect() } else { dir.to_vec() };
    Some((Hyperplane { weights, threshold }, errors, pos_errors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;

    fn s(coords: &[i64]) -> Sample {
        coords.iter().map(|&c| int(c)).collect()
    }

    fn sep_perfectly(h: &Hyperplane, pos: &[Sample], neg: &[Sample]) -> bool {
        pos.iter().all(|p| h.predict(p)) && neg.iter().all(|n| !h.predict(n))
    }

    #[test]
    fn perceptron_separable_1d() {
        let pos = vec![s(&[3]), s(&[4]), s(&[10])];
        let neg = vec![s(&[0]), s(&[-5]), s(&[2])];
        let h = linear_classify(
            ClassifierKind::Perceptron,
            &SvmParams::default(),
            &pos,
            &neg,
            7,
        )
        .expect("separable");
        assert!(sep_perfectly(&h, &pos, &neg), "{h:?}");
    }

    #[test]
    fn svm_separable_2d_diagonal() {
        // positives above x + y = 3, negatives below
        let pos = vec![s(&[2, 2]), s(&[3, 1]), s(&[0, 4]), s(&[5, 5])];
        let neg = vec![s(&[0, 0]), s(&[1, 1]), s(&[2, 0]), s(&[-3, 2])];
        let h = linear_classify(ClassifierKind::Svm, &SvmParams::default(), &pos, &neg, 7)
            .expect("separable");
        assert!(sep_perfectly(&h, &pos, &neg), "{h:?}");
    }

    #[test]
    fn perceptron_2d_paper_shape() {
        // Fig. 6(i)-like: positives on the y-axis segment, negatives at
        // (3,-3) and (-3,3). Not all separable, but the classifier must
        // still return *some* hyperplane making progress.
        let pos = vec![s(&[0, -2]), s(&[0, -1]), s(&[0, 0]), s(&[0, 1])];
        let neg = vec![s(&[3, -3]), s(&[-3, 3])];
        let h = linear_classify(
            ClassifierKind::Perceptron,
            &SvmParams::default(),
            &pos,
            &neg,
            7,
        )
        .expect("must return something");
        // progress: at least one sample class partially correct
        let pos_ok = pos.iter().filter(|p| h.predict(p)).count();
        let neg_ok = neg.iter().filter(|n| !h.predict(n)).count();
        assert!(pos_ok + neg_ok > 0);
    }

    #[test]
    fn rationalize_simple_directions() {
        assert_eq!(rationalize(&[1.0, 1.0]), vec![int(1), int(1)]);
        assert_eq!(rationalize(&[2.0, -2.0]), vec![int(1), int(-1)]);
        assert_eq!(rationalize(&[0.5, 1.0]), vec![int(1), int(2)]);
        assert_eq!(rationalize(&[0.0, 0.0]), vec![int(0), int(0)]);
        // near-thirds snap
        let r = rationalize(&[0.3333333, 1.0]);
        assert_eq!(r, vec![int(1), int(3)]);
    }

    #[test]
    fn rationalize_drops_noise() {
        let r = rationalize(&[1.0, 1e-9]);
        assert_eq!(r, vec![int(1), int(0)]);
    }

    #[test]
    fn refit_threshold_maximizes_accuracy() {
        // direction (1, 0): pos at x>=5, neg at x<=1
        let pos = vec![s(&[5, 9]), s(&[7, -2])];
        let neg = vec![s(&[1, 3]), s(&[0, 0])];
        let h = refit_intercept(&[int(1), int(0)], &pos, &neg).unwrap();
        assert!(sep_perfectly(&h, &pos, &neg));
        assert!(h.threshold >= int(2) && h.threshold <= int(5));
    }

    #[test]
    fn refit_flips_orientation() {
        // direction (1,0) but positives on the SMALL side
        let pos = vec![s(&[0, 1]), s(&[1, 0])];
        let neg = vec![s(&[8, 2]), s(&[9, 3])];
        let h = refit_intercept(&[int(1), int(0)], &pos, &neg).unwrap();
        assert!(sep_perfectly(&h, &pos, &neg), "{h:?}");
        assert_eq!(h.weights[0], int(-1));
    }

    #[test]
    fn dummy_fallback_two_points() {
        // Identical direction impossible: symmetric data forces the
        // fallback path; it must still separate the two-point core.
        let pos = vec![s(&[1, 1])];
        let neg = vec![s(&[-1, -1])];
        let h = linear_classify(ClassifierKind::Svm, &SvmParams::default(), &pos, &neg, 3)
            .expect("two distinct points are separable");
        assert!(sep_perfectly(&h, &pos, &neg));
    }

    #[test]
    fn empty_classes_return_none() {
        assert!(linear_classify(
            ClassifierKind::Svm,
            &SvmParams::default(),
            &[],
            &[s(&[1])],
            0
        )
        .is_none());
        assert!(linear_classify(
            ClassifierKind::Perceptron,
            &SvmParams::default(),
            &[s(&[1])],
            &[],
            0
        )
        .is_none());
    }

    #[test]
    fn identical_point_both_classes_returns_none_or_imperfect() {
        let p = vec![s(&[2, 2])];
        let n = vec![s(&[2, 2])];
        if let Some(h) = linear_classify(ClassifierKind::Svm, &SvmParams::default(), &p, &n, 0) {
            // cannot separate identical points
            assert!(!sep_perfectly(&h, &p, &n));
        }
    }
}
