//! `LinearArbitrary` — Algorithm 1 of the paper.
//!
//! Applies a linear classifier recursively: misclassified negatives
//! spawn a conjunct (`φ ∧ LA(S⁺✓, S⁻✗)`), misclassified positives a
//! disjunct (`φ ∨ LA(S⁺✗, S⁻)`), until every positive sample is
//! separated from every negative sample. The result is an arbitrary
//! boolean combination of linear inequalities.
//!
//! Beyond the paper's pseudo-code, the implementation guarantees
//! progress: when the black-box classifier returns a useless
//! hyperplane (captures no positives, or excludes no negatives while
//! misclassifying none of the positives), it is replaced by an exact
//! two-point separator — any two *distinct* integer points are
//! separable by `w = p − n` — so recursion terminates on every
//! consistent dataset.

use crate::dataset::{Dataset, Sample};
use crate::linear::{
    linear_classify_warm, refit_intercept, refit_intercept_scored, ClassifierKind, Hyperplane,
    SvmParams,
};
use crate::seed::SeedPlane;
use linarb_arith::BigInt;
use linarb_logic::{Atom, Formula, LinExpr, Var};

/// Why learning failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnError {
    /// The same point is labeled positive and negative; no classifier
    /// exists. Carries the offending point.
    ContradictorySamples(Sample),
    /// Internal recursion guard tripped (should not happen on
    /// consistent data; kept as a defensive error).
    DepthExceeded,
    /// The learner's hypothesis space cannot separate the samples
    /// (used by restricted-space baseline learners such as the
    /// PIE-style enumerator).
    HypothesisExhausted,
}

impl std::fmt::Display for LearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnError::ContradictorySamples(s) => {
                write!(f, "sample labeled both positive and negative: {s:?}")
            }
            LearnError::DepthExceeded => write!(f, "classifier recursion depth exceeded"),
            LearnError::HypothesisExhausted => {
                write!(f, "hypothesis space cannot separate the samples")
            }
        }
    }
}

impl std::error::Error for LearnError {}

/// Configuration of the learning pipeline (shared with Algorithm 2).
#[derive(Clone, Debug)]
pub struct LearnConfig {
    /// Which linear classifier backs `LinearClassify`.
    pub classifier: ClassifierKind,
    /// SVM hyperparameters (ignored by the perceptron).
    pub svm: SvmParams,
    /// Run decision-tree generalization on top of `LinearArbitrary`
    /// (Algorithm 2). Disabling this reproduces the paper's ablation.
    pub use_decision_tree: bool,
    /// Moduli for predefined `mod` features handed to the decision
    /// tree (§3.3 *Beyond Polyhedra*); empty disables them.
    pub mod_features: Vec<u64>,
    /// RNG seed, for reproducible runs.
    pub seed: u64,
    /// Symbolic seeds: let the `LinearArbitrary` recursion use a
    /// perfectly-scoring seed plane *directly* in place of a
    /// classifier run. Ignored when no seeds are supplied.
    pub seed_direct: bool,
    /// Symbolic seeds: warm-start the SVM from the best-scoring seed
    /// direction when none qualifies for direct use. Off by default:
    /// empirically the warm-started walk converges to sample-hugging
    /// planes whose rationalizations derail the CEGAR trajectory
    /// (`jm2006` stops converging with this on).
    pub seed_warm: bool,
    /// Symbolic seeds: offer seed directions to the decision tree as
    /// extra feature attributes.
    pub seed_dt_features: bool,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            classifier: ClassifierKind::Svm,
            svm: SvmParams::default(),
            use_decision_tree: true,
            mod_features: vec![2],
            seed: 0x11AB,
            seed_direct: true,
            seed_warm: false,
            seed_dt_features: true,
        }
    }
}

/// Converts a hyperplane `w·x ≥ c` into an atom over `params`.
pub fn hyperplane_to_atom(h: &Hyperplane, params: &[Var]) -> Atom {
    let lhs = LinExpr::from_terms(
        params
            .iter()
            .zip(h.weights.iter())
            .map(|(v, w)| (*v, w.clone())),
        BigInt::zero(),
    );
    Atom::ge(lhs, LinExpr::constant(h.threshold.clone()))
}

/// Runs Algorithm 1 on a dataset, producing a formula over `params`
/// (one variable per sample dimension) that is `true` on every
/// positive and `false` on every negative sample.
///
/// # Errors
///
/// [`LearnError::ContradictorySamples`] if a point carries both
/// labels.
///
/// ```
/// use linarb_arith::int;
/// use linarb_logic::Var;
/// use linarb_ml::{linear_arbitrary, Dataset, LearnConfig};
///
/// let mut d = Dataset::new(1);
/// d.add_positive(vec![int(5)]);
/// d.add_negative(vec![int(0)]);
/// let params = vec![Var::from_index(0)];
/// let f = linear_arbitrary(&d, &params, &LearnConfig::default())?;
/// // f must accept 5 and reject 0
/// # use linarb_logic::Model;
/// let mut m = Model::new();
/// m.assign(params[0], int(5));
/// assert!(f.eval(&m));
/// m.assign(params[0], int(0));
/// assert!(!f.eval(&m));
/// # Ok::<(), linarb_ml::LearnError>(())
/// ```
pub fn linear_arbitrary(
    data: &Dataset,
    params: &[Var],
    config: &LearnConfig,
) -> Result<Formula, LearnError> {
    let mut hits = Vec::new();
    linear_arbitrary_seeded(data, params, config, &[], &mut hits)
}

/// [`linear_arbitrary`] with a symbolic seed fast path: at every
/// recursion level, the seed directions are scored by an exact
/// intercept refit first. A seed that separates the level's samples
/// perfectly — or captures every positive while excluding at least one
/// negative (guaranteed conjunctive progress, the shape of
/// equality-style invariants) — replaces the classifier run outright;
/// otherwise the best-scoring seed warm-starts the SVM. Indices of
/// directly-used seeds are appended to `hits`.
pub fn linear_arbitrary_seeded(
    data: &Dataset,
    params: &[Var],
    config: &LearnConfig,
    seeds: &[SeedPlane],
    hits: &mut Vec<usize>,
) -> Result<Formula, LearnError> {
    assert_eq!(params.len(), data.dim(), "one parameter per dimension");
    if let Some(s) = data.first_contradiction() {
        return Err(LearnError::ContradictorySamples(s.clone()));
    }
    let depth_guard = 8 * (data.len() + 4);
    la_rec(
        data.positives(),
        data.negatives(),
        params,
        config,
        seeds,
        hits,
        depth_guard,
    )
}

/// Scores every seed direction by exact refit; returns the best as
/// `(index, hyperplane, errors, pos_errors)`. Deterministic: strict
/// improvement in error count, first index wins ties, early exit on a
/// perfect separator.
fn best_seed(
    seeds: &[SeedPlane],
    pos: &[Sample],
    neg: &[Sample],
) -> Option<(usize, Hyperplane, usize, usize)> {
    let mut best: Option<(usize, Hyperplane, usize, usize)> = None;
    for (i, sp) in seeds.iter().enumerate() {
        if let Some((h, errors, pos_errors)) = refit_intercept_scored(sp.dir(), pos, neg) {
            if best.as_ref().map_or(true, |(_, _, e, _)| errors < *e) {
                let perfect = errors == 0;
                best = Some((i, h, errors, pos_errors));
                if perfect {
                    break;
                }
            }
        }
    }
    best
}

fn la_rec(
    pos: &[Sample],
    neg: &[Sample],
    params: &[Var],
    config: &LearnConfig,
    seeds: &[SeedPlane],
    hits: &mut Vec<usize>,
    fuel: usize,
) -> Result<Formula, LearnError> {
    if pos.is_empty() {
        return Ok(Formula::False);
    }
    if neg.is_empty() {
        return Ok(Formula::True);
    }
    if fuel == 0 {
        return Err(LearnError::DepthExceeded);
    }

    let mut warm: Option<&[BigInt]> = None;
    let mut hp: Option<Hyperplane> = None;
    if !seeds.is_empty() && (config.seed_direct || config.seed_warm) {
        if let Some((i, h, errors, pos_errors)) = best_seed(seeds, pos, neg) {
            if config.seed_direct && (errors == 0 || (pos_errors == 0 && errors < neg.len())) {
                hits.push(i);
                hp = Some(h);
            } else if config.seed_warm {
                warm = Some(seeds[i].dir());
            }
        }
    }
    let mut hp = match hp {
        Some(h) => Some(h),
        None => linear_classify_warm(
            config.classifier,
            &config.svm,
            pos,
            neg,
            config.seed ^ fuel as u64,
            warm,
        ),
    };
    let mut split = hp.as_ref().map(|h| partition(h, pos, neg));
    // Progress guard: the hyperplane must capture at least one
    // positive, and must not classify everything as positive.
    let useless = match &split {
        None => true,
        Some((ok_pos, bad_pos, bad_neg)) => {
            ok_pos.is_empty() || (bad_neg.len() == neg.len() && bad_pos.is_empty())
        }
    };
    if useless {
        let h = two_point_separator(pos, neg)?;
        split = Some(partition(&h, pos, neg));
        hp = Some(h);
    }
    let h = hp.expect("set above");
    let (ok_pos, bad_pos, bad_neg) = split.expect("set above");
    debug_assert!(!ok_pos.is_empty());
    debug_assert!(bad_neg.len() < neg.len() || !bad_pos.is_empty());

    let mut phi = Formula::from(hyperplane_to_atom(&h, params));
    if !bad_neg.is_empty() {
        // line 5-6: conjoin a classifier separating the captured
        // positives from the misclassified negatives.
        let sub = la_rec(&ok_pos, &bad_neg, params, config, seeds, hits, fuel - 1)?;
        phi = Formula::and(vec![phi, sub]);
    }
    if !bad_pos.is_empty() {
        // line 7-8: disjoin a classifier for the missed positives.
        let sub = la_rec(&bad_pos, neg, params, config, seeds, hits, fuel - 1)?;
        phi = Formula::or(vec![phi, sub]);
    }
    Ok(phi)
}

type Partition = (Vec<Sample>, Vec<Sample>, Vec<Sample>);

/// Splits samples by the hyperplane:
/// `(S⁺✓, S⁺✗, S⁻✗)` — correctly captured positives, missed
/// positives, misclassified negatives.
fn partition(h: &Hyperplane, pos: &[Sample], neg: &[Sample]) -> Partition {
    let mut ok_pos = Vec::new();
    let mut bad_pos = Vec::new();
    let mut bad_neg = Vec::new();
    for p in pos {
        if h.predict(p) {
            ok_pos.push(p.clone());
        } else {
            bad_pos.push(p.clone());
        }
    }
    for n in neg {
        if h.predict(n) {
            bad_neg.push(n.clone());
        }
    }
    (ok_pos, bad_pos, bad_neg)
}

/// Exact separator of `pos[0]` from `neg[0]` along `w = p − n`,
/// refit against all samples to capture as much as possible.
fn two_point_separator(pos: &[Sample], neg: &[Sample]) -> Result<Hyperplane, LearnError> {
    // Find a (p, n) pair of distinct points.
    for p in pos {
        for n in neg {
            if p == n {
                continue;
            }
            let dir: Vec<BigInt> = p.iter().zip(n.iter()).map(|(a, b)| a - b).collect();
            // Refit on the full data for quality, but then *force* the
            // separation of p from n if the refit compromised it.
            if let Some(h) = refit_intercept(&dir, pos, neg) {
                if h.predict(p) && !h.predict(n) {
                    return Ok(h);
                }
            }
            // Direct threshold: midpoint of the projections.
            let hp = Hyperplane { weights: dir.clone(), threshold: BigInt::zero() };
            let tp = hp.project(p);
            let tn = hp.project(n);
            debug_assert!(tp > tn);
            let threshold = &(&tp + &tn).div_mod_floor(&BigInt::from(2)).0 + &BigInt::one();
            let h = Hyperplane { weights: dir, threshold };
            if h.predict(p) && !h.predict(n) {
                return Ok(h);
            }
        }
    }
    // Every positive equals every negative: contradictory data.
    Err(LearnError::ContradictorySamples(pos[0].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::Model;

    fn params(n: u32) -> Vec<Var> {
        (0..n).map(Var::from_index).collect()
    }

    fn eval_at(f: &Formula, ps: &[Var], point: &[i64]) -> bool {
        let mut m = Model::new();
        for (v, &x) in ps.iter().zip(point.iter()) {
            m.assign(*v, int(x));
        }
        f.eval(&m)
    }

    fn dataset(pos: &[&[i64]], neg: &[&[i64]]) -> Dataset {
        let dim = pos.first().or_else(|| neg.first()).map_or(0, |s| s.len());
        let mut d = Dataset::new(dim);
        for p in pos {
            d.add_positive(p.iter().map(|&c| int(c)).collect());
        }
        for n in neg {
            d.add_negative(n.iter().map(|&c| int(c)).collect());
        }
        d
    }

    fn separates(f: &Formula, ps: &[Var], d: &Dataset) -> bool {
        d.positives().iter().all(|s| {
            let pt: Vec<i64> = s.iter().map(|x| x.to_i64().unwrap()).collect();
            eval_at(f, ps, &pt)
        }) && d.negatives().iter().all(|s| {
            let pt: Vec<i64> = s.iter().map(|x| x.to_i64().unwrap()).collect();
            !eval_at(f, ps, &pt)
        })
    }

    #[test]
    fn separable_case_single_atom_works() {
        let d = dataset(&[&[4], &[9]], &[&[0], &[-3]]);
        let ps = params(1);
        let f = linear_arbitrary(&d, &ps, &LearnConfig::default()).unwrap();
        assert!(separates(&f, &ps, &d), "{f}");
    }

    #[test]
    fn paper_fig6_diamond() {
        // Program (a): positives on the y-axis, negatives at (3,-3), (-3,3).
        // Needs a disjunctive/conjunctive combination (Fig. 6).
        let d = dataset(
            &[&[0, -2], &[0, -1], &[0, 0], &[0, 1]],
            &[&[3, -3], &[-3, 3]],
        );
        let ps = params(2);
        for kind in [ClassifierKind::Svm, ClassifierKind::Perceptron] {
            let config = LearnConfig { classifier: kind, ..LearnConfig::default() };
            let f = linear_arbitrary(&d, &ps, &config).unwrap();
            assert!(separates(&f, &ps, &d), "classifier {kind:?}: {f}");
        }
    }

    #[test]
    fn xor_pattern_needs_arbitrary_boolean_shape() {
        // positives at (0,0) and (5,5); negatives at (0,5) and (5,0):
        // not separable by any single hyperplane.
        let d = dataset(&[&[0, 0], &[5, 5]], &[&[0, 5], &[5, 0]]);
        let ps = params(2);
        let f = linear_arbitrary(&d, &ps, &LearnConfig::default()).unwrap();
        assert!(separates(&f, &ps, &d), "{f}");
        assert!(f.size() > 1, "single atom cannot express XOR");
    }

    #[test]
    fn surrounded_point() {
        // positive at origin surrounded by negatives: the §5 dummy
        // scenario; needs a conjunction of halfplanes.
        let d = dataset(
            &[&[0, 0]],
            &[&[1, 0], &[-1, 0], &[0, 1], &[0, -1], &[1, 1], &[-1, -1], &[1, -1], &[-1, 1]],
        );
        let ps = params(2);
        let f = linear_arbitrary(&d, &ps, &LearnConfig::default()).unwrap();
        assert!(separates(&f, &ps, &d), "{f}");
    }

    #[test]
    fn contradiction_reported() {
        let mut d = dataset(&[&[1, 2]], &[&[3, 4]]);
        d.add_negative(vec![int(1), int(2)]);
        let err = linear_arbitrary(&d, &params(2), &LearnConfig::default()).unwrap_err();
        assert!(matches!(err, LearnError::ContradictorySamples(_)));
    }

    #[test]
    fn empty_classes() {
        let ps = params(1);
        let pos_only = dataset(&[&[1]], &[]);
        assert_eq!(
            linear_arbitrary(&pos_only, &ps, &LearnConfig::default()).unwrap(),
            Formula::True
        );
        let neg_only = dataset(&[], &[&[1]]);
        assert_eq!(
            linear_arbitrary(&neg_only, &ps, &LearnConfig::default()).unwrap(),
            Formula::False
        );
    }

    #[test]
    fn large_random_consistent_cloud() {
        use linarb_testutil::XorShiftRng;
        let mut rng = XorShiftRng::seed_from_u64(99);
        // Ground truth: x - 2y >= 1 \/ (x + y <= -4)
        let mut d = Dataset::new(2);
        for _ in 0..120 {
            let x = rng.gen_range(-10i64..=10);
            let y = rng.gen_range(-10i64..=10);
            let label = x - 2 * y >= 1 || x + y <= -4;
            if label {
                d.add_positive(vec![int(x), int(y)]);
            } else {
                d.add_negative(vec![int(x), int(y)]);
            }
        }
        let ps = params(2);
        let f = linear_arbitrary(&d, &ps, &LearnConfig::default()).unwrap();
        assert!(separates(&f, &ps, &d), "learned {f}");
    }

    #[test]
    fn checkerboard_worst_case_still_terminates() {
        // 4x4 checkerboard: maximally non-separable; exercises the
        // two-point fallback heavily.
        let mut d = Dataset::new(2);
        for x in 0..4i64 {
            for y in 0..4i64 {
                if (x + y) % 2 == 0 {
                    d.add_positive(vec![int(x), int(y)]);
                } else {
                    d.add_negative(vec![int(x), int(y)]);
                }
            }
        }
        let ps = params(2);
        let f = linear_arbitrary(&d, &ps, &LearnConfig::default()).unwrap();
        assert!(separates(&f, &ps, &d));
    }
}
