//! The machine-learning toolchain of the data-driven CHC solver.
//!
//! This crate implements the paper's two learning algorithms:
//!
//! * [`linear_arbitrary`] — **Algorithm 1**: recursive linear
//!   classification producing classifiers that are arbitrary boolean
//!   combinations of polyhedral (linear) atoms, even when the samples
//!   are not linearly separable.
//! * [`learn`] — **Algorithm 2**: decision-tree generalization over
//!   the feature attributes discovered by Algorithm 1 (plus predefined
//!   `mod`/Box features), selecting high-information-gain attributes
//!   to combat over- and under-fitting.
//!
//! The linear classifiers themselves ([`linear_classify`]) are a
//! soft-margin SVM and an exact integer perceptron, both emitting
//! exact integer hyperplanes after rationalization and intercept
//! refit.
//!
//! # Examples
//!
//! Learning the diamond invariant of the paper's program (a):
//!
//! ```
//! use linarb_arith::int;
//! use linarb_logic::{Model, Var};
//! use linarb_ml::{learn, Dataset, LearnConfig};
//!
//! let mut d = Dataset::new(2);
//! for p in [(0, -2), (0, -1), (0, 0), (0, 1)] {
//!     d.add_positive(vec![int(p.0), int(p.1)]);
//! }
//! d.add_negative(vec![int(3), int(-3)]);
//! d.add_negative(vec![int(-3), int(3)]);
//! let params = vec![Var::from_index(0), Var::from_index(1)];
//! let (f, _) = learn(&d, &params, &LearnConfig::default())?;
//! let mut m = Model::new();
//! m.assign(params[0], int(0));
//! m.assign(params[1], int(0));
//! assert!(f.eval(&m));
//! # Ok::<(), linarb_ml::LearnError>(())
//! ```

mod algorithm;
mod dataset;
mod dtree;
mod learn;
mod linear;
mod seed;

pub use algorithm::{
    hyperplane_to_atom, linear_arbitrary, linear_arbitrary_seeded, LearnConfig, LearnError,
};
pub use dataset::{Dataset, Sample};
pub use dtree::{dt_learn, entropy, information_gain, DecisionTree, Feature};
pub use learn::{learn, learn_seeded, LearnStats};
pub use seed::{SeedPlane, SeedStore};
pub use linear::{
    linear_classify, rationalize, refit_intercept, ClassifierKind, Hyperplane, SvmParams,
};
