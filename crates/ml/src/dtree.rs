//! Decision-tree learning over feature attributes (Algorithm 2's
//! generalization layer).
//!
//! Features are integer-valued functions of a sample: linear
//! combinations `w·x` (extracted from `LinearArbitrary`'s atoms, plus
//! the unit "Box" features) and `mod`-features `xᵢ mod k` (§3.3,
//! *Beyond Polyhedra*). Each internal node tests `f(x) ≤ c`; the tree
//! must classify the training data perfectly (the paper tunes its DT
//! implementation the same way), choosing splits by information gain.

use crate::dataset::{Dataset, Sample};
use linarb_arith::BigInt;
use linarb_logic::{Atom, Formula, LinExpr, ModAtom, Var};
use std::fmt;

/// An integer-valued feature attribute.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Feature {
    /// `w·x` for an integer weight vector over the sample dimensions.
    Linear(Vec<BigInt>),
    /// `x_dim mod modulus` (result in `[0, modulus)`).
    Mod {
        /// Sample dimension.
        dim: usize,
        /// Modulus (`≥ 2`).
        modulus: BigInt,
    },
}

impl Feature {
    /// Evaluates the feature on a sample.
    pub fn eval(&self, s: &Sample) -> BigInt {
        match self {
            Feature::Linear(w) => w.iter().zip(s.iter()).map(|(a, b)| a * b).sum(),
            Feature::Mod { dim, modulus } => s[*dim].mod_floor(modulus),
        }
    }

    /// The formula for the decision `f(x) ≤ c` over `params`.
    pub fn le_formula(&self, c: &BigInt, params: &[Var]) -> Formula {
        match self {
            Feature::Linear(w) => {
                let lhs = LinExpr::from_terms(
                    params.iter().zip(w.iter()).map(|(v, a)| (*v, a.clone())),
                    BigInt::zero(),
                );
                Formula::from(Atom::le(lhs, LinExpr::constant(c.clone())))
            }
            Feature::Mod { dim, modulus } => {
                // (x mod k) <= c  ==  disjunction of residues 0..=c
                let mut residues = Vec::new();
                let mut r = BigInt::zero();
                while &r <= c && r < *modulus {
                    residues.push(Formula::from(ModAtom::new(
                        LinExpr::var(params[*dim]),
                        modulus.clone(),
                        r.clone(),
                    )));
                    r = &r + &BigInt::one();
                }
                Formula::or(residues)
            }
        }
    }
}

impl fmt::Debug for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feature::Linear(w) => write!(f, "lin{w:?}"),
            Feature::Mod { dim, modulus } => write!(f, "x{dim} mod {modulus}"),
        }
    }
}

/// A learned decision tree.
#[derive(Clone, Debug)]
pub enum DecisionTree {
    /// Classify as positive (`true`) or negative (`false`).
    Leaf(bool),
    /// Test `feature(x) ≤ threshold`; `then` on true, `els` on false.
    Node {
        /// Index into the feature list used at learning time.
        feature: usize,
        /// The threshold `c`.
        threshold: BigInt,
        /// Subtree when `f(x) ≤ c`.
        then: Box<DecisionTree>,
        /// Subtree when `f(x) > c`.
        els: Box<DecisionTree>,
    },
}

impl DecisionTree {
    /// Classifies a sample.
    pub fn classify(&self, features: &[Feature], s: &Sample) -> bool {
        match self {
            DecisionTree::Leaf(b) => *b,
            DecisionTree::Node { feature, threshold, then, els } => {
                if features[*feature].eval(s) <= *threshold {
                    then.classify(features, s)
                } else {
                    els.classify(features, s)
                }
            }
        }
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        match self {
            DecisionTree::Leaf(_) => 1,
            DecisionTree::Node { then, els, .. } => 1 + then.size() + els.size(),
        }
    }

    /// Depth of the tree (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            DecisionTree::Leaf(_) => 1,
            DecisionTree::Node { then, els, .. } => 1 + then.depth().max(els.depth()),
        }
    }

    /// Converts the tree into the disjunction over all paths reaching
    /// positive leaves (the paper's DT-to-formula conversion).
    pub fn to_formula(&self, features: &[Feature], params: &[Var]) -> Formula {
        fn walk(
            t: &DecisionTree,
            features: &[Feature],
            params: &[Var],
            path: &mut Vec<Formula>,
            out: &mut Vec<Formula>,
        ) {
            match t {
                DecisionTree::Leaf(true) => out.push(Formula::and(path.clone())),
                DecisionTree::Leaf(false) => {}
                DecisionTree::Node { feature, threshold, then, els } => {
                    let dec = features[*feature].le_formula(threshold, params);
                    path.push(dec.clone());
                    walk(then, features, params, path, out);
                    path.pop();
                    path.push(Formula::not(dec));
                    walk(els, features, params, path, out);
                    path.pop();
                }
            }
        }
        let mut out = Vec::new();
        let mut path = Vec::new();
        walk(self, features, params, &mut path, &mut out);
        Formula::or(out)
    }
}

/// Shannon entropy of a (positive, negative) split, in bits.
pub fn entropy(pos: usize, neg: usize) -> f64 {
    let n = pos + neg;
    if n == 0 || pos == 0 || neg == 0 {
        return 0.0;
    }
    let p = pos as f64 / n as f64;
    let q = neg as f64 / n as f64;
    -(p * p.log2() + q * q.log2())
}

/// Information gain of splitting `(pos, neg)` into
/// `(pos_le, neg_le)` / `(pos_gt, neg_gt)`.
pub fn information_gain(
    pos_le: usize,
    neg_le: usize,
    pos_gt: usize,
    neg_gt: usize,
) -> f64 {
    let n = (pos_le + neg_le + pos_gt + neg_gt) as f64;
    if n == 0.0 {
        return 0.0;
    }
    let before = entropy(pos_le + pos_gt, neg_le + neg_gt);
    let le = (pos_le + neg_le) as f64 / n;
    let gt = (pos_gt + neg_gt) as f64 / n;
    before - le * entropy(pos_le, neg_le) - gt * entropy(pos_gt, neg_gt)
}

/// Learns a decision tree that classifies `data` perfectly using the
/// given features, or `None` if the features cannot distinguish some
/// positive from some negative sample.
///
/// Every feature is evaluated on every sample exactly once up front;
/// node splits work on cached projections and a per-feature sorted
/// sample order, so each node's threshold scan is a single sweep
/// instead of the former per-candidate `Feature::eval` rescans (the
/// learner-phase hot spot once the feature set grows with seeds).
pub fn dt_learn(data: &Dataset, features: &[Feature]) -> Option<DecisionTree> {
    use linarb_trace::Level;
    let mut span = linarb_trace::span(Level::Debug, "ml", "ml.dtree");
    let n_pos = data.num_positive();
    let samples: Vec<&Sample> = data
        .positives()
        .iter()
        .chain(data.negatives().iter())
        .collect();
    let n = samples.len();
    if span.active() {
        span.record("samples", n);
        span.record("features", features.len());
    }
    let vals: Vec<Vec<BigInt>> = features
        .iter()
        .map(|f| samples.iter().map(|s| f.eval(s)).collect())
        .collect();
    // Stable sort: ties keep sample order, so the sweep's candidate
    // enumeration is deterministic.
    let orders: Vec<Vec<u32>> = vals
        .iter()
        .map(|col| {
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.sort_by(|&a, &b| col[a as usize].cmp(&col[b as usize]));
            idx
        })
        .collect();
    let members: Vec<u32> = (0..n as u32).collect();
    let mut mask = vec![false; n];
    build(&members, n_pos, &vals, &orders, &mut mask)
}

fn build(
    members: &[u32],
    n_pos: usize,
    vals: &[Vec<BigInt>],
    orders: &[Vec<u32>],
    mask: &mut [bool],
) -> Option<DecisionTree> {
    // Samples are indexed globally: positives first, negatives after.
    let pos_cnt = members.iter().filter(|&&i| (i as usize) < n_pos).count();
    let neg_cnt = members.len() - pos_cnt;
    if neg_cnt == 0 {
        return Some(DecisionTree::Leaf(true));
    }
    if pos_cnt == 0 {
        return Some(DecisionTree::Leaf(false));
    }
    // Pick the (feature, threshold) with maximal information gain:
    // walk this node's members in each feature's global value order,
    // evaluating a candidate at every distinct value except the last
    // (same candidate set and tie-breaks as the naive scan).
    for &i in members {
        mask[i as usize] = true;
    }
    let mut best: Option<(f64, usize, &BigInt)> = None;
    for (fi, order) in orders.iter().enumerate() {
        let col = &vals[fi];
        let (mut pos_le, mut neg_le) = (0usize, 0usize);
        let mut group_val: Option<&BigInt> = None;
        for &si in order {
            let s = si as usize;
            if !mask[s] {
                continue;
            }
            let v = &col[s];
            if let Some(gv) = group_val {
                if v != gv {
                    let gain = information_gain(
                        pos_le,
                        neg_le,
                        pos_cnt - pos_le,
                        neg_cnt - neg_le,
                    );
                    let better = match &best {
                        None => true,
                        Some((g, _, _)) => gain > *g + 1e-12,
                    };
                    if better {
                        best = Some((gain, fi, gv));
                    }
                    group_val = Some(v);
                }
            } else {
                group_val = Some(v);
            }
            if s < n_pos {
                pos_le += 1;
            } else {
                neg_le += 1;
            }
        }
    }
    for &i in members {
        mask[i as usize] = false;
    }
    let (gain, fi, c) = best?;
    if gain <= 1e-12 {
        // No split makes progress: features cannot separate the data.
        return None;
    }
    let threshold = c.clone();
    let (mut m_le, mut m_gt) = (Vec::new(), Vec::new());
    for &i in members {
        if vals[fi][i as usize] <= threshold {
            m_le.push(i);
        } else {
            m_gt.push(i);
        }
    }
    let then = build(&m_le, n_pos, vals, orders, mask)?;
    let els = build(&m_gt, n_pos, vals, orders, mask)?;
    Some(DecisionTree::Node {
        feature: fi,
        threshold,
        then: Box::new(then),
        els: Box::new(els),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::Model;

    fn s(coords: &[i64]) -> Sample {
        coords.iter().map(|&c| int(c)).collect()
    }

    fn dataset(pos: &[&[i64]], neg: &[&[i64]]) -> Dataset {
        let dim = pos.first().or_else(|| neg.first()).map_or(0, |x| x.len());
        let mut d = Dataset::new(dim);
        for p in pos {
            d.add_positive(s(p));
        }
        for n in neg {
            d.add_negative(s(n));
        }
        d
    }

    #[test]
    fn entropy_shape() {
        assert_eq!(entropy(0, 10), 0.0);
        assert_eq!(entropy(10, 0), 0.0);
        assert!((entropy(5, 5) - 1.0).abs() < 1e-12);
        assert!(entropy(1, 9) < entropy(3, 7));
    }

    #[test]
    fn info_gain_prefers_clean_splits() {
        // clean split: 5+/0- vs 0+/5-
        let clean = information_gain(5, 0, 0, 5);
        // muddy split: 3+/2- vs 2+/3-
        let muddy = information_gain(3, 2, 2, 3);
        assert!(clean > muddy);
        assert!((clean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_linear_feature_tree() {
        let d = dataset(&[&[0], &[1], &[2]], &[&[5], &[9]]);
        let features = vec![Feature::Linear(vec![int(1)])];
        let t = dt_learn(&d, &features).expect("separable by x");
        assert!(d.positives().iter().all(|p| t.classify(&features, p)));
        assert!(d.negatives().iter().all(|n| !t.classify(&features, n)));
        // one split suffices
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn tree_formula_matches_tree() {
        let d = dataset(&[&[0, 0], &[1, 1], &[4, 5]], &[&[5, 0], &[6, 1], &[0, 6]]);
        let features = vec![
            Feature::Linear(vec![int(1), int(0)]),
            Feature::Linear(vec![int(0), int(1)]),
            Feature::Linear(vec![int(1), int(1)]),
            Feature::Linear(vec![int(1), int(-1)]),
        ];
        let t = dt_learn(&d, &features).expect("separable");
        let params = vec![Var::from_index(0), Var::from_index(1)];
        let f = t.to_formula(&features, &params);
        for x in -2i64..8 {
            for y in -2i64..8 {
                let sample = s(&[x, y]);
                let mut m = Model::new();
                m.assign(params[0], int(x));
                m.assign(params[1], int(y));
                assert_eq!(
                    t.classify(&features, &sample),
                    f.eval(&m),
                    "mismatch at ({x},{y}) for {f}"
                );
            }
        }
    }

    #[test]
    fn mod_feature_separates_parity() {
        let d = dataset(&[&[0], &[2], &[4], &[-2]], &[&[1], &[3], &[-1]]);
        // Linear features can only carve the finite samples into many
        // intervals; the mod feature separates them in a single split.
        let lin = vec![Feature::Linear(vec![int(1)])];
        let lin_tree = dt_learn(&d, &lin).expect("intervals separate finite data");
        assert!(lin_tree.size() > 3, "interval tree must be larger");
        let features = vec![
            Feature::Linear(vec![int(1)]),
            Feature::Mod { dim: 0, modulus: int(2) },
        ];
        let t = dt_learn(&d, &features).expect("parity separable with mod");
        assert!(d.positives().iter().all(|p| t.classify(&features, p)));
        assert!(d.negatives().iter().all(|n| !t.classify(&features, n)));
        // formula semantics
        let params = vec![Var::from_index(0)];
        let f = t.to_formula(&features, &params);
        for x in -5i64..=5 {
            let mut m = Model::new();
            m.assign(params[0], int(x));
            assert_eq!(f.eval(&m), x.rem_euclid(2) == 0, "x={x} f={f}");
        }
    }

    #[test]
    fn insufficient_features_fail() {
        // positives and negatives share the x-projection
        let d = dataset(&[&[0, 0]], &[&[0, 1]]);
        let features = vec![Feature::Linear(vec![int(1), int(0)])];
        assert!(dt_learn(&d, &features).is_none());
    }

    #[test]
    fn prefers_high_gain_feature() {
        // y separates perfectly; x is noise. The root must use y.
        let d = dataset(
            &[&[1, 0], &[5, 1], &[3, 2]],
            &[&[2, 8], &[4, 9], &[1, 7]],
        );
        let features = vec![
            Feature::Linear(vec![int(1), int(0)]),
            Feature::Linear(vec![int(0), int(1)]),
        ];
        let t = dt_learn(&d, &features).unwrap();
        match &t {
            DecisionTree::Node { feature, .. } => assert_eq!(*feature, 1),
            _ => panic!("expected a split"),
        }
        assert_eq!(t.size(), 3, "single y-split suffices");
    }

    #[test]
    fn paper_program_b_attributes() {
        // §2.2: DT picks concise attributes -i+x and -i+2x-2y with
        // thresholds separating the data. We emulate with samples from
        // the program: reachable states have x == i and x == 2y or 2y+1.
        let mut d = Dataset::new(4); // (i, x, y, n)
        // positives: actual loop-head states
        for i in 0..6i64 {
            let x = i;
            let y = i / 2;
            d.add_positive(s(&[i, x, y, 6]));
        }
        // negatives: states violating x == i
        d.add_negative(s(&[2, 5, 1, 6]));
        d.add_negative(s(&[3, 1, 0, 6]));
        d.add_negative(s(&[4, 4, 0, 6])); // violates parity relation
        let features = vec![
            Feature::Linear(vec![int(-1), int(1), int(0), int(0)]), // -i + x
            Feature::Linear(vec![int(-1), int(2), int(-2), int(0)]), // -i + 2x - 2y
            Feature::Linear(vec![int(-10), int(-1), int(5), int(6)]), // junk complex
        ];
        let t = dt_learn(&d, &features).expect("separable");
        assert!(d.positives().iter().all(|p| t.classify(&features, p)));
        assert!(d.negatives().iter().all(|n| !t.classify(&features, n)));
    }
}
