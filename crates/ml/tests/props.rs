//! Property tests for the learning toolchain: Lemma 3.1 (perfect
//! classification of any consistent dataset) for both Algorithm 1 and
//! the full Algorithm 2 pipeline, under both classifiers.

use linarb_arith::int;
use linarb_logic::{Formula, Model, Var};
use linarb_ml::{learn, linear_arbitrary, ClassifierKind, Dataset, LearnConfig};
use linarb_testutil::{cases, XorShiftRng};
use std::collections::HashSet;

const CASES: u64 = 48;

fn params(n: usize) -> Vec<Var> {
    (0..n as u32).map(Var::from_index).collect()
}

fn rand_points(rng: &mut XorShiftRng, max_len: usize, span: i64) -> Vec<(i64, i64)> {
    let n = rng.gen_range(1usize..max_len);
    (0..n)
        .map(|_| (rng.gen_range(-span..span), rng.gen_range(-span..span)))
        .collect()
}

fn build_dataset(pos: &[(i64, i64)], neg: &[(i64, i64)]) -> Option<Dataset> {
    let ps: HashSet<_> = pos.iter().collect();
    let ns: HashSet<_> = neg.iter().collect();
    if ps.intersection(&ns).next().is_some() || ps.is_empty() || ns.is_empty() {
        return None; // contradictory or degenerate: covered by unit tests
    }
    let mut d = Dataset::new(2);
    for &(x, y) in pos {
        d.add_positive(vec![int(x), int(y)]);
    }
    for &(x, y) in neg {
        d.add_negative(vec![int(x), int(y)]);
    }
    Some(d)
}

fn perfect(f: &Formula, ps: &[Var], d: &Dataset) -> bool {
    let at = |s: &[linarb_arith::BigInt]| {
        let mut m = Model::new();
        for (v, x) in ps.iter().zip(s.iter()) {
            m.assign(*v, x.clone());
        }
        f.eval(&m)
    };
    d.positives().iter().all(|s| at(s)) && d.negatives().iter().all(|s| !at(s))
}

#[test]
fn algorithm1_separates_any_consistent_data() {
    cases(CASES, 0xC001, |rng| {
        let pos = rand_points(rng, 12, 8);
        let neg = rand_points(rng, 12, 8);
        let svm = rng.gen_bool(0.5);
        let Some(d) = build_dataset(&pos, &neg) else { return };
        let ps = params(2);
        let config = LearnConfig {
            classifier: if svm { ClassifierKind::Svm } else { ClassifierKind::Perceptron },
            ..LearnConfig::default()
        };
        let f = linear_arbitrary(&d, &ps, &config).expect("consistent data must learn");
        assert!(perfect(&f, &ps, &d), "Lemma 3.1 violated by {f} on {pos:?}/{neg:?}");
    });
}

#[test]
fn algorithm2_separates_any_consistent_data() {
    cases(CASES, 0xC002, |rng| {
        let pos = rand_points(rng, 10, 8);
        let neg = rand_points(rng, 10, 8);
        let Some(d) = build_dataset(&pos, &neg) else { return };
        let ps = params(2);
        let (f, _) = learn(&d, &ps, &LearnConfig::default()).expect("consistent data must learn");
        assert!(perfect(&f, &ps, &d), "Lemma 3.1 violated by {f} on {pos:?}/{neg:?}");
    });
}

#[test]
fn ablation_no_dt_also_perfect() {
    cases(CASES, 0xC003, |rng| {
        let pos = rand_points(rng, 8, 6);
        let neg = rand_points(rng, 8, 6);
        let Some(d) = build_dataset(&pos, &neg) else { return };
        let ps = params(2);
        let config = LearnConfig { use_decision_tree: false, ..LearnConfig::default() };
        let (f, stats) = learn(&d, &ps, &config).expect("consistent data must learn");
        assert!(!stats.dt_used);
        assert!(perfect(&f, &ps, &d));
    });
}
