//! Property tests for the learning toolchain: Lemma 3.1 (perfect
//! classification of any consistent dataset) for both Algorithm 1 and
//! the full Algorithm 2 pipeline, under both classifiers.

use linarb_arith::int;
use linarb_logic::{Formula, Model, Var};
use linarb_ml::{
    learn, linear_arbitrary, ClassifierKind, Dataset, LearnConfig,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn params(n: usize) -> Vec<Var> {
    (0..n as u32).map(Var::from_index).collect()
}

fn build_dataset(pos: &[(i64, i64)], neg: &[(i64, i64)]) -> Option<Dataset> {
    let ps: HashSet<_> = pos.iter().collect();
    let ns: HashSet<_> = neg.iter().collect();
    if ps.intersection(&ns).next().is_some() || ps.is_empty() || ns.is_empty() {
        return None; // contradictory or degenerate: covered by unit tests
    }
    let mut d = Dataset::new(2);
    for &(x, y) in pos {
        d.add_positive(vec![int(x), int(y)]);
    }
    for &(x, y) in neg {
        d.add_negative(vec![int(x), int(y)]);
    }
    Some(d)
}

fn perfect(f: &Formula, ps: &[Var], d: &Dataset) -> bool {
    let at = |s: &[linarb_arith::BigInt]| {
        let mut m = Model::new();
        for (v, x) in ps.iter().zip(s.iter()) {
            m.assign(*v, x.clone());
        }
        f.eval(&m)
    };
    d.positives().iter().all(|s| at(s)) && d.negatives().iter().all(|s| !at(s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn algorithm1_separates_any_consistent_data(
        pos in prop::collection::vec((-8i64..8, -8i64..8), 1..12),
        neg in prop::collection::vec((-8i64..8, -8i64..8), 1..12),
        svm in any::<bool>(),
    ) {
        let Some(d) = build_dataset(&pos, &neg) else { return Ok(()); };
        let ps = params(2);
        let config = LearnConfig {
            classifier: if svm { ClassifierKind::Svm } else { ClassifierKind::Perceptron },
            ..LearnConfig::default()
        };
        let f = linear_arbitrary(&d, &ps, &config).expect("consistent data must learn");
        prop_assert!(perfect(&f, &ps, &d), "Lemma 3.1 violated by {f} on {pos:?}/{neg:?}");
    }

    #[test]
    fn algorithm2_separates_any_consistent_data(
        pos in prop::collection::vec((-8i64..8, -8i64..8), 1..10),
        neg in prop::collection::vec((-8i64..8, -8i64..8), 1..10),
    ) {
        let Some(d) = build_dataset(&pos, &neg) else { return Ok(()); };
        let ps = params(2);
        let (f, _) = learn(&d, &ps, &LearnConfig::default()).expect("consistent data must learn");
        prop_assert!(perfect(&f, &ps, &d), "Lemma 3.1 violated by {f} on {pos:?}/{neg:?}");
    }

    #[test]
    fn ablation_no_dt_also_perfect(
        pos in prop::collection::vec((-6i64..6, -6i64..6), 1..8),
        neg in prop::collection::vec((-6i64..6, -6i64..6), 1..8),
    ) {
        let Some(d) = build_dataset(&pos, &neg) else { return Ok(()); };
        let ps = params(2);
        let config = LearnConfig { use_decision_tree: false, ..LearnConfig::default() };
        let (f, stats) = learn(&d, &ps, &config).expect("consistent data must learn");
        prop_assert!(!stats.dt_used);
        prop_assert!(perfect(&f, &ps, &d));
    }
}
