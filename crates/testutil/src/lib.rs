//! Dependency-free deterministic randomness for linarb.
//!
//! The container builds with no network access, so the workspace
//! cannot pull `rand`/`proptest`/`criterion` from crates.io. This
//! crate replaces them with the two pieces the workspace actually
//! needs:
//!
//! * [`XorShiftRng`] — a seeded xorshift64* generator with a
//!   `rand`-like `gen_range`/`gen_bool` surface, used both by
//!   production code that needs reproducible pseudo-randomness (the
//!   SVM subgradient sampler, the benchmark generators) and by tests;
//! * [`cases`] — a minimal property-test loop: run a closure over `n`
//!   seeded generators, reporting the failing seed on panic.
//!
//! Determinism is a feature: the same seed always yields the same
//! stream on every platform, so generated benchmark corpora and
//! learned classifiers are stable across runs.

use std::ops::{Range, RangeInclusive};

/// A seeded xorshift64* pseudo-random generator.
///
/// ```
/// use linarb_testutil::XorShiftRng;
/// let mut a = XorShiftRng::seed_from_u64(42);
/// let mut b = XorShiftRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let v = a.gen_range(-5i64..=5);
/// assert!((-5..=5).contains(&v));
/// ```
#[derive(Clone, Debug)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a seed; distinct seeds give unrelated
    /// streams (the seed is pre-mixed with splitmix64).
    pub fn seed_from_u64(seed: u64) -> XorShiftRng {
        // splitmix64 guarantees a non-zero, well-mixed initial state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShiftRng { state: z | 1 }
    }

    /// The next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Samples uniformly from a range; supports `a..b` and `a..=b`
    /// over the common integer types.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        // Multiply-shift with rejection of the biased zone.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// Range types [`XorShiftRng::gen_range`] can sample from.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample.
    fn sample(self, rng: &mut XorShiftRng) -> Self::Output;
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut XorShiftRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut XorShiftRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut XorShiftRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut XorShiftRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo == 0 && hi as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

impl UniformRange for Range<i128> {
    type Output = i128;
    fn sample(self, rng: &mut XorShiftRng) -> i128 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u128;
        if span <= u64::MAX as u128 {
            self.start + rng.below(span as u64) as i128
        } else {
            // wide span: 128 random bits, modulo bias negligible here
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            self.start.wrapping_add((wide % span) as i128)
        }
    }
}

impl UniformRange for RangeInclusive<i128> {
    type Output = i128;
    fn sample(self, rng: &mut XorShiftRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        if lo == i128::MIN && hi == i128::MAX {
            return any_i128(rng);
        }
        if hi == i128::MAX {
            return (lo - 1..hi).sample(rng) + 1;
        }
        (lo..hi + 1).sample(rng)
    }
}

/// An arbitrary `i128` (full width).
pub fn any_i128(rng: &mut XorShiftRng) -> i128 {
    (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as i128
}

/// An arbitrary `i64` (full width).
pub fn any_i64(rng: &mut XorShiftRng) -> i64 {
    rng.next_u64() as i64
}

/// Minimal property-test driver: runs `body` for `n` seeded
/// generators. On panic the failing case index is part of the seed
/// (`base_seed + i`), so failures reproduce by construction.
pub fn cases(n: u64, base_seed: u64, mut body: impl FnMut(&mut XorShiftRng)) {
    for i in 0..n {
        let mut rng = XorShiftRng::seed_from_u64(base_seed.wrapping_add(i));
        body(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = XorShiftRng::seed_from_u64(7);
        let mut b = XorShiftRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = XorShiftRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
            let w = rng.gen_range(3i32..4);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn all_values_reachable_small_range() {
        let mut rng = XorShiftRng::seed_from_u64(3);
        let mut seen = [false; 11];
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..=5);
            seen[(v + 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = XorShiftRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn seeds_decorrelate() {
        // consecutive seeds must not produce overlapping prefixes
        let a: Vec<u64> = {
            let mut r = XorShiftRng::seed_from_u64(100);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShiftRng::seed_from_u64(101);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn cases_runs_n_times() {
        let mut count = 0;
        cases(32, 0xABC, |_| count += 1);
        assert_eq!(count, 32);
    }
}
