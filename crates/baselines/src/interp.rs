//! Unwinding + Farkas interpolation — the scale model of Duality
//! [24, 25] and of interpolation-based verifiers like UAutomizer [16].
//!
//! The engine enumerates *traces*: recursion-free derivation skeletons
//! of bounded height, flattened to pure conjunctions of atoms (clause
//! constraints are DNF-expanded, sibling instances are fresh-renamed,
//! and predicate boundaries get explicit interface variables). A
//! satisfiable trace is a concrete counterexample. An unsatisfiable
//! trace yields, from the simplex **Farkas certificate**, one
//! interpolant per predicate boundary: the positive combination of the
//! subtree's inequalities, whose variables provably lie in the shared
//! interface. Per-node interpolants accumulate into a candidate
//! interpretation (disjoined per predicate — the union over unwinding
//! skeletons approximates the least fixpoint) that is checked for
//! inductiveness; failure deepens the unwinding.
//!
//! Two strategies reproduce the evaluation's two baselines:
//!
//! * [`InterpMode::Duality`] — batch all traces of a depth, then
//!   check inductiveness once per depth.
//! * [`InterpMode::TraceRefinement`] — UAutomizer-style: check after
//!   every refuted trace, converging more slowly on programs whose
//!   invariants need many disjuncts.

use crate::util::{instantiate_clause, FreshVars};
use linarb_arith::{BigInt, BigRational};
use linarb_logic::{
    Atom, ChcSystem, Formula, Interpretation, LinExpr, PredId, Var,
};
use linarb_smt::{check_conjunction, check_sat, Budget, ConjunctionResult, SmtResult};
use linarb_solver::CrossSeed;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Interpolation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterpMode {
    /// Batch interpolants per unwinding depth (Duality-style).
    Duality,
    /// Check inductiveness after every trace (trace-abstraction
    /// style).
    TraceRefinement,
}

/// Configuration for [`UnwindInterp`].
#[derive(Clone, Copy, Debug)]
pub struct InterpConfig {
    /// Strategy.
    pub mode: InterpMode,
    /// Maximum unwinding height.
    pub max_depth: usize,
    /// Cap on traces per depth (DNF × skeleton product).
    pub max_traces: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig { mode: InterpMode::Duality, max_depth: 28, max_traces: 512 }
    }
}

/// Result of an unwinding-interpolation run.
#[derive(Debug)]
pub enum InterpResult {
    /// Inductive interpretation found.
    Sat(Interpretation),
    /// A satisfiable trace is a concrete counterexample.
    Unsat {
        /// The unwinding depth of the satisfiable trace. A certificate
        /// can be re-derived by running BMC to this depth.
        depth: usize,
    },
    /// Budget or depth exhausted.
    Unknown,
}

impl InterpResult {
    /// `true` for [`InterpResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, InterpResult::Sat(_))
    }

    /// `true` for [`InterpResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, InterpResult::Unsat { .. })
    }
}

#[derive(Clone, Debug)]
struct TraceNode {
    pred: PredId,
    interface: Vec<Var>,
    atoms: Range<usize>,
}

#[derive(Clone, Debug, Default)]
struct Trace {
    atoms: Vec<Atom>,
    nodes: Vec<TraceNode>,
}

/// The unwinding-interpolation engine.
pub struct UnwindInterp<'a> {
    sys: &'a ChcSystem,
    config: InterpConfig,
    candidate: HashMap<PredId, Vec<Atom>>,
    /// Optional portfolio seeding bus: harvested Farkas-plane atoms are
    /// published as candidate hyperplanes for the CEGAR learner.
    sink: Option<Arc<dyn CrossSeed>>,
    traces_seen: usize,
}

impl<'a> UnwindInterp<'a> {
    /// Creates an engine for `sys`.
    pub fn new(sys: &'a ChcSystem, config: InterpConfig) -> UnwindInterp<'a> {
        UnwindInterp { sys, config, candidate: HashMap::new(), sink: None, traces_seen: 0 }
    }

    /// Attaches a cross-seeding bus: every harvested interpolant atom
    /// is published for the portfolio's CEGAR engine.
    pub fn with_seed_sink(mut self, sink: Arc<dyn CrossSeed>) -> UnwindInterp<'a> {
        self.sink = Some(sink);
        self
    }

    /// Traces enumerated so far (statistics).
    pub fn num_traces(&self) -> usize {
        self.traces_seen
    }

    /// Expands a predicate application into all bounded derivations,
    /// extending each partial trace. `args` are expressed over the
    /// partial trace's existing variables.
    fn expand(
        &self,
        pred: PredId,
        args: &[LinExpr],
        depth: usize,
        builds: Vec<Trace>,
        fresh: &mut FreshVars,
        budget: &Budget,
    ) -> Vec<Trace> {
        let mut out = Vec::new();
        for mut build in builds {
            if budget.should_stop() {
                return out; // caller notices exhaustion and aborts
            }
            if depth == 0 {
                continue; // this skeleton cannot be completed
            }
            // Interface variables + parent-side linking equalities.
            let interface: Vec<Var> =
                (0..args.len()).map(|_| fresh.fresh()).collect();
            for (iv, a) in interface.iter().zip(args.iter()) {
                let (le, ge) = Atom::eq(LinExpr::var(*iv), a.clone());
                build.atoms.push(le);
                build.atoms.push(ge);
            }
            let start = build.atoms.len();
            for clause in self.sys.clauses() {
                let is_head = matches!(&clause.head,
                    linarb_logic::ClauseHead::Pred(a) if a.pred == pred);
                if !is_head {
                    continue;
                }
                let inst = instantiate_clause(clause, fresh);
                // child-side: interface = head args, plus the clause
                // constraint, DNF-expanded to conjunctions of atoms.
                let mut link = Vec::new();
                for (iv, h) in interface.iter().zip(inst.head_args.iter()) {
                    let (le, ge) = Atom::eq(LinExpr::var(*iv), h.clone());
                    link.push(le);
                    link.push(ge);
                }
                let Some(cubes) = inst.constraint.to_dnf(32) else { continue };
                for cube in cubes {
                    if out.len() + 1 > self.config.max_traces {
                        return out;
                    }
                    let mut b2 = build.clone();
                    b2.atoms.extend(link.iter().cloned());
                    b2.atoms.extend(cube.iter().cloned());
                    let mut subs = vec![b2];
                    for app in &inst.body {
                        subs = self.expand(app.pred, &app.args, depth - 1, subs, fresh, budget);
                        if subs.is_empty() {
                            break;
                        }
                    }
                    for mut b3 in subs {
                        b3.nodes.push(TraceNode {
                            pred,
                            interface: interface.clone(),
                            atoms: start..b3.atoms.len(),
                        });
                        out.push(b3);
                    }
                }
            }
        }
        out
    }

    /// All traces of the query clauses at the given depth.
    fn traces_at(&mut self, depth: usize, budget: &Budget) -> Vec<Trace> {
        let mut all = Vec::new();
        for clause in self.sys.clauses() {
            if !clause.is_query() || budget.should_stop() {
                continue;
            }
            let mut fresh = FreshVars::for_system(self.sys);
            let inst = instantiate_clause(clause, &mut fresh);
            let goal = inst.goal.clone().expect("query");
            let root = Formula::and(vec![inst.constraint.clone(), Formula::not(goal)]);
            let Some(cubes) = root.to_dnf(32) else { continue };
            for cube in cubes {
                let mut builds = vec![Trace { atoms: cube, nodes: Vec::new() }];
                for app in &inst.body {
                    builds = self.expand(app.pred, &app.args, depth, builds, &mut fresh, budget);
                    if builds.is_empty() {
                        break;
                    }
                }
                all.extend(builds);
                if all.len() >= self.config.max_traces {
                    all.truncate(self.config.max_traces);
                    return all;
                }
            }
        }
        all
    }

    /// Extracts per-boundary Farkas interpolants from a refuted trace.
    fn harvest_interpolants(
        &mut self,
        trace: &Trace,
        farkas: &linarb_smt::Conflict,
    ) {
        for node in &trace.nodes {
            // Positive combination of the subtree's certificate atoms.
            let mut combo = LinExpr::zero();
            let mut denom_lcm = BigInt::one();
            let mut parts: Vec<(BigRational, usize)> = Vec::new();
            for entry in &farkas.entries {
                if node.atoms.contains(&entry.tag) {
                    parts.push((entry.multiplier.clone(), entry.tag));
                    denom_lcm = BigInt::lcm(&denom_lcm, entry.multiplier.denom());
                }
            }
            if parts.is_empty() {
                continue;
            }
            for (m, tag) in parts {
                let scaled = &m * &BigRational::from(denom_lcm.clone());
                debug_assert!(scaled.is_integer());
                combo = &combo + &trace.atoms[tag].expr().scale(&scaled.floor());
            }
            // combo ≤ 0 over the interface variables; rename to params.
            let params = &self.sys.pred(node.pred).params;
            let rename: HashMap<Var, LinExpr> = node
                .interface
                .iter()
                .zip(params.iter())
                .map(|(iv, p)| (*iv, LinExpr::var(*p)))
                .collect();
            let atom = Atom::le_zero(combo.subst(&rename));
            if atom.is_truth() {
                continue;
            }
            // Interpolants must be over the interface only; anything
            // else indicates numerical debris — drop it.
            if !atom.vars().all(|v| params.contains(&v)) {
                continue;
            }
            let list = self.candidate.entry(node.pred).or_default();
            if !list.contains(&atom) {
                if let Some(sink) = &self.sink {
                    sink.publish_atom(node.pred, &atom);
                }
                list.push(atom);
            }
        }
    }

    fn candidate_interp(&self) -> Interpretation {
        // Each harvested interpolant over-approximates the derivations
        // of one unwinding skeleton; their union approximates the
        // least fixpoint, so candidates are disjunctions.
        self.candidate
            .iter()
            .map(|(p, atoms)| {
                (
                    *p,
                    Formula::or(atoms.iter().cloned().map(Formula::from).collect()),
                )
            })
            .collect()
    }

    fn candidate_inductive(&self, budget: &Budget) -> Option<bool> {
        let interp = self.candidate_interp();
        for c in self.sys.clauses() {
            let chk = self.sys.validity_check(c, &interp);
            match check_sat(&chk, budget) {
                SmtResult::Unsat => {}
                SmtResult::Sat(_) => return Some(false),
                SmtResult::Unknown => return None,
            }
        }
        Some(true)
    }

    /// Harvest-only mode: enumerates traces up to the configured
    /// depth, refutes them, and returns the Farkas interpolant atoms
    /// per predicate — *without* ever checking inductiveness. The
    /// data-driven solver uses these as symbolic seeds for its
    /// learner, so a cheap shallow unwinding is enough.
    ///
    /// Output order is deterministic (predicates by id, atoms in
    /// harvest order); pass a conflict-limited rather than wall-clock
    /// budget when downstream determinism matters.
    pub fn harvest_seed_atoms(&mut self, budget: &Budget) -> Vec<(PredId, Atom)> {
        'depths: for depth in 0..=self.config.max_depth {
            if budget.exhausted() {
                break;
            }
            let traces = self.traces_at(depth, budget);
            for trace in &traces {
                if budget.exhausted() {
                    break 'depths;
                }
                self.traces_seen += 1;
                if let ConjunctionResult::Unsat { farkas: Some(cert), .. } =
                    check_conjunction(&trace.atoms, budget)
                {
                    self.harvest_interpolants(trace, &cert);
                }
            }
        }
        let mut preds: Vec<PredId> = self.candidate.keys().copied().collect();
        preds.sort_by_key(|p| p.0);
        let mut out = Vec::new();
        for p in preds {
            for a in &self.candidate[&p] {
                out.push((p, a.clone()));
            }
        }
        out
    }

    /// Runs the engine.
    pub fn solve(&mut self, budget: &Budget) -> InterpResult {
        // Trivial case: candidate `true` might already work (no
        // queries or queries valid outright).
        if self.candidate_inductive(budget) == Some(true) {
            return InterpResult::Sat(self.candidate_interp());
        }
        for depth in 0..=self.config.max_depth {
            if budget.exhausted() {
                return InterpResult::Unknown;
            }
            let traces = self.traces_at(depth, budget);
            for trace in &traces {
                if budget.exhausted() {
                    return InterpResult::Unknown;
                }
                self.traces_seen += 1;
                match check_conjunction(&trace.atoms, budget) {
                    ConjunctionResult::Sat(_) => return InterpResult::Unsat { depth },
                    ConjunctionResult::Unknown => return InterpResult::Unknown,
                    ConjunctionResult::Unsat { farkas, .. } => {
                        if let Some(cert) = farkas {
                            self.harvest_interpolants(trace, &cert);
                        }
                    }
                }
                if self.config.mode == InterpMode::TraceRefinement {
                    match self.candidate_inductive(budget) {
                        Some(true) => return InterpResult::Sat(self.candidate_interp()),
                        Some(false) => {}
                        None => return InterpResult::Unknown,
                    }
                }
            }
            if self.config.mode == InterpMode::Duality {
                match self.candidate_inductive(budget) {
                    Some(true) => return InterpResult::Sat(self.candidate_interp()),
                    Some(false) => {}
                    None => return InterpResult::Unknown,
                }
            }
        }
        InterpResult::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_logic::parse_chc;
    use linarb_solver::verify_interpretation;
    use std::time::Duration;

    fn run(text: &str, mode: InterpMode) -> InterpResult {
        let sys = parse_chc(text).unwrap();
        let config = InterpConfig { mode, ..InterpConfig::default() };
        let mut engine = UnwindInterp::new(&sys, config);
        let r = engine.solve(&Budget::timeout(Duration::from_secs(30)));
        if let InterpResult::Sat(interp) = &r {
            assert_eq!(
                verify_interpretation(&sys, interp, &Budget::timeout(Duration::from_secs(30))),
                Some(true),
                "interpolant interpretation must validate the system"
            );
        }
        r
    }

    const COUNTER_SAFE: &str = r#"
        (declare-fun p (Int) Bool)
        (assert (forall ((x Int)) (=> (= x 0) (p x))))
        (assert (forall ((x Int) (x1 Int))
            (=> (and (p x) (< x 5) (= x1 (+ x 1))) (p x1))))
        (assert (forall ((x Int)) (=> (p x) (<= x 5))))
    "#;

    #[test]
    fn safe_counter_duality() {
        let r = run(COUNTER_SAFE, InterpMode::Duality);
        assert!(r.is_sat(), "{r:?}");
    }

    #[test]
    fn safe_counter_trace_mode() {
        let r = run(COUNTER_SAFE, InterpMode::TraceRefinement);
        assert!(r.is_sat(), "{r:?}");
    }

    #[test]
    fn unsafe_counter_found() {
        let text = COUNTER_SAFE.replace("(<= x 5)", "(<= x 2)");
        let r = run(&text, InterpMode::Duality);
        assert!(r.is_unsat(), "{r:?}");
    }

    #[test]
    fn trivially_valid_queries() {
        let text = r#"
            (assert (forall ((x Int)) (=> (> x 0) (>= x 1))))
        "#;
        let r = run(text, InterpMode::Duality);
        assert!(r.is_sat(), "{r:?}");
    }

    #[test]
    fn trivially_invalid_query() {
        let text = r#"
            (assert (forall ((x Int)) (=> (> x 0) (>= x 2))))
        "#;
        let r = run(text, InterpMode::Duality);
        assert!(r.is_unsat(), "{r:?}");
    }

    #[test]
    fn nonlinear_unsafe_fibo() {
        let text = r#"
            (declare-fun p (Int Int) Bool)
            (assert (forall ((x Int) (y Int))
                (=> (and (< x 1) (= y 0)) (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (= x 1) (= y 1)) (p x y))))
            (assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
                (=> (and (> x 1) (p (- x 1) y1) (p (- x 2) y2) (= y (+ y1 y2)))
                    (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (p x y) (> x 1)) (>= y x))))
        "#;
        let r = run(text, InterpMode::Duality);
        assert!(r.is_unsat(), "{r:?}");
    }

    #[test]
    fn harvested_seed_atoms_are_param_local_and_deterministic() {
        let sys = parse_chc(COUNTER_SAFE).unwrap();
        let harvest = |depth| {
            let config =
                InterpConfig { mode: InterpMode::Duality, max_depth: depth, max_traces: 64 };
            UnwindInterp::new(&sys, config)
                .harvest_seed_atoms(&Budget::timeout(Duration::from_secs(30)))
        };
        let atoms = harvest(3);
        assert!(!atoms.is_empty(), "shallow unwinding must yield interpolant atoms");
        for (p, a) in &atoms {
            let params = &sys.pred(*p).params;
            assert!(a.vars().all(|v| params.contains(&v)), "atom {a:?} not param-local");
        }
        assert_eq!(
            atoms.iter().map(|(p, a)| (p.0, format!("{a:?}"))).collect::<Vec<_>>(),
            harvest(3).iter().map(|(p, a)| (p.0, format!("{a:?}"))).collect::<Vec<_>>(),
            "harvest must be deterministic"
        );
    }

    #[test]
    fn interface_interpolants_stay_local() {
        // Fig. 1's property x >= 1: interpolation should converge and
        // every harvested interpolant is over p's parameters only
        // (checked inside harvest; a Sat result proves it worked).
        let text = r#"
            (declare-fun p (Int Int) Bool)
            (assert (forall ((x Int) (y Int))
                (=> (and (= x 1) (= y 0)) (p x y))))
            (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
                (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
            (assert (forall ((x Int) (y Int)) (=> (p x y) (>= x 1))))
        "#;
        let r = run(text, InterpMode::Duality);
        // Interpolation may or may not generalize here; it must never
        // claim unsat.
        assert!(!r.is_unsat(), "{r:?}");
    }
}
