//! Shared helpers: fresh-variable supplies and clause instantiation.

use linarb_logic::{ChcSystem, Clause, Formula, LinExpr, Model, PredApp, Var};
use std::collections::HashMap;

/// Hands out variables guaranteed fresh w.r.t. a system.
#[derive(Debug)]
pub struct FreshVars {
    next: u32,
}

impl FreshVars {
    /// A supply starting above every variable of `sys`.
    pub fn for_system(sys: &ChcSystem) -> FreshVars {
        FreshVars { next: sys.num_vars() as u32 }
    }

    /// The next fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var::from_index(self.next);
        self.next += 1;
        v
    }
}

/// A clause instance with all variables renamed fresh.
#[derive(Debug, Clone)]
pub struct ClauseInstance {
    /// Renamed constraint.
    pub constraint: Formula,
    /// Renamed body applications.
    pub body: Vec<PredApp>,
    /// Renamed head arguments (empty for goal heads).
    pub head_args: Vec<LinExpr>,
    /// Renamed goal formula (for query clauses).
    pub goal: Option<Formula>,
    /// The renaming applied (original clause variable → fresh
    /// variable); lets certificate builders pull a model of the
    /// instance back to the clause's own variables.
    pub var_map: HashMap<Var, Var>,
}

impl ClauseInstance {
    /// Translates a model over this instance's fresh variables back
    /// into a model over the original clause's variables, as required
    /// by `DerivationNode::replay` (which re-evaluates the *original*
    /// clause).
    pub fn pull_back(&self, model: &Model) -> Model {
        self.var_map
            .iter()
            .map(|(orig, fresh)| (*orig, model.value(*fresh)))
            .collect()
    }
}

/// Renames every variable of `clause` through a fresh supply.
pub fn instantiate_clause(clause: &Clause, fresh: &mut FreshVars) -> ClauseInstance {
    let map: HashMap<Var, Var> = clause
        .vars()
        .into_iter()
        .map(|v| (v, fresh.fresh()))
        .collect();
    let exprs: HashMap<Var, LinExpr> =
        map.iter().map(|(k, v)| (*k, LinExpr::var(*v))).collect();
    let constraint = clause.constraint.subst(&exprs);
    let body = clause
        .body_preds
        .iter()
        .map(|app| PredApp::new(app.pred, app.args.iter().map(|a| a.subst(&exprs)).collect()))
        .collect();
    let (head_args, goal) = match &clause.head {
        linarb_logic::ClauseHead::Pred(app) => (
            app.args.iter().map(|a| a.subst(&exprs)).collect(),
            None,
        ),
        linarb_logic::ClauseHead::Goal(g) => (Vec::new(), Some(g.subst(&exprs))),
    };
    ClauseInstance { constraint, body, head_args, goal, var_map: map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::{Atom, ChcSystem};

    #[test]
    fn instances_are_variable_disjoint() {
        let mut sys = ChcSystem::new();
        let p = sys.declare_pred("p", 1);
        let x = sys.fresh_var("x");
        sys.rule(
            vec![PredApp::new(p, vec![LinExpr::var(x)])],
            Formula::from(Atom::ge(LinExpr::var(x), LinExpr::constant(int(0)))),
            p,
            vec![&LinExpr::var(x) + &LinExpr::constant(int(1))],
        );
        let mut fresh = FreshVars::for_system(&sys);
        let i1 = instantiate_clause(&sys.clauses()[0], &mut fresh);
        let i2 = instantiate_clause(&sys.clauses()[0], &mut fresh);
        let v1: std::collections::HashSet<Var> = i1.constraint.vars();
        let v2: std::collections::HashSet<Var> = i2.constraint.vars();
        assert!(v1.is_disjoint(&v2));
        assert!(!v1.contains(&x));
    }
}
