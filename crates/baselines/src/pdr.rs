//! Property-directed reachability for CHC systems — the scale model
//! of GPDR [17] and Spacer [19] used by the evaluation.
//!
//! Frames `F₁ ⊇ F₂ ⊇ …` hold lemma cubes per predicate
//! (`F_i(p) = ⋀ ¬cube`), over-approximating the states derivable in
//! `≤ i` steps. Query countermodels spawn proof obligations that are
//! recursively blocked or confirmed reachable; blocked point cubes are
//! generalized dimension-wise before becoming lemmas; lemmas propagate
//! forward until two consecutive frames agree (an inductive
//! interpretation) or a derivation confirms unsatisfiability.
//!
//! `spacer_mode` additionally caches *must summaries* — concrete
//! reachable points — short-circuiting repeated sub-derivations, which
//! is the essential Spacer-over-GPDR optimization the paper's Fig.
//! 8(c) measures.

use crate::util::{instantiate_clause, FreshVars};
use linarb_arith::BigInt;
use linarb_logic::{
    Atom, ChcSystem, ClauseId, Formula, Interpretation, LinExpr, Model, PredApp, PredId, Var,
};
use linarb_ml::Sample;
use linarb_smt::{check_sat, Budget, SmtResult};
use linarb_solver::{CrossSeed, DerivationNode};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A conjunction of atoms over a predicate's parameters.
pub type Cube = Vec<Atom>;

/// PDR configuration.
#[derive(Clone, Copy, Debug)]
pub struct PdrConfig {
    /// Cache must-summaries (Spacer) instead of re-deriving (GPDR).
    pub spacer_mode: bool,
    /// Maximum frame level before giving up.
    pub max_level: usize,
    /// Maximum proof obligations before giving up.
    pub max_obligations: usize,
}

impl Default for PdrConfig {
    fn default() -> Self {
        PdrConfig { spacer_mode: true, max_level: 32, max_obligations: 6_000 }
    }
}

/// Result of a PDR run.
#[derive(Debug)]
pub enum PdrResult {
    /// Inductive interpretation found.
    Sat(Interpretation),
    /// A concrete derivation violates a query; the derivation replays
    /// against the original system ([`DerivationNode::replay`]).
    Unsat(DerivationNode),
    /// Budget, level, or obligation limit exhausted.
    Unknown,
}

impl PdrResult {
    /// `true` for [`PdrResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, PdrResult::Sat(_))
    }

    /// `true` for [`PdrResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, PdrResult::Unsat(_))
    }
}

enum Verdict {
    Reach,
    Blocked,
    Unknown,
}

/// The PDR engine.
pub struct PdrSolver<'a> {
    sys: &'a ChcSystem,
    config: PdrConfig,
    /// `frames[i][p]`: lemma cubes of `F_i(p)` (stored cumulatively:
    /// a lemma at level `i` is present in frames `1..=i`). Ordered
    /// maps keep runs deterministic.
    frames: Vec<BTreeMap<PredId, Vec<Cube>>>,
    /// Must summaries (Spacer mode).
    reach: BTreeMap<PredId, Vec<Sample>>,
    /// Justification of every reached point: the clause instance that
    /// derived it (model pulled back to the clause's own variables) and
    /// the body points it was derived from. Children are always
    /// justified before their parents, so certificate extraction
    /// terminates.
    justif: HashMap<(PredId, Sample), (ClauseId, Model, Vec<(PredId, Sample)>)>,
    /// Optional portfolio seeding bus: generalized lemma atoms are
    /// published as candidate hyperplanes for the CEGAR learner.
    sink: Option<Arc<dyn CrossSeed>>,
    obligations: usize,
}

impl<'a> PdrSolver<'a> {
    /// Creates a solver for `sys`.
    pub fn new(sys: &'a ChcSystem, config: PdrConfig) -> PdrSolver<'a> {
        PdrSolver {
            sys,
            config,
            frames: vec![BTreeMap::new(), BTreeMap::new()],
            reach: BTreeMap::new(),
            justif: HashMap::new(),
            sink: None,
            obligations: 0,
        }
    }

    /// Attaches a cross-seeding bus: each generalized lemma's atoms are
    /// published for the portfolio's CEGAR engine.
    pub fn with_seed_sink(mut self, sink: Arc<dyn CrossSeed>) -> PdrSolver<'a> {
        self.sink = Some(sink);
        self
    }

    /// Number of proof obligations processed (statistics).
    pub fn num_obligations(&self) -> usize {
        self.obligations
    }

    fn frame_formula(&self, level: usize, pred: PredId, args: &[LinExpr]) -> Formula {
        if level == 0 {
            return Formula::False;
        }
        let Some(lemmas) = self.frames.get(level).and_then(|f| f.get(&pred)) else {
            return Formula::True;
        };
        let params = &self.sys.pred(pred).params;
        let map: HashMap<Var, LinExpr> =
            params.iter().copied().zip(args.iter().cloned()).collect();
        Formula::and(
            lemmas
                .iter()
                .map(|cube| {
                    Formula::not(Formula::and(
                        cube.iter().map(|a| Formula::from(a.subst(&map))).collect(),
                    ))
                })
                .collect(),
        )
    }

    fn cube_at(&self, pred: PredId, cube: &Cube, args: &[LinExpr]) -> Formula {
        let params = &self.sys.pred(pred).params;
        let map: HashMap<Var, LinExpr> =
            params.iter().copied().zip(args.iter().cloned()).collect();
        Formula::and(cube.iter().map(|a| Formula::from(a.subst(&map))).collect())
    }

    fn point_cube(&self, pred: PredId, point: &Sample) -> Cube {
        let params = &self.sys.pred(pred).params;
        let mut cube = Vec::new();
        for (v, val) in params.iter().zip(point.iter()) {
            let (le, ge) = Atom::eq(LinExpr::var(*v), LinExpr::constant(val.clone()));
            cube.push(le);
            cube.push(ge);
        }
        cube
    }

    fn cube_holds_at(&self, pred: PredId, cube: &Cube, point: &Sample) -> bool {
        let params = &self.sys.pred(pred).params;
        let m: linarb_logic::Model = params
            .iter()
            .copied()
            .zip(point.iter().cloned())
            .collect();
        cube.iter().all(|a| a.holds(&m))
    }

    /// Can some clause with head `pred` produce a state in `cube` from
    /// `F_{level-1}` bodies? Returns the first witnessing
    /// (clause, instance, model) or `None` when fully blocked.
    fn predecessor_query(
        &self,
        pred: PredId,
        cube: &Cube,
        level: usize,
        budget: &Budget,
    ) -> Result<Option<(ClauseId, crate::util::ClauseInstance, Model)>, ()> {
        for clause in self.sys.clauses() {
            if budget.should_stop() {
                return Err(());
            }
            let happ = match &clause.head {
                linarb_logic::ClauseHead::Pred(a) if a.pred == pred => a,
                _ => continue,
            };
            let _ = happ;
            let mut fresh = FreshVars::for_system(self.sys);
            let inst = instantiate_clause(clause, &mut fresh);
            let mut conj = vec![inst.constraint.clone()];
            conj.push(self.cube_at(pred, cube, &inst.head_args));
            for app in &inst.body {
                conj.push(self.frame_formula(level - 1, app.pred, &app.args));
            }
            match check_sat(&Formula::and(conj), budget) {
                SmtResult::Sat(m) => return Ok(Some((clause.id, inst, m))),
                SmtResult::Unsat => {}
                SmtResult::Unknown => return Err(()),
            }
        }
        Ok(None)
    }

    fn reachable(
        &mut self,
        pred: PredId,
        cube: Cube,
        level: usize,
        depth: usize,
        budget: &Budget,
    ) -> Verdict {
        self.obligations += 1;
        if depth == 0
            || self.obligations > self.config.max_obligations
            || budget.exhausted()
        {
            return Verdict::Unknown;
        }
        debug_assert!(level >= 1);
        if self.config.spacer_mode {
            if let Some(points) = self.reach.get(&pred) {
                if points.iter().any(|pt| self.cube_holds_at(pred, &cube, pt)) {
                    return Verdict::Reach;
                }
            }
        }
        loop {
            let (cid, inst, model) = match self.predecessor_query(pred, &cube, level, budget) {
                Err(()) => return Verdict::Unknown,
                Ok(None) => break,
                Ok(Some(x)) => x,
            };
            // Try to confirm each body point reachable one level down.
            let mut all_reached = true;
            let mut blocked_any = false;
            for app in &inst.body {
                let point = app.eval_args(&model);
                let pcube = self.point_cube(app.pred, &point);
                match self.reachable(app.pred, pcube, level - 1, depth - 1, budget) {
                    Verdict::Reach => {}
                    Verdict::Blocked => {
                        all_reached = false;
                        blocked_any = true;
                        break;
                    }
                    Verdict::Unknown => return Verdict::Unknown,
                }
            }
            if all_reached {
                let point: Sample = inst.head_args.iter().map(|a| a.eval(&model)).collect();
                let children: Vec<(PredId, Sample)> = inst
                    .body
                    .iter()
                    .map(|app| (app.pred, app.eval_args(&model)))
                    .collect();
                self.justif
                    .entry((pred, point.clone()))
                    .or_insert_with(|| (cid, inst.pull_back(&model), children));
                self.reach.entry(pred).or_default().push(point);
                return Verdict::Reach;
            }
            debug_assert!(blocked_any);
            // frames strengthened by the recursive call: re-solve
        }
        // Fully blocked: generalize and record the lemma.
        let gen = self.generalize(pred, cube, level, budget);
        self.add_lemma(pred, gen, level);
        Verdict::Blocked
    }

    /// Literal-dropping generalization: widen the blocked cube by
    /// removing one atom at a time while it stays blocked (equalities
    /// weaken to half-spaces, then disappear entirely). Never emits
    /// the empty cube.
    fn generalize(&self, pred: PredId, cube: Cube, level: usize, budget: &Budget) -> Cube {
        let mut current = cube;
        let mut i = 0;
        while i < current.len() {
            if current.len() == 1 || budget.should_stop() {
                break;
            }
            let mut candidate = current.clone();
            candidate.remove(i);
            let still_blocked = matches!(
                self.predecessor_query(pred, &candidate, level, budget),
                Ok(None)
            );
            if still_blocked {
                current = candidate;
            } else {
                i += 1;
            }
        }
        current
    }

    fn add_lemma(&mut self, pred: PredId, cube: Cube, level: usize) {
        if let Some(sink) = &self.sink {
            // Lemma atoms are half-planes over the predicate's
            // parameters — exactly what the CEGAR seed store wants.
            for atom in &cube {
                sink.publish_atom(pred, atom);
            }
        }
        for i in 1..=level {
            while self.frames.len() <= i {
                self.frames.push(BTreeMap::new());
            }
            let lemmas = self.frames[i].entry(pred).or_default();
            if !lemmas.contains(&cube) {
                lemmas.push(cube.clone());
            }
        }
    }

    fn frame_interp(&self, level: usize) -> Interpretation {
        let mut interp = Interpretation::new();
        if let Some(frame) = self.frames.get(level) {
            for (p, lemmas) in frame {
                let f = Formula::and(
                    lemmas
                        .iter()
                        .map(|cube| {
                            Formula::not(Formula::and(
                                cube.iter().cloned().map(Formula::from).collect(),
                            ))
                        })
                        .collect(),
                );
                interp.insert(*p, f);
            }
        }
        interp
    }

    /// Runs PDR to completion or exhaustion.
    pub fn solve(&mut self, budget: &Budget) -> PdrResult {
        let queries: Vec<_> = self
            .sys
            .clauses()
            .iter()
            .filter(|c| c.is_query())
            .cloned()
            .collect();
        for level in 1..=self.config.max_level {
            while self.frames.len() <= level {
                self.frames.push(BTreeMap::new());
            }
            // Block all query violations at this level.
            for query in &queries {
                loop {
                    if budget.exhausted() || self.obligations > self.config.max_obligations {
                        return PdrResult::Unknown;
                    }
                    let mut fresh = FreshVars::for_system(self.sys);
                    let inst = instantiate_clause(query, &mut fresh);
                    let mut conj = vec![inst.constraint.clone()];
                    for app in &inst.body {
                        conj.push(self.frame_formula(level, app.pred, &app.args));
                    }
                    conj.push(Formula::not(inst.goal.clone().expect("query")));
                    let model = match check_sat(&Formula::and(conj), budget) {
                        SmtResult::Unsat => break,
                        SmtResult::Unknown => return PdrResult::Unknown,
                        SmtResult::Sat(m) => m,
                    };
                    if inst.body.is_empty() {
                        return PdrResult::Unsat(DerivationNode {
                            pred: None,
                            sample: Vec::new(),
                            clause: query.id,
                            model: inst.pull_back(&model),
                            children: Vec::new(),
                        });
                    }
                    let mut all_reached = true;
                    for app in &inst.body {
                        let point = app.eval_args(&model);
                        let pcube = self.point_cube(app.pred, &point);
                        match self.reachable(app.pred, pcube, level, 64, budget) {
                            Verdict::Reach => {}
                            Verdict::Blocked => {
                                all_reached = false;
                                break;
                            }
                            Verdict::Unknown => return PdrResult::Unknown,
                        }
                    }
                    if all_reached {
                        let children = inst
                            .body
                            .iter()
                            .map(|app| self.derivation_for(app.pred, &app.eval_args(&model)))
                            .collect();
                        return PdrResult::Unsat(DerivationNode {
                            pred: None,
                            sample: Vec::new(),
                            clause: query.id,
                            model: inst.pull_back(&model),
                            children,
                        });
                    }
                }
            }
            // Propagate lemmas forward.
            while self.frames.len() <= level + 1 {
                self.frames.push(BTreeMap::new());
            }
            for i in 1..=level {
                let preds: Vec<PredId> = self.frames[i].keys().copied().collect();
                for p in preds {
                    let cubes = self.frames[i][&p].clone();
                    for cube in cubes {
                        if budget.should_stop() {
                            return PdrResult::Unknown;
                        }
                        if self.frames[i + 1]
                            .get(&p)
                            .is_some_and(|ls| ls.contains(&cube))
                        {
                            continue;
                        }
                        let blocked = matches!(
                            self.predecessor_query(p, &cube, i + 1, budget),
                            Ok(None)
                        );
                        if blocked {
                            self.frames[i + 1].entry(p).or_default().push(cube);
                        }
                    }
                }
            }
            // Fixpoint detection.
            for i in 1..=level {
                if self.frames_equal(i, i + 1) {
                    return PdrResult::Sat(self.frame_interp(i + 1));
                }
            }
        }
        PdrResult::Unknown
    }

    /// Rebuilds the derivation of a reached point from the
    /// justification map. Every point in `reach` has an entry (recorded
    /// the moment it was confirmed), and children are recorded before
    /// parents, so the recursion is total.
    fn derivation_for(&self, pred: PredId, sample: &Sample) -> DerivationNode {
        let (clause, model, children) = self
            .justif
            .get(&(pred, sample.clone()))
            .expect("reached point must be justified");
        DerivationNode {
            pred: Some(pred),
            sample: sample.clone(),
            clause: *clause,
            model: model.clone(),
            children: children
                .iter()
                .map(|(p, s)| self.derivation_for(*p, s))
                .collect(),
        }
    }

    fn frames_equal(&self, i: usize, j: usize) -> bool {
        let empty = BTreeMap::new();
        let a = self.frames.get(i).unwrap_or(&empty);
        let b = self.frames.get(j).unwrap_or(&empty);
        let preds: std::collections::HashSet<PredId> =
            a.keys().chain(b.keys()).copied().collect();
        preds.iter().all(|p| {
            let la = a.get(p).map(Vec::as_slice).unwrap_or(&[]);
            let lb = b.get(p).map(Vec::as_slice).unwrap_or(&[]);
            la.len() == lb.len() && la.iter().all(|c| lb.contains(c))
        })
    }
}

// keep BigInt referenced for doc purposes (samples are BigInt vectors)
#[allow(dead_code)]
fn _anchor(_: &BigInt, _: &PredApp) {}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_logic::parse_chc;
    use linarb_smt::Budget;
    use linarb_solver::verify_interpretation;
    use std::time::Duration;

    fn run(text: &str, spacer: bool) -> PdrResult {
        let sys = parse_chc(text).unwrap();
        let config = PdrConfig { spacer_mode: spacer, ..PdrConfig::default() };
        let mut pdr = PdrSolver::new(&sys, config);
        let r = pdr.solve(&Budget::timeout(Duration::from_secs(30)));
        match &r {
            PdrResult::Sat(interp) => {
                assert_eq!(
                    verify_interpretation(&sys, interp, &Budget::timeout(Duration::from_secs(30))),
                    Some(true),
                    "PDR interpretation must validate the system"
                );
            }
            PdrResult::Unsat(derivation) => {
                assert!(
                    derivation.replay(&sys),
                    "PDR derivation must replay against the system"
                );
            }
            PdrResult::Unknown => {}
        }
        r
    }

    const COUNTER_SAFE: &str = r#"
        (declare-fun p (Int) Bool)
        (assert (forall ((x Int)) (=> (= x 0) (p x))))
        (assert (forall ((x Int) (x1 Int))
            (=> (and (p x) (< x 5) (= x1 (+ x 1))) (p x1))))
        (assert (forall ((x Int)) (=> (p x) (<= x 5))))
    "#;

    #[test]
    fn safe_counter_both_modes() {
        for spacer in [false, true] {
            let r = run(COUNTER_SAFE, spacer);
            assert!(r.is_sat(), "spacer={spacer}: {r:?}");
        }
    }

    #[test]
    fn unsafe_counter_both_modes() {
        let text = COUNTER_SAFE.replace("(<= x 5)", "(<= x 3)");
        for spacer in [false, true] {
            let r = run(&text, spacer);
            assert!(r.is_unsat(), "spacer={spacer}: {r:?}");
        }
    }

    #[test]
    fn fact_violation() {
        let text = r#"
            (declare-fun p (Int) Bool)
            (assert (forall ((x Int)) (=> (= x 7) (p x))))
            (assert (forall ((x Int)) (=> (p x) (<= x 3))))
        "#;
        let r = run(text, true);
        assert!(r.is_unsat(), "{r:?}");
    }

    #[test]
    fn no_queries_is_trivially_sat() {
        let text = r#"
            (declare-fun p (Int) Bool)
            (assert (forall ((x Int)) (=> (= x 0) (p x))))
        "#;
        let r = run(text, true);
        assert!(r.is_sat(), "{r:?}");
    }

    #[test]
    fn fig1_box_invariant() {
        // Fig. 1 needs x >= 1 /\ y >= 0; PDR's box lemmas can find it.
        let text = r#"
            (declare-fun p (Int Int) Bool)
            (assert (forall ((x Int) (y Int))
                (=> (and (= x 1) (= y 0)) (p x y))))
            (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
                (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
            (assert (forall ((x Int) (y Int))
                (=> (p x y) (>= x 1))))
        "#;
        let r = run(text, true);
        // PDR may or may not converge here (the diverging example of
        // the paper!) — but it must never report Unsat.
        assert!(!r.is_unsat(), "{r:?}");
    }

    #[test]
    fn nonlinear_unsafe_fibo() {
        let text = r#"
            (declare-fun p (Int Int) Bool)
            (assert (forall ((x Int) (y Int))
                (=> (and (< x 1) (= y 0)) (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (= x 1) (= y 1)) (p x y))))
            (assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
                (=> (and (> x 1) (p (- x 1) y1) (p (- x 2) y2) (= y (+ y1 y2)))
                    (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (p x y) (> x 1)) (>= y x))))
        "#;
        let r = run(text, true);
        assert!(r.is_unsat(), "{r:?}");
    }

    #[test]
    fn spacer_mode_caches_reachability() {
        // On the unsafe fibo, spacer should need no more obligations
        // than gpdr (must summaries avoid re-derivation).
        let text = r#"
            (declare-fun p (Int Int) Bool)
            (assert (forall ((x Int) (y Int))
                (=> (and (< x 1) (= y 0)) (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (= x 1) (= y 1)) (p x y))))
            (assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
                (=> (and (> x 1) (p (- x 1) y1) (p (- x 2) y2) (= y (+ y1 y2)))
                    (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (p x y) (> x 3)) (>= y x))))
        "#;
        let sys = parse_chc(text).unwrap();
        let mut gpdr = PdrSolver::new(&sys, PdrConfig { spacer_mode: false, ..Default::default() });
        let rg = gpdr.solve(&Budget::timeout(Duration::from_secs(60)));
        let mut spacer = PdrSolver::new(&sys, PdrConfig { spacer_mode: true, ..Default::default() });
        let rs = spacer.solve(&Budget::timeout(Duration::from_secs(60)));
        // Both should refute; spacer with fewer or equal obligations.
        if rg.is_unsat() && rs.is_unsat() {
            assert!(spacer.num_obligations() <= gpdr.num_obligations());
        }
    }
}
