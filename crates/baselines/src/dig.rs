//! DIG-style learner: template equations + octagonal bounds from
//! positive traces [27].
//!
//! DIG infers *conjunctive* candidate invariants from execution data:
//! linear equalities (the nullspace of the sample moment matrix,
//! computed here by exact Gaussian elimination) and octagonal interval
//! bounds. It has no mechanism for disjunctions — the limitation the
//! paper's Fig. 8(b) measures: on programs whose invariants are
//! disjunctive, the candidates never separate the counterexamples and
//! verification stalls.

use linarb_arith::{BigInt, BigRational};
use linarb_logic::{Atom, Formula, LinExpr, Var};
use linarb_ml::{Dataset, LearnError, Sample};
use linarb_smt::Budget;
use linarb_solver::Learner;

/// The DIG-style template learner. Implements
/// [`Learner`](linarb_solver::Learner) so it runs inside the same
/// CEGAR sampling loop as the paper's toolchain.
#[derive(Clone, Debug, Default)]
pub struct DigLearner {
    /// Optional shared budget polled inside the candidate-selection
    /// loop so portfolio cancellation is prompt even mid-learn.
    pub budget: Option<Budget>,
}

impl DigLearner {
    /// Attaches a budget polled by the greedy candidate-selection loop.
    pub fn with_budget(mut self, budget: Budget) -> DigLearner {
        self.budget = Some(budget);
        self
    }

    fn stopped(&self) -> bool {
        self.budget.as_ref().is_some_and(Budget::should_stop)
    }
}

/// Exact nullspace basis of the row space of `rows` (each row a
/// rational vector): vectors `v` with `row · v = 0` for every row.
fn nullspace(rows: &[Vec<BigRational>], width: usize) -> Vec<Vec<BigRational>> {
    // Gaussian elimination to RREF.
    let mut m: Vec<Vec<BigRational>> = rows.to_vec();
    let mut pivot_cols = Vec::new();
    let mut r = 0usize;
    for c in 0..width {
        // find pivot
        let Some(pr) = (r..m.len()).find(|&i| !m[i][c].is_zero()) else {
            continue;
        };
        m.swap(r, pr);
        let inv = m[r][c].recip();
        for x in m[r].iter_mut() {
            *x = &*x * &inv;
        }
        for i in 0..m.len() {
            if i != r && !m[i][c].is_zero() {
                let f = m[i][c].clone();
                for j in 0..width {
                    let sub = &f * &m[r][j];
                    m[i][j] = &m[i][j] - &sub;
                }
            }
        }
        pivot_cols.push(c);
        r += 1;
        if r == m.len() {
            break;
        }
    }
    // free columns generate the nullspace
    let mut basis = Vec::new();
    for free in 0..width {
        if pivot_cols.contains(&free) {
            continue;
        }
        let mut v = vec![BigRational::zero(); width];
        v[free] = BigRational::one();
        for (row_idx, &pc) in pivot_cols.iter().enumerate() {
            v[pc] = -&m[row_idx][free];
        }
        basis.push(v);
    }
    basis
}

fn to_integer_vector(v: &[BigRational]) -> Vec<BigInt> {
    let lcm = v
        .iter()
        .fold(BigInt::one(), |l, x| BigInt::lcm(&l, x.denom()));
    let ints: Vec<BigInt> = v
        .iter()
        .map(|x| {
            let s = x * &BigRational::from(lcm.clone());
            debug_assert!(s.is_integer());
            s.floor()
        })
        .collect();
    let g = ints
        .iter()
        .fold(BigInt::zero(), |g, c| BigInt::gcd(&g, c));
    if g.is_zero() || g.is_one() {
        ints
    } else {
        ints.iter().map(|c| c / &g).collect()
    }
}

impl DigLearner {
    /// Linear equalities holding on all positive samples.
    fn equations(&self, pos: &[Sample], params: &[Var]) -> Vec<Formula> {
        let width = params.len() + 1; // [x₁..x_d, 1]
        let rows: Vec<Vec<BigRational>> = pos
            .iter()
            .map(|s| {
                s.iter()
                    .map(BigRational::from)
                    .chain(std::iter::once(BigRational::one()))
                    .collect()
            })
            .collect();
        nullspace(&rows, width)
            .iter()
            .map(|v| {
                let iv = to_integer_vector(v);
                let expr = LinExpr::from_terms(
                    params.iter().zip(iv.iter()).map(|(p, c)| (*p, c.clone())),
                    iv[params.len()].clone(),
                );
                Atom::eq_expr(expr, LinExpr::zero())
            })
            .collect()
    }

    /// Octagonal bounds (min/max of `±xᵢ` and `xᵢ ± xⱼ`) over the
    /// positive samples.
    fn bounds(&self, pos: &[Sample], params: &[Var]) -> Vec<Formula> {
        let dim = params.len();
        let mut dirs: Vec<Vec<BigInt>> = Vec::new();
        for i in 0..dim {
            let mut w = vec![BigInt::zero(); dim];
            w[i] = BigInt::one();
            dirs.push(w);
        }
        for i in 0..dim {
            for j in (i + 1)..dim {
                for (si, sj) in [(1i64, 1i64), (1, -1)] {
                    let mut w = vec![BigInt::zero(); dim];
                    w[i] = BigInt::from(si);
                    w[j] = BigInt::from(sj);
                    dirs.push(w);
                }
            }
        }
        let mut out = Vec::new();
        for w in dirs {
            let proj: Vec<BigInt> = pos
                .iter()
                .map(|s| w.iter().zip(s.iter()).map(|(a, b)| a * b).sum())
                .collect();
            let (Some(min), Some(max)) = (proj.iter().min(), proj.iter().max()) else {
                continue;
            };
            let expr = LinExpr::from_terms(
                params.iter().zip(w.iter()).map(|(p, c)| (*p, c.clone())),
                BigInt::zero(),
            );
            out.push(Formula::from(Atom::ge(
                expr.clone(),
                LinExpr::constant(min.clone()),
            )));
            out.push(Formula::from(Atom::le(expr, LinExpr::constant(max.clone()))));
        }
        out
    }
}

impl Learner for DigLearner {
    fn learn(&self, data: &Dataset, params: &[Var]) -> Result<Formula, LearnError> {
        if let Some(s) = data.first_contradiction() {
            return Err(LearnError::ContradictorySamples(s.clone()));
        }
        if data.num_positive() == 0 {
            return Ok(Formula::False);
        }
        // Candidate pool: equations first (they generalize), then
        // octagonal bounds. Like DIG's CEGIR filtering, only the
        // candidates needed to refute the counterexamples are kept —
        // a pure-equation invariant stays pure (and inductive).
        let mut pool = self.equations(data.positives(), params);
        pool.extend(self.bounds(data.positives(), params));
        let holds_at = |f: &Formula, s: &Sample| {
            let m: linarb_logic::Model =
                params.iter().copied().zip(s.iter().cloned()).collect();
            f.eval(&m)
        };
        let mut remaining: Vec<&Sample> = data.negatives().iter().collect();
        let mut chosen: Vec<Formula> = Vec::new();
        // Equations are always kept: they are DIG's primary output.
        let num_eqs = self.equations(data.positives(), params).len();
        for f in pool.drain(..num_eqs) {
            remaining.retain(|n| holds_at(&f, n));
            chosen.push(f);
        }
        // Bounds only as needed, most-excluding first.
        while !remaining.is_empty() {
            if self.stopped() {
                return Err(LearnError::HypothesisExhausted);
            }
            let best = pool
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    (remaining.iter().filter(|n| !holds_at(f, n)).count(), i)
                })
                .max();
            match best {
                Some((excluded, i)) if excluded > 0 => {
                    let f = pool.swap_remove(i);
                    remaining.retain(|n| holds_at(&f, n));
                    chosen.push(f);
                }
                // DIG is conjunctive-only: a negative inside the hull
                // of the positives cannot be carved out.
                _ => return Err(LearnError::HypothesisExhausted),
            }
        }
        Ok(Formula::and(chosen))
    }

    fn name(&self) -> &str {
        "DIG-template"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::Model;

    fn params(n: u32) -> Vec<Var> {
        (0..n).map(Var::from_index).collect()
    }

    fn dataset(pos: &[&[i64]], neg: &[&[i64]]) -> Dataset {
        let dim = pos.first().or_else(|| neg.first()).map_or(0, |x| x.len());
        let mut d = Dataset::new(dim);
        for p in pos {
            d.add_positive(p.iter().map(|&c| int(c)).collect());
        }
        for n in neg {
            d.add_negative(n.iter().map(|&c| int(c)).collect());
        }
        d
    }

    #[test]
    fn finds_exact_equation() {
        // samples on the line y = 2x + 1
        let d = dataset(&[&[0, 1], &[1, 3], &[2, 5], &[5, 11]], &[&[1, 1]]);
        let ps = params(2);
        let f = DigLearner::default().learn(&d, &ps).unwrap();
        // the equation must hold on a fresh in-box point of the line …
        let mut m = Model::new();
        m.assign(ps[0], int(3));
        m.assign(ps[1], int(7));
        assert!(f.eval(&m), "{f}");
        // … and fail off the line
        m.assign(ps[1], int(6));
        assert!(!f.eval(&m), "{f}");
        // the off-line negative is excluded by the equation alone, so
        // greedy selection adds no bounds: a far point ON the line
        // still satisfies the invariant (the generalization DIG wants)
        m.assign(ps[0], int(10));
        m.assign(ps[1], int(21));
        assert!(f.eval(&m), "pure-equation invariants must generalize: {f}");
    }

    #[test]
    fn octagonal_bounds_close_the_box() {
        let d = dataset(&[&[0, 0], &[1, 2], &[3, 1]], &[&[10, 10]]);
        let ps = params(2);
        let f = DigLearner::default().learn(&d, &ps).unwrap();
        let mut m = Model::new();
        m.assign(ps[0], int(2));
        m.assign(ps[1], int(1));
        assert!(f.eval(&m), "interior point must satisfy: {f}");
        m.assign(ps[0], int(50));
        assert!(!f.eval(&m), "far point must violate: {f}");
    }

    #[test]
    fn disjunctive_data_exhausts_space() {
        // XOR pattern: the negative sits in the octagonal hull of the
        // positives; no conjunction of equations/bounds excludes it.
        let d = dataset(&[&[0, 0], &[4, 4]], &[&[2, 2]]);
        assert!(matches!(
            DigLearner::default().learn(&d, &params(2)),
            Err(LearnError::HypothesisExhausted)
        ));
    }

    #[test]
    fn nullspace_small_cases() {
        // single row (1, 2): nullspace of dimension 1 in width 2
        let rows = vec![vec![BigRational::from(1i64), BigRational::from(2i64)]];
        let ns = nullspace(&rows, 2);
        assert_eq!(ns.len(), 1);
        let v = &ns[0];
        let dot = &(&rows[0][0] * &v[0]) + &(&rows[0][1] * &v[1]);
        assert!(dot.is_zero());
        // full-rank rows: empty nullspace
        let rows = vec![
            vec![BigRational::from(1i64), BigRational::from(0i64)],
            vec![BigRational::from(0i64), BigRational::from(1i64)],
        ];
        assert!(nullspace(&rows, 2).is_empty());
    }
}
