//! Baseline CHC solvers for the paper's evaluation (§6).
//!
//! The paper compares `LinearArbitrary` against four families of
//! tools; this crate implements a faithful scale model of each, all
//! speaking the same [`ChcSystem`](linarb_logic::ChcSystem) language:
//!
//! | Paper tool | Here | Mechanism |
//! |------------|------|-----------|
//! | Spacer \[19\] | [`PdrSolver`] (`spacer_mode: true`) | PDR + must summaries |
//! | GPDR \[17\] | [`PdrSolver`] (`spacer_mode: false`) | PDR, re-derives |
//! | Duality \[24, 25\] | [`UnwindInterp`] ([`InterpMode::Duality`]) | unwinding + Farkas interpolation, batch |
//! | UAutomizer \[16\] | [`UnwindInterp`] ([`InterpMode::TraceRefinement`]) | trace-by-trace interpolation |
//! | PIE \[29\] | [`PieLearner`] | feature enumeration inside the CEGAR loop |
//! | DIG \[27\] | [`DigLearner`] | template equations inside the CEGAR loop |
//!
//! [`bmc`] (bounded model checking) underpins the tests and provides
//! refutation cross-checks.

mod bmc;
mod dig;
mod interp;
mod pdr;
mod pie;
mod util;

pub use bmc::{bmc, bmc_with_sink, BmcResult};
pub use dig::DigLearner;
pub use interp::{InterpConfig, InterpMode, InterpResult, UnwindInterp};
pub use pdr::{Cube, PdrConfig, PdrResult, PdrSolver};
pub use pie::{PieConfig, PieLearner};
pub use util::{instantiate_clause, ClauseInstance, FreshVars};
