//! PIE-style learner: syntax-guided feature enumeration + greedy
//! boolean learning [29].
//!
//! Where `LinearArbitrary` *learns* hyperplanes from the data, PIE
//! *enumerates* a hypothesis space of candidate features (here:
//! interval and octagonal atoms with enumerated constants, the space
//! PIE's default grammar effectively reaches for integer programs) and
//! then searches for a small DNF over those features consistent with
//! the samples. The enumeration cost per call — and the failure when
//! the required invariant lies outside the octagonal space — is
//! exactly the behaviour Fig. 8(a) compares against.

use linarb_arith::BigInt;
use linarb_logic::{Atom, Formula, LinExpr, Var};
use linarb_ml::{Dataset, LearnError, Sample};
use linarb_smt::Budget;
use linarb_solver::Learner;

/// Configuration of the enumeration space.
#[derive(Clone, Debug)]
pub struct PieConfig {
    /// Enumerate constants in `[-range, range]` around observed
    /// values.
    pub constant_slack: i64,
    /// Include two-variable (octagonal) features.
    pub octagonal: bool,
}

impl Default for PieConfig {
    fn default() -> Self {
        PieConfig { constant_slack: 2, octagonal: true }
    }
}

/// The PIE-style enumerating learner. Implements
/// [`Learner`](linarb_solver::Learner) so it runs inside the same
/// CEGAR sampling loop as the paper's toolchain.
#[derive(Clone, Debug, Default)]
pub struct PieLearner {
    /// Enumeration space configuration.
    pub config: PieConfig,
    /// Optional shared budget polled inside the enumeration loops so
    /// portfolio cancellation is prompt even mid-learn.
    pub budget: Option<Budget>,
}

impl PieLearner {
    /// Attaches a budget polled by the feature-enumeration and greedy
    /// cover loops.
    pub fn with_budget(mut self, budget: Budget) -> PieLearner {
        self.budget = Some(budget);
        self
    }

    fn stopped(&self) -> bool {
        self.budget.as_ref().is_some_and(Budget::should_stop)
    }
    /// Enumerates the feature atoms for a dataset: `±xᵢ ≤ c` and
    /// (optionally) `±xᵢ ± xⱼ ≤ c`, with `c` drawn from the projected
    /// sample values plus slack.
    fn features(&self, data: &Dataset, params: &[Var]) -> Vec<Atom> {
        let dim = params.len();
        let mut dirs: Vec<Vec<BigInt>> = Vec::new();
        for i in 0..dim {
            let mut w = vec![BigInt::zero(); dim];
            w[i] = BigInt::one();
            dirs.push(w.clone());
            w[i] = BigInt::minus_one();
            dirs.push(w);
        }
        if self.config.octagonal {
            for i in 0..dim {
                for j in (i + 1)..dim {
                    for (si, sj) in [(1, 1), (1, -1), (-1, 1), (-1, -1)] {
                        let mut w = vec![BigInt::zero(); dim];
                        w[i] = BigInt::from(si);
                        w[j] = BigInt::from(sj);
                        dirs.push(w);
                    }
                }
            }
        }
        let samples: Vec<&Sample> = data
            .positives()
            .iter()
            .chain(data.negatives().iter())
            .collect();
        let mut atoms = Vec::new();
        for w in dirs {
            if self.stopped() {
                break; // partial feature set; learn will bail shortly
            }
            let mut values: Vec<BigInt> = samples
                .iter()
                .map(|s| {
                    w.iter()
                        .zip(s.iter())
                        .map(|(a, b)| a * b)
                        .sum::<BigInt>()
                })
                .collect();
            values.sort();
            values.dedup();
            let lhs = LinExpr::from_terms(
                params.iter().zip(w.iter()).map(|(v, c)| (*v, c.clone())),
                BigInt::zero(),
            );
            for v in &values {
                for slack in -self.config.constant_slack..=self.config.constant_slack {
                    let c = v + &BigInt::from(slack);
                    atoms.push(Atom::le(lhs.clone(), LinExpr::constant(c)));
                }
            }
        }
        atoms.sort_by_key(|a| format!("{a}"));
        atoms.dedup();
        atoms
    }
}

fn holds(atom: &Atom, params: &[Var], s: &Sample) -> bool {
    let m: linarb_logic::Model = params
        .iter()
        .copied()
        .zip(s.iter().cloned())
        .collect();
    atom.holds(&m)
}

impl Learner for PieLearner {
    fn learn(&self, data: &Dataset, params: &[Var]) -> Result<Formula, LearnError> {
        if let Some(s) = data.first_contradiction() {
            return Err(LearnError::ContradictorySamples(s.clone()));
        }
        if data.num_positive() == 0 {
            return Ok(Formula::False);
        }
        if data.num_negative() == 0 {
            return Ok(Formula::True);
        }
        let features = self.features(data, params);
        // Greedy DNF cover: repeatedly build a cube anchored at an
        // uncovered positive that excludes every negative.
        let mut uncovered: Vec<&Sample> = data.positives().iter().collect();
        let mut cubes: Vec<Vec<Atom>> = Vec::new();
        while let Some(anchor) = uncovered.first().copied() {
            if self.stopped() {
                return Err(LearnError::HypothesisExhausted);
            }
            // Features true at the anchor are cube candidates.
            let candidates: Vec<&Atom> = features
                .iter()
                .filter(|a| holds(a, params, anchor))
                .collect();
            let mut alive: Vec<&Sample> = data.negatives().iter().collect();
            let mut cube: Vec<Atom> = Vec::new();
            while !alive.is_empty() {
                // Pick the candidate excluding the most live negatives
                // (ties: covering the most uncovered positives).
                let mut best: Option<(usize, usize, &Atom)> = None;
                for a in &candidates {
                    let excluded =
                        alive.iter().filter(|n| !holds(a, params, n)).count();
                    if excluded == 0 {
                        continue;
                    }
                    let covered = uncovered
                        .iter()
                        .filter(|p| holds(a, params, p))
                        .count();
                    if best
                        .as_ref()
                        .map_or(true, |(e, c, _)| excluded > *e || (excluded == *e && covered > *c))
                    {
                        best = Some((excluded, covered, a));
                    }
                }
                let Some((_, _, chosen)) = best else {
                    return Err(LearnError::HypothesisExhausted);
                };
                alive.retain(|n| holds(chosen, params, n));
                cube.push(chosen.clone());
            }
            uncovered.retain(|p| !cube.iter().all(|a| holds(a, params, p)));
            cubes.push(cube);
            if cubes.len() > data.num_positive() {
                return Err(LearnError::HypothesisExhausted);
            }
        }
        Ok(Formula::or(
            cubes
                .into_iter()
                .map(|cube| {
                    Formula::and(cube.into_iter().map(Formula::from).collect())
                })
                .collect(),
        ))
    }

    fn name(&self) -> &str {
        "PIE-enum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::Model;

    fn params(n: u32) -> Vec<Var> {
        (0..n).map(Var::from_index).collect()
    }

    fn dataset(pos: &[&[i64]], neg: &[&[i64]]) -> Dataset {
        let dim = pos.first().or_else(|| neg.first()).map_or(0, |x| x.len());
        let mut d = Dataset::new(dim);
        for p in pos {
            d.add_positive(p.iter().map(|&c| int(c)).collect());
        }
        for n in neg {
            d.add_negative(n.iter().map(|&c| int(c)).collect());
        }
        d
    }

    fn perfect(f: &Formula, ps: &[Var], d: &Dataset) -> bool {
        let at = |s: &Sample| {
            let m: Model = ps.iter().copied().zip(s.iter().cloned()).collect();
            f.eval(&m)
        };
        d.positives().iter().all(at) && d.negatives().iter().all(|s| !at(s))
    }

    #[test]
    fn box_separable() {
        let d = dataset(&[&[1, 0], &[2, 3]], &[&[-1, 0], &[5, 5]]);
        let ps = params(2);
        let f = PieLearner::default().learn(&d, &ps).unwrap();
        assert!(perfect(&f, &ps, &d), "{f}");
    }

    #[test]
    fn octagonal_diamond() {
        // the paper's program (a) samples: separable octagonally
        let d = dataset(
            &[&[0, -2], &[0, -1], &[0, 0], &[0, 1]],
            &[&[3, -3], &[-3, 3]],
        );
        let ps = params(2);
        let f = PieLearner::default().learn(&d, &ps).unwrap();
        assert!(perfect(&f, &ps, &d), "{f}");
    }

    #[test]
    fn disjunction_needed() {
        let d = dataset(&[&[0, 0], &[5, 5]], &[&[0, 5], &[5, 0]]);
        let ps = params(2);
        let f = PieLearner::default().learn(&d, &ps).unwrap();
        assert!(perfect(&f, &ps, &d), "{f}");
        assert!(matches!(f, Formula::Or(_)), "XOR needs a disjunction: {f}");
    }

    #[test]
    fn outside_hypothesis_space_fails() {
        // Separable only by x + 2y >= 0 style slopes; octagon cannot:
        // p=(1,-1) vs n=(2,-1): octagon distinguishes via x<=1... pick
        // points where every octagonal projection collides:
        // pos (0,0),(1,1),(-1,-1) ; neg (2,2),(-2,-2) are separable by
        // |x|<=1 octagonally. A genuinely hard case: same octagonal
        // projections: pos (1,2) neg (2,1) differ on x-y. Octagon CAN
        // separate those. True inseparability needs slope 2: pos
        // (0,0),(2,1); neg (1,1),(-1,0): x-2y separates; octagon
        // projections: x: 0,2 vs 1,-1 (interleaved); y: 0,1 vs 1,0;
        // x+y: 0,3 vs 2,-1; x-y: 0,1 vs 0,-1 — x-y<=? pos{0,1}
        // neg{0,-1} overlap at 0. All overlap -> single cube fails,
        // but DNF of boxes can still carve finite points. PIE's greedy
        // will find something; the real gap shows on *generalization*,
        // exercised by the CEGAR loop benches. Here we only check it
        // never misclassifies.
        let d = dataset(&[&[0, 0], &[2, 1]], &[&[1, 1], &[-1, 0]]);
        let ps = params(2);
        match PieLearner::default().learn(&d, &ps) {
            Ok(f) => assert!(perfect(&f, &ps, &d), "{f}"),
            Err(LearnError::HypothesisExhausted) => {}
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn contradiction_detected() {
        let mut d = dataset(&[&[1]], &[&[2]]);
        d.add_negative(vec![int(1)]);
        assert!(matches!(
            PieLearner::default().learn(&d, &params(1)),
            Err(LearnError::ContradictorySamples(_))
        ));
    }

    #[test]
    fn degenerate_classes() {
        let ps = params(1);
        assert_eq!(
            PieLearner::default().learn(&dataset(&[&[1]], &[]), &ps).unwrap(),
            Formula::True
        );
        assert_eq!(
            PieLearner::default().learn(&dataset(&[], &[&[1]]), &ps).unwrap(),
            Formula::False
        );
    }
}
