//! Bounded model checking over CHC systems.
//!
//! Unrolls derivations up to a bounded height and checks whether any
//! query clause can be violated by a bounded derivation. Sound for
//! refutation (every violation found is real); inconclusive for
//! safety.
//!
//! While unrolling, a *shadow tree* records which clause instance
//! produced each disjunct; a satisfying model is then walked down the
//! tree to extract a concrete [`DerivationNode`] certificate that
//! replays against the original system.

use crate::util::{instantiate_clause, ClauseInstance, FreshVars};
use linarb_logic::{Atom, ChcSystem, ClauseId, Formula, LinExpr, Model, PredId};
use linarb_smt::{check_sat, Budget, SmtResult};
use linarb_solver::{CrossSeed, DerivationNode};

/// Result of a bounded check.
#[derive(Debug)]
pub enum BmcResult {
    /// A goal clause is violated by a derivation of height ≤ `depth`.
    Violation {
        /// The unrolling depth at which the violation appeared.
        depth: usize,
        /// The satisfying assignment of the unrolled formula.
        model: Model,
        /// The concrete counterexample derivation extracted from the
        /// model; replays against the original system.
        derivation: DerivationNode,
    },
    /// No violation exists within the bound.
    SafeUpTo(usize),
    /// Budget exhausted or a check came back unknown.
    Unknown,
}

impl BmcResult {
    /// `true` for [`BmcResult::Violation`].
    pub fn is_violation(&self) -> bool {
        matches!(self, BmcResult::Violation { .. })
    }
}

/// Shadow of one `unroll` call: the predicate occurrence and, per
/// candidate clause, the instance that was encoded for it.
struct ShadowNode {
    pred: PredId,
    /// The interface arguments this occurrence was requested with
    /// (expressions over the *parent's* fresh variables).
    args: Vec<LinExpr>,
    candidates: Vec<Candidate>,
}

struct Candidate {
    clause: ClauseId,
    inst: ClauseInstance,
    /// Constraint ∧ interface equalities of this disjunct (children's
    /// subformulas excluded — they are tested via `children`).
    local: Formula,
    children: Vec<ShadowNode>,
}

/// Builds the under-approximation of `pred` for derivations of height
/// ≤ `depth`, instantiated so that its free interface is `args`.
/// Returns the formula and the shadow node mirroring its disjuncts.
fn unroll(
    sys: &ChcSystem,
    pred: PredId,
    args: &[LinExpr],
    depth: usize,
    fresh: &mut FreshVars,
    nodes: &mut usize,
    budget: &Budget,
) -> (Formula, ShadowNode) {
    let shadow = ShadowNode { pred, args: args.to_vec(), candidates: Vec::new() };
    if depth == 0 || *nodes > 200_000 || budget.should_stop() {
        return (Formula::False, shadow);
    }
    *nodes += 1;
    let mut shadow = shadow;
    let mut disjuncts = Vec::new();
    for clause in sys.clauses() {
        let happ = match &clause.head {
            linarb_logic::ClauseHead::Pred(a) if a.pred == pred => a,
            _ => continue,
        };
        let _ = happ;
        let inst = instantiate_clause(clause, fresh);
        let mut local = vec![inst.constraint.clone()];
        // interface: head args equal the requested args
        for (ha, a) in inst.head_args.iter().zip(args.iter()) {
            local.push(Atom::eq_expr(ha.clone(), a.clone()));
        }
        let local = Formula::and(local);
        let mut conj = vec![local.clone()];
        let mut children = Vec::new();
        for app in &inst.body {
            let (sub, child) =
                unroll(sys, app.pred, &app.args, depth - 1, fresh, nodes, budget);
            conj.push(sub);
            children.push(child);
        }
        shadow.candidates.push(Candidate { clause: clause.id, inst, local, children });
        disjuncts.push(Formula::and(conj));
    }
    (Formula::or(disjuncts), shadow)
}

/// Walks the satisfying model down the shadow tree, picking the first
/// candidate whose local constraints hold and whose children all
/// extract. Sound because `Formula::eval` is total (unassigned
/// variables read as 0, matching `ClauseInstance::pull_back`).
fn extract(node: &ShadowNode, model: &Model) -> Option<DerivationNode> {
    'cand: for cand in &node.candidates {
        if !cand.local.eval(model) {
            continue;
        }
        let mut children = Vec::new();
        for child in &cand.children {
            match extract(child, model) {
                Some(d) => children.push(d),
                None => continue 'cand,
            }
        }
        return Some(DerivationNode {
            pred: Some(node.pred),
            sample: node.args.iter().map(|a| a.eval(model)).collect(),
            clause: cand.clause,
            model: cand.inst.pull_back(model),
            children,
        });
    }
    None
}

/// Publishes every state of the derivation as a negative sample: each
/// one reaches the goal violation, so no invariant may contain it.
fn publish_states(node: &DerivationNode, sink: &dyn CrossSeed) {
    if let Some(p) = node.pred {
        sink.publish_negative(p, &node.sample);
    }
    for child in &node.children {
        publish_states(child, sink);
    }
}

/// Checks all query clauses for violations by derivations of height ≤
/// `max_depth`, by iterative deepening.
pub fn bmc(sys: &ChcSystem, max_depth: usize, budget: &Budget) -> BmcResult {
    bmc_with_sink(sys, max_depth, budget, None)
}

/// [`bmc`] with an optional cross-seeding bus: on a violation, every
/// state of the counterexample derivation is published as a negative
/// sample for the portfolio's CEGAR engine.
pub fn bmc_with_sink(
    sys: &ChcSystem,
    max_depth: usize,
    budget: &Budget,
    sink: Option<&dyn CrossSeed>,
) -> BmcResult {
    for depth in 0..=max_depth {
        if budget.exhausted() {
            return BmcResult::Unknown;
        }
        for clause in sys.clauses() {
            if !clause.is_query() {
                continue;
            }
            let mut fresh = FreshVars::for_system(sys);
            let mut nodes = 0usize;
            let inst = instantiate_clause(clause, &mut fresh);
            let mut conj = vec![inst.constraint.clone()];
            let mut shadows = Vec::new();
            for app in &inst.body {
                let (sub, shadow) =
                    unroll(sys, app.pred, &app.args, depth, &mut fresh, &mut nodes, budget);
                conj.push(sub);
                shadows.push(shadow);
            }
            conj.push(Formula::not(inst.goal.clone().expect("query clause")));
            let f = Formula::and(conj);
            match check_sat(&f, budget) {
                SmtResult::Sat(model) => {
                    let mut children = Vec::new();
                    let mut complete = true;
                    for shadow in &shadows {
                        match extract(shadow, &model) {
                            Some(d) => children.push(d),
                            None => {
                                complete = false;
                                break;
                            }
                        }
                    }
                    if !complete {
                        // A model that satisfies the unrolling always
                        // selects a full disjunct per occurrence; only
                        // a truncated (node-capped / cancelled) unroll
                        // can fail here. Report inconclusive.
                        return BmcResult::Unknown;
                    }
                    let derivation = DerivationNode {
                        pred: None,
                        sample: Vec::new(),
                        clause: clause.id,
                        model: inst.pull_back(&model),
                        children,
                    };
                    if let Some(sink) = sink {
                        publish_states(&derivation, sink);
                    }
                    return BmcResult::Violation { depth, model, derivation };
                }
                SmtResult::Unsat => {}
                SmtResult::Unknown => return BmcResult::Unknown,
            }
        }
    }
    BmcResult::SafeUpTo(max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_logic::parse_chc;

    const SAFE: &str = r#"
        (declare-fun p (Int Int) Bool)
        (assert (forall ((x Int) (y Int))
            (=> (and (= x 1) (= y 0)) (p x y))))
        (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
            (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
        (assert (forall ((x Int) (y Int))
            (=> (p x y) (>= x 1))))
    "#;

    #[test]
    fn safe_within_bound() {
        let sys = parse_chc(SAFE).unwrap();
        match bmc(&sys, 4, &Budget::unlimited()) {
            BmcResult::SafeUpTo(4) => {}
            other => panic!("expected safe, got {other:?}"),
        }
    }

    #[test]
    fn violation_found_at_right_depth() {
        // property x >= 2 fails at the very first derivation (x = 1)
        let text = SAFE.replace("(>= x 1)", "(>= x 2)");
        let sys = parse_chc(&text).unwrap();
        match bmc(&sys, 4, &Budget::unlimited()) {
            BmcResult::Violation { depth, derivation, .. } => {
                assert_eq!(depth, 1);
                assert!(derivation.replay(&sys), "derivation must replay");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn deeper_violation_needs_deeper_bound() {
        // x grows by 1 from 0; x <= 2 fails after 3 steps
        let text = r#"
            (declare-fun p (Int) Bool)
            (assert (forall ((x Int)) (=> (= x 0) (p x))))
            (assert (forall ((x Int) (x1 Int))
                (=> (and (p x) (= x1 (+ x 1))) (p x1))))
            (assert (forall ((x Int)) (=> (p x) (<= x 2))))
        "#;
        let sys = parse_chc(text).unwrap();
        assert!(!bmc(&sys, 3, &Budget::unlimited()).is_violation());
        match bmc(&sys, 5, &Budget::unlimited()) {
            BmcResult::Violation { depth, derivation, .. } => {
                assert_eq!(depth, 4);
                assert!(derivation.replay(&sys), "derivation must replay");
                assert_eq!(derivation.size(), 5, "root + four derivation steps");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn nonlinear_unrolling_fibo() {
        // fibo with the FALSE claim y >= x for x > 1; fails at x=2
        // which needs a derivation of height 3.
        let text = r#"
            (declare-fun p (Int Int) Bool)
            (assert (forall ((x Int) (y Int))
                (=> (and (< x 1) (= y 0)) (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (= x 1) (= y 1)) (p x y))))
            (assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
                (=> (and (> x 1) (p (- x 1) y1) (p (- x 2) y2) (= y (+ y1 y2)))
                    (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (p x y) (> x 1)) (>= y x))))
        "#;
        let sys = parse_chc(text).unwrap();
        match bmc(&sys, 4, &Budget::unlimited()) {
            BmcResult::Violation { derivation, .. } => {
                assert!(derivation.replay(&sys), "nonlinear derivation must replay");
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
