//! Bounded model checking over CHC systems.
//!
//! Unrolls derivations up to a bounded height and checks whether any
//! query clause can be violated by a bounded derivation. Sound for
//! refutation (every violation found is real); inconclusive for
//! safety.

use crate::util::{instantiate_clause, FreshVars};
use linarb_logic::{ChcSystem, Formula, LinExpr, Model, PredId};
use linarb_smt::{check_sat, Budget, SmtResult};

/// Result of a bounded check.
#[derive(Debug)]
pub enum BmcResult {
    /// A goal clause is violated by a derivation of height ≤ `depth`.
    Violation {
        /// The unrolling depth at which the violation appeared.
        depth: usize,
        /// The satisfying assignment of the unrolled formula.
        model: Model,
    },
    /// No violation exists within the bound.
    SafeUpTo(usize),
    /// Budget exhausted or a check came back unknown.
    Unknown,
}

impl BmcResult {
    /// `true` for [`BmcResult::Violation`].
    pub fn is_violation(&self) -> bool {
        matches!(self, BmcResult::Violation { .. })
    }
}

/// Builds the under-approximation of `pred` for derivations of height
/// ≤ `depth`, instantiated so that its free interface is `args`.
fn unroll(
    sys: &ChcSystem,
    pred: PredId,
    args: &[LinExpr],
    depth: usize,
    fresh: &mut FreshVars,
    nodes: &mut usize,
) -> Formula {
    if depth == 0 || *nodes > 200_000 {
        return Formula::False;
    }
    *nodes += 1;
    let mut disjuncts = Vec::new();
    for clause in sys.clauses() {
        let happ = match &clause.head {
            linarb_logic::ClauseHead::Pred(a) if a.pred == pred => a,
            _ => continue,
        };
        let _ = happ;
        let inst = instantiate_clause(clause, fresh);
        let mut conj = vec![inst.constraint.clone()];
        // interface: head args equal the requested args
        for (ha, a) in inst.head_args.iter().zip(args.iter()) {
            conj.push(linarb_logic::Atom::eq_expr(ha.clone(), a.clone()));
        }
        for app in &inst.body {
            conj.push(unroll(sys, app.pred, &app.args, depth - 1, fresh, nodes));
        }
        disjuncts.push(Formula::and(conj));
    }
    Formula::or(disjuncts)
}

/// Checks all query clauses for violations by derivations of height ≤
/// `max_depth`, by iterative deepening.
pub fn bmc(sys: &ChcSystem, max_depth: usize, budget: &Budget) -> BmcResult {
    for depth in 0..=max_depth {
        if budget.exhausted() {
            return BmcResult::Unknown;
        }
        for clause in sys.clauses() {
            if !clause.is_query() {
                continue;
            }
            let mut fresh = FreshVars::for_system(sys);
            let mut nodes = 0usize;
            let inst = instantiate_clause(clause, &mut fresh);
            let mut conj = vec![inst.constraint.clone()];
            for app in &inst.body {
                conj.push(unroll(sys, app.pred, &app.args, depth, &mut fresh, &mut nodes));
            }
            conj.push(Formula::not(inst.goal.clone().expect("query clause")));
            let f = Formula::and(conj);
            match check_sat(&f, budget) {
                SmtResult::Sat(model) => return BmcResult::Violation { depth, model },
                SmtResult::Unsat => {}
                SmtResult::Unknown => return BmcResult::Unknown,
            }
        }
    }
    BmcResult::SafeUpTo(max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_logic::parse_chc;

    const SAFE: &str = r#"
        (declare-fun p (Int Int) Bool)
        (assert (forall ((x Int) (y Int))
            (=> (and (= x 1) (= y 0)) (p x y))))
        (assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
            (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
        (assert (forall ((x Int) (y Int))
            (=> (p x y) (>= x 1))))
    "#;

    #[test]
    fn safe_within_bound() {
        let sys = parse_chc(SAFE).unwrap();
        match bmc(&sys, 4, &Budget::unlimited()) {
            BmcResult::SafeUpTo(4) => {}
            other => panic!("expected safe, got {other:?}"),
        }
    }

    #[test]
    fn violation_found_at_right_depth() {
        // property x >= 2 fails at the very first derivation (x = 1)
        let text = SAFE.replace("(>= x 1)", "(>= x 2)");
        let sys = parse_chc(&text).unwrap();
        match bmc(&sys, 4, &Budget::unlimited()) {
            BmcResult::Violation { depth, .. } => assert_eq!(depth, 1),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn deeper_violation_needs_deeper_bound() {
        // x grows by 1 from 0; x <= 2 fails after 3 steps
        let text = r#"
            (declare-fun p (Int) Bool)
            (assert (forall ((x Int)) (=> (= x 0) (p x))))
            (assert (forall ((x Int) (x1 Int))
                (=> (and (p x) (= x1 (+ x 1))) (p x1))))
            (assert (forall ((x Int)) (=> (p x) (<= x 2))))
        "#;
        let sys = parse_chc(text).unwrap();
        assert!(!bmc(&sys, 3, &Budget::unlimited()).is_violation());
        match bmc(&sys, 5, &Budget::unlimited()) {
            BmcResult::Violation { depth, .. } => assert_eq!(depth, 4),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn nonlinear_unrolling_fibo() {
        // fibo with the FALSE claim y >= x for x > 1; fails at x=2
        // which needs a derivation of height 3.
        let text = r#"
            (declare-fun p (Int Int) Bool)
            (assert (forall ((x Int) (y Int))
                (=> (and (< x 1) (= y 0)) (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (= x 1) (= y 1)) (p x y))))
            (assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
                (=> (and (> x 1) (p (- x 1) y1) (p (- x 2) y2) (= y (+ y1 y2)))
                    (p x y))))
            (assert (forall ((x Int) (y Int))
                (=> (and (p x y) (> x 1)) (>= y x))))
        "#;
        let sys = parse_chc(text).unwrap();
        match bmc(&sys, 4, &Budget::unlimited()) {
            BmcResult::Violation { .. } => {}
            other => panic!("expected violation, got {other:?}"),
        }
    }
}
