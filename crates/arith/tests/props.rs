//! Property-based tests: BigInt/BigRational agree with i128 reference
//! semantics and satisfy ring/field/order laws.

use linarb_arith::{BigInt, BigRational};
use proptest::prelude::*;

fn big(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn add_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000_000_000i128..1_000_000_000_000) {
        prop_assert_eq!(&big(a) + &big(b), big(a + b));
    }

    #[test]
    fn mul_matches_i128(a in -1_000_000_000i128..1_000_000_000, b in -1_000_000_000i128..1_000_000_000) {
        prop_assert_eq!(&big(a) * &big(b), big(a * b));
    }

    #[test]
    fn div_rem_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (q, r) = big(a as i128).div_rem(&big(b as i128));
        prop_assert_eq!(q, big((a as i128) / (b as i128)));
        prop_assert_eq!(r, big((a as i128) % (b as i128)));
    }

    #[test]
    fn div_rem_reconstructs(a in any::<i128>(), b in any::<i128>()) {
        prop_assume!(b != 0);
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert_eq!(&(&q * &big(b)) + &r, big(a));
        prop_assert!(r.abs() < big(b).abs());
    }

    #[test]
    fn floor_mod_in_range(a in any::<i64>(), b in 1i64..1_000_000) {
        let m = big(a as i128).mod_floor(&big(b as i128));
        prop_assert!(!m.is_negative());
        prop_assert!(m < big(b as i128));
        let (q, r) = big(a as i128).div_mod_floor(&big(b as i128));
        prop_assert_eq!(&(&q * &big(b as i128)) + &r, big(a as i128));
    }

    #[test]
    fn ordering_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
    }

    #[test]
    fn parse_display_roundtrip(a in any::<i128>()) {
        let v = big(a);
        let back: BigInt = v.to_string().parse().unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn gcd_divides_both(a in any::<i64>(), b in any::<i64>()) {
        let g = BigInt::gcd(&big(a as i128), &big(b as i128));
        if a != 0 || b != 0 {
            prop_assert!(!g.is_zero());
            prop_assert!(big(a as i128).div_rem(&g).1.is_zero());
            prop_assert!(big(b as i128).div_rem(&g).1.is_zero());
        } else {
            prop_assert!(g.is_zero());
        }
    }

    #[test]
    fn large_mul_div_roundtrip(a in any::<i128>(), b in any::<i128>()) {
        prop_assume!(a != 0);
        let prod = &big(a) * &big(b);
        let (q, r) = prod.div_rem(&big(a));
        prop_assert_eq!(q, big(b));
        prop_assert!(r.is_zero());
    }

    #[test]
    fn rational_field_laws(an in -10_000i64..10_000, ad in 1i64..100,
                           bn in -10_000i64..10_000, bd in 1i64..100,
                           cn in -10_000i64..10_000, cd in 1i64..100) {
        let a = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let b = BigRational::new(BigInt::from(bn), BigInt::from(bd));
        let c = BigRational::new(BigInt::from(cn), BigInt::from(cd));
        // commutativity / associativity / distributivity
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // inverses
        prop_assert_eq!(&a - &a, BigRational::zero());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
    }

    #[test]
    fn rational_order_total(an in -1000i64..1000, ad in 1i64..50,
                            bn in -1000i64..1000, bd in 1i64..50) {
        let a = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let b = BigRational::new(BigInt::from(bn), BigInt::from(bd));
        let lhs = (an as i128) * (bd as i128);
        let rhs = (bn as i128) * (ad as i128);
        prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
    }

    #[test]
    fn rational_floor_ceil(an in -100_000i64..100_000, ad in 1i64..1000) {
        let a = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let fl = a.floor();
        let ce = a.ceil();
        prop_assert!(BigRational::from(fl.clone()) <= a);
        prop_assert!(a <= BigRational::from(ce.clone()));
        let diff = &ce - &fl;
        prop_assert!(diff == BigInt::zero() || diff == BigInt::one());
    }
}
