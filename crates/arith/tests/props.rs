//! Property-based tests: BigInt/BigRational agree with i128 reference
//! semantics and satisfy ring/field/order laws.
//!
//! Randomness comes from the in-tree deterministic PRNG; each case's
//! seed is `base_seed + case_index`, so failures reproduce exactly.

use linarb_arith::{BigInt, BigRational};
use linarb_testutil::{any_i128, any_i64, cases, XorShiftRng};

const CASES: u64 = 256;

fn big(v: i128) -> BigInt {
    BigInt::from(v)
}

#[test]
fn add_matches_i128() {
    cases(CASES, 0xA001, |rng| {
        let a = rng.gen_range(-1_000_000_000_000i128..1_000_000_000_000);
        let b = rng.gen_range(-1_000_000_000_000i128..1_000_000_000_000);
        assert_eq!(&big(a) + &big(b), big(a + b));
    });
}

#[test]
fn mul_matches_i128() {
    cases(CASES, 0xA002, |rng| {
        let a = rng.gen_range(-1_000_000_000i128..1_000_000_000);
        let b = rng.gen_range(-1_000_000_000i128..1_000_000_000);
        assert_eq!(&big(a) * &big(b), big(a * b));
    });
}

#[test]
fn div_rem_matches_i128() {
    cases(CASES, 0xA003, |rng| {
        let a = any_i64(rng);
        let b = any_i64(rng);
        if b == 0 {
            return;
        }
        let (q, r) = big(a as i128).div_rem(&big(b as i128));
        assert_eq!(q, big((a as i128) / (b as i128)));
        assert_eq!(r, big((a as i128) % (b as i128)));
    });
}

#[test]
fn div_rem_reconstructs() {
    cases(CASES, 0xA004, |rng| {
        let a = any_i128(rng);
        let b = any_i128(rng);
        if b == 0 {
            return;
        }
        let (q, r) = big(a).div_rem(&big(b));
        assert_eq!(&(&q * &big(b)) + &r, big(a));
        assert!(r.abs() < big(b).abs());
    });
}

#[test]
fn floor_mod_in_range() {
    cases(CASES, 0xA005, |rng| {
        let a = any_i64(rng);
        let b = rng.gen_range(1i64..1_000_000);
        let m = big(a as i128).mod_floor(&big(b as i128));
        assert!(!m.is_negative());
        assert!(m < big(b as i128));
        let (q, r) = big(a as i128).div_mod_floor(&big(b as i128));
        assert_eq!(&(&q * &big(b as i128)) + &r, big(a as i128));
    });
}

#[test]
fn ordering_matches_i128() {
    cases(CASES, 0xA006, |rng| {
        let a = any_i128(rng);
        let b = any_i128(rng);
        assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
    });
}

#[test]
fn parse_display_roundtrip() {
    cases(CASES, 0xA007, |rng| {
        let v = big(any_i128(rng));
        let back: BigInt = v.to_string().parse().unwrap();
        assert_eq!(back, v);
    });
}

#[test]
fn gcd_divides_both() {
    cases(CASES, 0xA008, |rng| {
        let a = any_i64(rng);
        let b = any_i64(rng);
        let g = BigInt::gcd(&big(a as i128), &big(b as i128));
        if a != 0 || b != 0 {
            assert!(!g.is_zero());
            assert!(big(a as i128).div_rem(&g).1.is_zero());
            assert!(big(b as i128).div_rem(&g).1.is_zero());
        } else {
            assert!(g.is_zero());
        }
    });
}

#[test]
fn large_mul_div_roundtrip() {
    cases(CASES, 0xA009, |rng| {
        let a = any_i128(rng);
        let b = any_i128(rng);
        if a == 0 {
            return;
        }
        let prod = &big(a) * &big(b);
        let (q, r) = prod.div_rem(&big(a));
        assert_eq!(q, big(b));
        assert!(r.is_zero());
    });
}

#[test]
fn rational_field_laws() {
    let rat = |rng: &mut XorShiftRng| {
        BigRational::new(
            BigInt::from(rng.gen_range(-10_000i64..10_000)),
            BigInt::from(rng.gen_range(1i64..100)),
        )
    };
    cases(CASES, 0xA00A, |rng| {
        let a = rat(rng);
        let b = rat(rng);
        let c = rat(rng);
        // commutativity / associativity / distributivity
        assert_eq!(&a + &b, &b + &a);
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        assert_eq!(&a * &b, &b * &a);
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // inverses
        assert_eq!(&a - &a, BigRational::zero());
        if !b.is_zero() {
            assert_eq!(&(&a / &b) * &b, a.clone());
        }
    });
}

#[test]
fn rational_order_total() {
    cases(CASES, 0xA00B, |rng| {
        let an = rng.gen_range(-1000i64..1000);
        let ad = rng.gen_range(1i64..50);
        let bn = rng.gen_range(-1000i64..1000);
        let bd = rng.gen_range(1i64..50);
        let a = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let b = BigRational::new(BigInt::from(bn), BigInt::from(bd));
        let lhs = (an as i128) * (bd as i128);
        let rhs = (bn as i128) * (ad as i128);
        assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
    });
}

#[test]
fn rational_floor_ceil() {
    cases(CASES, 0xA00C, |rng| {
        let an = rng.gen_range(-100_000i64..100_000);
        let ad = rng.gen_range(1i64..1000);
        let a = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let fl = a.floor();
        let ce = a.ceil();
        assert!(BigRational::from(fl.clone()) <= a);
        assert!(a <= BigRational::from(ce.clone()));
        let diff = &ce - &fl;
        assert!(diff == BigInt::zero() || diff == BigInt::one());
    });
}
