//! Normalized arbitrary-precision rationals.

use crate::bigint::{BigInt, ParseBigIntError};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den`.
///
/// Invariants: `den > 0` and `gcd(num, den) == 1` (with `0` represented
/// as `0/1`), so derived equality and hashing are value-based.
///
/// ```
/// use linarb_arith::{BigInt, BigRational};
/// let half = BigRational::new(BigInt::from(2), BigInt::from(4));
/// let third = BigRational::new(BigInt::from(1), BigInt::from(3));
/// assert_eq!((&half + &third).to_string(), "5/6");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRational {
    num: BigInt,
    den: BigInt,
}

/// Error returned when parsing a [`BigRational`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigRationalError;

impl fmt::Display for ParseBigRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal")
    }
}

impl std::error::Error for ParseBigRationalError {}

impl From<ParseBigIntError> for ParseBigRationalError {
    fn from(_: ParseBigIntError) -> Self {
        ParseBigRationalError
    }
}

impl BigRational {
    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigInt) -> BigRational {
        assert!(!den.is_zero(), "rational with zero denominator");
        let (num, den) = if den.is_negative() { (-num, -den) } else { (num, den) };
        if num.is_zero() {
            return BigRational { num, den: BigInt::one() };
        }
        let g = BigInt::gcd(&num, &den);
        BigRational { num: &num / &g, den: &den / &g }
    }

    /// The rational `0`.
    pub fn zero() -> BigRational {
        BigRational { num: BigInt::zero(), den: BigInt::one() }
    }

    /// The rational `1`.
    pub fn one() -> BigRational {
        BigRational { num: BigInt::one(), den: BigInt::one() }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` if the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is a whole number.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Returns `true` if the value is `> 0`.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if the value is `< 0`.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Sign of the value: `-1`, `0` or `1`.
    pub fn signum(&self) -> i8 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> BigRational {
        BigRational { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is `0`.
    pub fn recip(&self) -> BigRational {
        assert!(!self.is_zero(), "reciprocal of zero");
        BigRational::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        self.num.div_mod_floor(&self.den).0
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -(-self).floor()
    }

    /// Fractional part `self - floor(self)`, in `[0, 1)`.
    pub fn fract(&self) -> BigRational {
        self - &BigRational::from(self.floor())
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale into f64 range by truncating both sides equally if huge.
        let n = self.num.to_f64();
        let d = self.den.to_f64();
        n / d
    }
}

impl Default for BigRational {
    fn default() -> Self {
        BigRational::zero()
    }
}

impl From<BigInt> for BigRational {
    fn from(v: BigInt) -> BigRational {
        BigRational { num: v, den: BigInt::one() }
    }
}

impl From<&BigInt> for BigRational {
    fn from(v: &BigInt) -> BigRational {
        BigRational { num: v.clone(), den: BigInt::one() }
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> BigRational {
        BigRational::from(BigInt::from(v))
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for BigRational {
    type Err = ParseBigRationalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            Some((n, d)) => {
                let num: BigInt = n.trim().parse()?;
                let den: BigInt = d.trim().parse()?;
                if den.is_zero() {
                    return Err(ParseBigRationalError);
                }
                Ok(BigRational::new(num, den))
            }
            None => Ok(BigRational::from(s.trim().parse::<BigInt>()?)),
        }
    }
}

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational { num: -self.num, den: self.den }
    }
}

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational { num: -&self.num, den: self.den.clone() }
    }
}

impl Add for &BigRational {
    type Output = BigRational;
    fn add(self, rhs: &BigRational) -> BigRational {
        BigRational::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &BigRational {
    type Output = BigRational;
    fn sub(self, rhs: &BigRational) -> BigRational {
        self + &(-rhs)
    }
}

impl Mul for &BigRational {
    type Output = BigRational;
    fn mul(self, rhs: &BigRational) -> BigRational {
        BigRational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &BigRational {
    type Output = BigRational;
    fn div(self, rhs: &BigRational) -> BigRational {
        assert!(!rhs.is_zero(), "rational division by zero");
        BigRational::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_owned_binop_rat {
    ($trait:ident, $method:ident) => {
        impl $trait for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &BigRational) -> BigRational {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop_rat!(Add, add);
forward_owned_binop_rat!(Sub, sub);
forward_owned_binop_rat!(Mul, mul);
forward_owned_binop_rat!(Div, div);

impl AddAssign<&BigRational> for BigRational {
    fn add_assign(&mut self, rhs: &BigRational) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigRational> for BigRational {
    fn sub_assign(&mut self, rhs: &BigRational) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigRational> for BigRational {
    fn mul_assign(&mut self, rhs: &BigRational) {
        *self = &*self * rhs;
    }
}

impl Sum for BigRational {
    fn sum<I: Iterator<Item = BigRational>>(iter: I) -> BigRational {
        iter.fold(BigRational::zero(), |a, b| &a + &b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4).to_string(), "-1/2");
        assert_eq!(rat(0, -7), BigRational::zero());
        assert_eq!(rat(0, -7).denom(), &BigInt::one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn field_ops() {
        assert_eq!(&rat(1, 2) + &rat(1, 3), rat(5, 6));
        assert_eq!(&rat(1, 2) - &rat(1, 3), rat(1, 6));
        assert_eq!(&rat(2, 3) * &rat(3, 4), rat(1, 2));
        assert_eq!(&rat(2, 3) / &rat(4, 3), rat(1, 2));
        assert_eq!(rat(3, 7).recip(), rat(7, 3));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(-1, 2) < rat(1, 1000));
        assert_eq!(rat(4, 2).cmp(&rat(2, 1)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil_fract() {
        assert_eq!(rat(7, 2).floor(), BigInt::from(3));
        assert_eq!(rat(7, 2).ceil(), BigInt::from(4));
        assert_eq!(rat(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(rat(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(rat(6, 2).floor(), BigInt::from(3));
        assert_eq!(rat(6, 2).ceil(), BigInt::from(3));
        assert_eq!(rat(-7, 2).fract(), rat(1, 2));
        assert_eq!(rat(5, 1).fract(), BigRational::zero());
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0", "5", "-5", "1/2", "-22/7"] {
            let v: BigRational = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("4/8".parse::<BigRational>().unwrap().to_string(), "1/2");
        assert!("1/0".parse::<BigRational>().is_err());
        assert!("a/2".parse::<BigRational>().is_err());
    }

    #[test]
    fn to_f64_approx() {
        assert!((rat(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!((rat(-7, 2).to_f64() + 3.5).abs() < 1e-12);
    }
}
