//! Sign-magnitude arbitrary-precision integers.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision signed integer.
///
/// Representation: a sign in `{-1, 0, 1}` and a little-endian `u32`
/// limb magnitude with no trailing zero limbs. The canonical zero has
/// `sign == 0` and an empty magnitude, so derived equality is value
/// equality.
///
/// ```
/// use linarb_arith::BigInt;
/// let big: BigInt = "123456789012345678901234567890".parse()?;
/// assert_eq!((&big - &big), BigInt::zero());
/// # Ok::<(), linarb_arith::ParseBigIntError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BigInt {
    sign: i8,
    mag: Vec<u32>,
}

/// Error returned when parsing a [`BigInt`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal")
    }
}

impl std::error::Error for ParseBigIntError {}

// ---------------------------------------------------------------- magnitudes

fn mag_trim(mag: &mut Vec<u32>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn mag_cmp(a: &[u32], b: &[u32]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x.cmp(y);
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let s = long[i] as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
        out.push(s as u32);
        carry = s >> 32;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

/// Requires `a >= b`.
fn mag_sub(a: &[u32], b: &[u32]) -> Vec<u32> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i64;
    for i in 0..a.len() {
        let d = a[i] as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
        if d < 0 {
            out.push((d + (1i64 << 32)) as u32);
            borrow = 1;
        } else {
            out.push(d as u32);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0);
    mag_trim(&mut out);
    out
}

fn mag_mul(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &y) in b.iter().enumerate() {
            let cur = out[i + j] as u64 + x as u64 * y as u64 + carry;
            out[i + j] = cur as u32;
            carry = cur >> 32;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u64 + carry;
            out[k] = cur as u32;
            carry = cur >> 32;
            k += 1;
        }
    }
    mag_trim(&mut out);
    out
}

fn mag_bits(a: &[u32]) -> usize {
    match a.last() {
        None => 0,
        Some(&hi) => (a.len() - 1) * 32 + (32 - hi.leading_zeros() as usize),
    }
}

fn mag_bit(a: &[u32], i: usize) -> bool {
    let limb = i / 32;
    limb < a.len() && (a[limb] >> (i % 32)) & 1 == 1
}

fn mag_shl1(a: &mut Vec<u32>) {
    let mut carry = 0u32;
    for limb in a.iter_mut() {
        let next = *limb >> 31;
        *limb = (*limb << 1) | carry;
        carry = next;
    }
    if carry != 0 {
        a.push(carry);
    }
}

/// Divide by a single limb; returns (quotient, remainder).
fn mag_divrem_limb(a: &[u32], d: u32) -> (Vec<u32>, u32) {
    debug_assert!(d != 0);
    let mut q = vec![0u32; a.len()];
    let mut rem = 0u64;
    for i in (0..a.len()).rev() {
        let cur = (rem << 32) | a[i] as u64;
        q[i] = (cur / d as u64) as u32;
        rem = cur % d as u64;
    }
    mag_trim(&mut q);
    (q, rem as u32)
}

/// General magnitude division: binary long division. Returns (q, r).
fn mag_divrem(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
    debug_assert!(!b.is_empty(), "division by zero magnitude");
    if mag_cmp(a, b) == Ordering::Less {
        return (Vec::new(), a.to_vec());
    }
    if b.len() == 1 {
        let (q, r) = mag_divrem_limb(a, b[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }
    let bits = mag_bits(a);
    let mut q = vec![0u32; a.len()];
    let mut rem: Vec<u32> = Vec::new();
    for i in (0..bits).rev() {
        mag_shl1(&mut rem);
        if mag_bit(a, i) {
            if rem.is_empty() {
                rem.push(1);
            } else {
                rem[0] |= 1;
            }
        }
        if mag_cmp(&rem, b) != Ordering::Less {
            rem = mag_sub(&rem, b);
            q[i / 32] |= 1 << (i % 32);
        }
    }
    mag_trim(&mut q);
    (q, rem)
}

// ------------------------------------------------------------------- BigInt

impl BigInt {
    /// The integer `0`.
    pub fn zero() -> BigInt {
        BigInt { sign: 0, mag: Vec::new() }
    }

    /// The integer `1`.
    pub fn one() -> BigInt {
        BigInt::from(1)
    }

    /// The integer `-1`.
    pub fn minus_one() -> BigInt {
        BigInt::from(-1)
    }

    /// Returns `true` if `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// Returns `true` if `self == 1`.
    pub fn is_one(&self) -> bool {
        self.sign == 1 && self.mag == [1]
    }

    /// Returns `true` if `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// Returns `true` if `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// Sign of the value: `-1`, `0` or `1`.
    pub fn signum(&self) -> i8 {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt { sign: self.sign.abs(), mag: self.mag.clone() }
    }

    /// `true` if the low bit is clear.
    pub fn is_even(&self) -> bool {
        self.mag.first().map_or(true, |l| l & 1 == 0)
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> usize {
        mag_bits(&self.mag)
    }

    fn from_mag(sign: i8, mut mag: Vec<u32>) -> BigInt {
        mag_trim(&mut mag);
        if mag.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// Truncated division with remainder: `self = q * d + r`, `|r| < |d|`,
    /// and `r` has the sign of `self` (like Rust's `/` and `%` on
    /// primitives).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem(&self, d: &BigInt) -> (BigInt, BigInt) {
        assert!(!d.is_zero(), "BigInt division by zero");
        let (qm, rm) = mag_divrem(&self.mag, &d.mag);
        let q = BigInt::from_mag(self.sign * d.sign, qm);
        let r = BigInt::from_mag(self.sign, rm);
        (q, r)
    }

    /// Euclidean/floor division: rounds the quotient toward negative
    /// infinity, so the remainder is always in `[0, |d|)` for `d > 0`.
    ///
    /// This is the semantics the frontend uses to lower `%` by a
    /// positive constant into linear arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_mod_floor(&self, d: &BigInt) -> (BigInt, BigInt) {
        let (q, r) = self.div_rem(d);
        if r.is_zero() || r.sign == d.sign {
            (q, r)
        } else {
            (&q - &BigInt::one(), &r + d)
        }
    }

    /// Floor modulus; see [`BigInt::div_mod_floor`].
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn mod_floor(&self, d: &BigInt) -> BigInt {
        self.div_mod_floor(d).1
    }

    /// Greatest common divisor (always non-negative; `gcd(0,0) = 0`).
    pub fn gcd(a: &BigInt, b: &BigInt) -> BigInt {
        let mut x = a.abs();
        let mut y = b.abs();
        while !y.is_zero() {
            let r = x.div_rem(&y).1.abs();
            x = y;
            y = r;
        }
        x
    }

    /// Least common multiple (non-negative; `lcm(x,0) = 0`).
    pub fn lcm(a: &BigInt, b: &BigInt) -> BigInt {
        if a.is_zero() || b.is_zero() {
            return BigInt::zero();
        }
        let g = BigInt::gcd(a, b);
        (&(a / &g) * b).abs()
    }

    /// Raise to a small power.
    pub fn pow(&self, mut e: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            e >>= 1;
            if e > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Convert to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.mag.len() > 2 {
            return None;
        }
        let mut v: u64 = 0;
        for (i, &l) in self.mag.iter().enumerate() {
            v |= (l as u64) << (32 * i);
        }
        match self.sign {
            0 => Some(0),
            1 if v <= i64::MAX as u64 => Some(v as i64),
            -1 if v <= i64::MAX as u64 + 1 => Some((v as i128).wrapping_neg() as i64),
            _ => None,
        }
    }

    /// Convert to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        if self.mag.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &l) in self.mag.iter().enumerate() {
            v |= (l as u128) << (32 * i);
        }
        match self.sign {
            0 => Some(0),
            1 if v <= i128::MAX as u128 => Some(v as i128),
            -1 if v <= i128::MAX as u128 + 1 => Some(v.wrapping_neg() as i128),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (used only for ML scoring, never for
    /// logical decisions).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &l in self.mag.iter().rev() {
            v = v * 4294967296.0 + l as f64;
        }
        if self.sign < 0 {
            -v
        } else {
            v
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl Hash for BigInt {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.sign.hash(state);
        self.mag.hash(state);
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> BigInt {
        BigInt::from(v as i128)
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> BigInt {
        BigInt::from(v as i128)
    }
}

impl From<u32> for BigInt {
    fn from(v: u32) -> BigInt {
        BigInt::from(v as i128)
    }
}

impl From<usize> for BigInt {
    fn from(v: usize) -> BigInt {
        BigInt::from(v as i128)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        let sign = match v.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        };
        let mut u = v.unsigned_abs();
        let mut mag = Vec::new();
        while u != 0 {
            mag.push(u as u32);
            u >>= 32;
        }
        BigInt { sign, mag }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            ord => return ord,
        }
        let m = mag_cmp(&self.mag, &other.mag);
        if self.sign < 0 {
            m.reverse()
        } else {
            m
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut mag = self.mag.clone();
        while !mag.is_empty() {
            let (q, r) = mag_divrem_limb(&mag, 1_000_000_000);
            digits.push(r);
            mag = q;
        }
        let mut s = String::new();
        if self.sign < 0 {
            s.push('-');
        }
        s.push_str(&digits.last().unwrap().to_string());
        for d in digits.iter().rev().skip(1) {
            s.push_str(&format!("{d:09}"));
        }
        write!(f, "{s}")
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError);
        }
        let mut acc = BigInt::zero();
        let ten9 = BigInt::from(1_000_000_000i64);
        let bytes = body.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(9);
            let chunk: u32 = body[i..i + take].parse().map_err(|_| ParseBigIntError)?;
            let scale = BigInt::from(10i64.pow(take as u32));
            acc = &(&acc * if take == 9 { &ten9 } else { &scale }) + &BigInt::from(chunk);
            i += take;
        }
        if neg {
            acc = -acc;
        }
        Ok(acc)
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt { sign: -self.sign, mag: self.mag }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt { sign: -self.sign, mag: self.mag.clone() }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        if self.sign == rhs.sign {
            BigInt { sign: self.sign, mag: mag_add(&self.mag, &rhs.mag) }
        } else {
            match mag_cmp(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_mag(self.sign, mag_sub(&self.mag, &rhs.mag))
                }
                Ordering::Less => BigInt::from_mag(rhs.sign, mag_sub(&rhs.mag, &self.mag)),
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_mag(self.sign * rhs.sign, mag_mul(&self.mag, &rhs.mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);
forward_owned_binop!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl Sum for BigInt {
    fn sum<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |a, b| &a + &b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn roundtrip_i128() {
        for v in [0i128, 1, -1, 42, -9_000_000_000, i64::MAX as i128, i64::MIN as i128] {
            assert_eq!(b(v).to_i128(), Some(v));
        }
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(&b(3) + &b(4), b(7));
        assert_eq!(&b(3) - &b(4), b(-1));
        assert_eq!(&b(-3) + &b(-4), b(-7));
        assert_eq!(&b(-3) - &b(-4), b(1));
        assert_eq!(&b(0) + &b(0), b(0));
    }

    #[test]
    fn mul_carry_chains() {
        let x = b(u32::MAX as i128);
        assert_eq!(&x * &x, b((u32::MAX as i128) * (u32::MAX as i128)));
        assert_eq!(&b(0) * &x, b(0));
        assert_eq!(&b(-5) * &b(7), b(-35));
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        assert_eq!(b(7).div_rem(&b(2)), (b(3), b(1)));
        assert_eq!(b(-7).div_rem(&b(2)), (b(-3), b(-1)));
        assert_eq!(b(7).div_rem(&b(-2)), (b(-3), b(1)));
        assert_eq!(b(-7).div_rem(&b(-2)), (b(3), b(-1)));
    }

    #[test]
    fn floor_division() {
        assert_eq!(b(-7).div_mod_floor(&b(2)), (b(-4), b(1)));
        assert_eq!(b(7).div_mod_floor(&b(2)), (b(3), b(1)));
        assert_eq!(b(-6).mod_floor(&b(3)), b(0));
        assert_eq!(b(-5).mod_floor(&b(3)), b(1));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = b(1).div_rem(&b(0));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(BigInt::gcd(&b(12), &b(18)), b(6));
        assert_eq!(BigInt::gcd(&b(-12), &b(18)), b(6));
        assert_eq!(BigInt::gcd(&b(0), &b(0)), b(0));
        assert_eq!(BigInt::gcd(&b(0), &b(-5)), b(5));
        assert_eq!(BigInt::lcm(&b(4), &b(6)), b(12));
        assert_eq!(BigInt::lcm(&b(4), &b(0)), b(0));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(b(-10) < b(-2));
        assert!(b(-2) < b(0));
        assert!(b(0) < b(3));
        assert!(b(3) < b(10));
        let huge: BigInt = "9999999999999999999999999999999999999999".parse().unwrap();
        assert!(b(i128::MAX) < huge);
        assert!(-&huge < b(i128::MIN));
    }

    #[test]
    fn display_parse_roundtrip_large() {
        let s = "123456789012345678901234567890123456789";
        let v: BigInt = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        let neg: BigInt = format!("-{s}").parse().unwrap();
        assert_eq!(neg.to_string(), format!("-{s}"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        assert!("--3".parse::<BigInt>().is_err());
    }

    #[test]
    fn pow_small() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(-3).pow(3), b(-27));
        assert_eq!(b(5).pow(0), b(1));
        assert_eq!(b(0).pow(0), b(1));
    }

    #[test]
    fn large_division() {
        let a: BigInt = "340282366920938463463374607431768211457".parse().unwrap();
        let d: BigInt = "18446744073709551629".parse().unwrap();
        let (q, r) = a.div_rem(&d);
        assert_eq!(&(&q * &d) + &r, a);
        assert!(r < d);
        assert!(!r.is_negative());
    }

    #[test]
    fn to_f64_sane() {
        assert_eq!(b(0).to_f64(), 0.0);
        assert_eq!(b(-3).to_f64(), -3.0);
        assert!((b(1i128 << 40).to_f64() - (1u64 << 40) as f64).abs() < 1e-6);
    }

    #[test]
    fn is_even_and_bits() {
        assert!(b(0).is_even());
        assert!(b(-4).is_even());
        assert!(!b(7).is_even());
        assert_eq!(b(0).bits(), 0);
        assert_eq!(b(1).bits(), 1);
        assert_eq!(b(255).bits(), 8);
        assert_eq!(b(256).bits(), 9);
    }
}
