//! Arbitrary-precision integer and rational arithmetic.
//!
//! The linarb CHC solver performs exact computations throughout: the
//! simplex core pivots on rationals, learned hyperplanes are
//! rationalized to integer coefficients, and Farkas certificates are
//! exact integer combinations. This crate provides the two number
//! types everything else is built on:
//!
//! * [`BigInt`] — a sign-magnitude arbitrary-precision integer.
//! * [`BigRational`] — a normalized quotient of two [`BigInt`]s.
//!
//! Values that occur while solving CHCs are small (coefficients,
//! sample coordinates, pivot entries), so the implementation favors
//! simplicity and obvious correctness over asymptotic cleverness:
//! schoolbook multiplication and binary long division.
//!
//! # Examples
//!
//! ```
//! use linarb_arith::{BigInt, BigRational};
//!
//! let a = BigInt::from(6);
//! let b = BigInt::from(-4);
//! assert_eq!((&a * &b).to_string(), "-24");
//! assert_eq!(BigInt::gcd(&a, &b), BigInt::from(2));
//!
//! let q = BigRational::new(BigInt::from(6), BigInt::from(-4));
//! assert_eq!(q.to_string(), "-3/2");
//! assert_eq!(q.floor(), BigInt::from(-2));
//! ```

mod bigint;
mod rational;

pub use bigint::{BigInt, ParseBigIntError};
pub use rational::{BigRational, ParseBigRationalError};

/// Convenience constructor for a [`BigInt`] from any primitive integer.
///
/// ```
/// use linarb_arith::int;
/// assert_eq!(int(-7).to_string(), "-7");
/// ```
pub fn int(v: i64) -> BigInt {
    BigInt::from(v)
}

/// Convenience constructor for a [`BigRational`] from an integer pair.
///
/// # Panics
///
/// Panics if `den == 0`.
///
/// ```
/// use linarb_arith::rat;
/// assert_eq!(rat(2, 4).to_string(), "1/2");
/// ```
pub fn rat(num: i64, den: i64) -> BigRational {
    BigRational::new(BigInt::from(num), BigInt::from(den))
}
