//! The socket daemon: an accept loop over Unix or TCP, one frame in →
//! one frame out (DESIGN.md §15).
//!
//! Connections are handled sequentially — the parallelism lives
//! *inside* a batch (jobs sharded across the pool), not across
//! connections, which keeps cache insertion order, and therefore the
//! daemon's entire observable behavior, a deterministic function of
//! the submission sequence. A `shutdown` request ends the accept loop
//! after its connection closes.

use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::Arc;

use linarb_trace::frame::{read_frame, write_frame};

use crate::engine::{JobInput, JobOutcome, ServeCore};
use crate::proto::{parse_request, render_error, Request};

/// Where the daemon listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BindAddr {
    /// A Unix domain socket at this path.
    Unix(PathBuf),
    /// A TCP `host:port`.
    Tcp(String),
}

/// Parses `unix:<path>` or `tcp:<host:port>`.
///
/// # Errors
///
/// A usage message for any other shape.
pub fn parse_addr(s: &str) -> Result<BindAddr, String> {
    if let Some(path) = s.strip_prefix("unix:") {
        if path.is_empty() {
            return Err("unix: needs a socket path".to_string());
        }
        Ok(BindAddr::Unix(PathBuf::from(path)))
    } else if let Some(hostport) = s.strip_prefix("tcp:") {
        if !hostport.contains(':') {
            return Err("tcp: needs host:port".to_string());
        }
        Ok(BindAddr::Tcp(hostport.to_string()))
    } else {
        Err(format!("bad address `{s}` (want unix:<path> or tcp:<host:port>)"))
    }
}

enum Control {
    Continue,
    Shutdown,
}

/// Runs the daemon until a `shutdown` request arrives. Prints one
/// `ready` line to stdout once listening (scripts wait on it).
///
/// # Errors
///
/// Socket bind failures. Per-connection I/O errors are logged to
/// stderr and end only that connection.
pub fn serve(addr: &BindAddr, core: Arc<ServeCore>) -> io::Result<()> {
    match addr {
        BindAddr::Unix(path) => {
            // A stale socket file from a dead daemon blocks bind.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            println!("linarb-serve: ready on unix:{}", path.display());
            for conn in listener.incoming() {
                match conn {
                    Ok(mut stream) => match handle_conn(&mut stream, &core) {
                        Ok(Control::Shutdown) => break,
                        Ok(Control::Continue) => {}
                        Err(e) => eprintln!("linarb-serve: connection error: {e}"),
                    },
                    Err(e) => eprintln!("linarb-serve: accept error: {e}"),
                }
            }
            let _ = std::fs::remove_file(path);
            Ok(())
        }
        BindAddr::Tcp(hostport) => {
            let listener = TcpListener::bind(hostport.as_str())?;
            println!("linarb-serve: ready on tcp:{hostport}");
            for conn in listener.incoming() {
                match conn {
                    Ok(mut stream) => match handle_conn(&mut stream, &core) {
                        Ok(Control::Shutdown) => break,
                        Ok(Control::Continue) => {}
                        Err(e) => eprintln!("linarb-serve: connection error: {e}"),
                    },
                    Err(e) => eprintln!("linarb-serve: accept error: {e}"),
                }
            }
            Ok(())
        }
    }
}

/// Serves one connection: a request/response loop until the peer
/// closes or asks for shutdown.
fn handle_conn<S: Read + Write>(stream: &mut S, core: &ServeCore) -> io::Result<Control> {
    loop {
        let Some(text) = read_frame(stream)? else {
            return Ok(Control::Continue);
        };
        match parse_request(&text) {
            Err(msg) => write_frame(stream, &render_error(&msg))?,
            Ok(Request::Ping) => write_frame(stream, "{\"op\":\"ping\",\"ok\":true}")?,
            Ok(Request::Stats) => {
                let body = core.stats().render(core.cache_len());
                write_frame(stream, &format!("{{\"op\":\"stats\",\"stats\":{body}}}"))?;
            }
            Ok(Request::Shutdown) => {
                write_frame(stream, "{\"op\":\"shutdown\",\"ok\":true}")?;
                return Ok(Control::Shutdown);
            }
            Ok(Request::Batch(jobs)) => {
                let inputs: Vec<JobInput> = jobs.into_iter().map(JobInput::from_spec).collect();
                let outcomes = core.submit_batch(inputs);
                let body: Vec<String> = outcomes.iter().map(JobOutcome::render).collect();
                write_frame(
                    stream,
                    &format!("{{\"op\":\"batch\",\"results\":[{}]}}", body.join(",")),
                )?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parsing() {
        assert_eq!(parse_addr("unix:/tmp/s.sock").unwrap(), BindAddr::Unix("/tmp/s.sock".into()));
        assert_eq!(parse_addr("tcp:127.0.0.1:0").unwrap(), BindAddr::Tcp("127.0.0.1:0".into()));
        assert!(parse_addr("unix:").is_err());
        assert!(parse_addr("tcp:nohostport").is_err());
        assert!(parse_addr("/tmp/s.sock").is_err());
    }
}
