//! The two-tier invariant cache (DESIGN.md §15).
//!
//! Entries are keyed by the canonical form of the solved system
//! ([`linarb_frontend::Canon`]). Cached artifacts are stored in
//! *canonical coordinates* — predicates by canonical index, variables
//! by canonical (per-clause first-occurrence) number, interpretation
//! formulas over canonical parameter positions — so they can be
//! carried to any later system sharing the form, regardless of its
//! names, declaration order, or clause order:
//!
//! * **Exact tier.** Lookup by 128-bit key, confirmed by comparing the
//!   full canonical text (collisions cost a miss, never a wrong hit).
//!   The cached verdict is translated into the submitting system's
//!   coordinates and independently re-checked before being served.
//! * **Near tier.** When no exact entry matches, the best neighbor by
//!   per-clause fingerprint overlap donates its solver snapshot and
//!   invariant atoms as a warm start. Warm-start material only biases
//!   the search — verdicts still come from a full solve — so a poor
//!   neighbor costs time, not soundness.
//!
//! The cache is bounded (FIFO eviction) and all iteration orders are
//! deterministic (insertion order), keeping daemon behavior
//! reproducible across runs and thread counts.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use linarb_arith::BigInt;
use linarb_frontend::Canon;
use linarb_logic::{Atom, ChcSystem, Formula, Interpretation, Model, Var};
use linarb_solver::{DerivationNode, SolveResult, SolveSnapshot};

/// A memoized verdict in canonical coordinates.
#[derive(Clone, Debug)]
pub enum CachedVerdict {
    /// Sat: per canonical predicate, the invariant over canonical
    /// parameter variables `v0 … v(arity-1)`.
    Sat(Vec<Formula>),
    /// Unsat: the derivation tree in canonical clause/variable space.
    Unsat(CanonDeriv),
}

/// A [`DerivationNode`] with clauses, variables, and predicates
/// replaced by their canonical numbers.
#[derive(Clone, Debug)]
pub struct CanonDeriv {
    /// Canonical index of the derived predicate (`None` at a goal
    /// root).
    pub pred: Option<usize>,
    /// Derived argument values.
    pub sample: Vec<BigInt>,
    /// Canonical clause index.
    pub clause: usize,
    /// Witnessing assignment: canonical variable number → value,
    /// sorted by number.
    pub model: Vec<(u32, BigInt)>,
    /// Derivations of the body predicates, in body order.
    pub children: Vec<CanonDeriv>,
}

/// Warm-start material donated to near-tier consumers.
#[derive(Clone, Default)]
pub struct WarmStart {
    /// The producer's solver snapshot, still in the producer's
    /// `PredId` space ([`SolveSnapshot::remap_preds`] translates it).
    pub snapshot: SolveSnapshot,
    /// Atoms of the producer's final invariants (Sat runs only), per
    /// canonical predicate index, over canonical parameter variables.
    pub atoms: Vec<(usize, Atom)>,
}

/// One cache entry: the canonical form, the verdict, and the solver
/// state that produced it.
#[derive(Clone)]
pub struct CacheEntry {
    /// Name of the job that populated the entry (debugging only).
    pub name: String,
    /// Full canonical text; exact hits compare this.
    pub text: String,
    /// Sorted per-clause shape hashes for near-miss search.
    pub fingerprint: Vec<u64>,
    /// Canonical predicate arities; near-tier donors must match.
    pub arities: Vec<usize>,
    /// The memoized verdict.
    pub verdict: CachedVerdict,
    /// Producer canonical index → producer `PredId`, for translating
    /// [`WarmStart::snapshot`] into a consumer's `PredId` space.
    pub pred_of_canon: Vec<linarb_logic::PredId>,
    /// Warm-start material for near-tier consumers.
    pub warm: WarmStart,
}

/// Translates a fresh solve result into canonical coordinates for
/// caching. Returns `None` for verdicts that cannot be represented
/// (never observed in practice; callers just skip caching).
pub fn cache_verdict(canon: &Canon, sys: &ChcSystem, result: &SolveResult) -> Option<CachedVerdict> {
    match result {
        SolveResult::Sat(interp) => {
            let mut formulas = Vec::with_capacity(canon.arities.len());
            for ci in 0..canon.arities.len() {
                let pid = canon.pred_of_canon[ci];
                let Some(f) = interp.get(&pid) else {
                    formulas.push(Formula::True);
                    continue;
                };
                let params = &sys.pred(pid).params;
                let map: HashMap<Var, Var> = params
                    .iter()
                    .enumerate()
                    .map(|(j, v)| (*v, Var::from_index(j as u32)))
                    .collect();
                formulas.push(f.rename(&map));
            }
            Some(CachedVerdict::Sat(formulas))
        }
        SolveResult::Unsat(tree) => deriv_to_canon(canon, tree).map(CachedVerdict::Unsat),
        SolveResult::Unknown(_) => None,
    }
}

fn deriv_to_canon(canon: &Canon, n: &DerivationNode) -> Option<CanonDeriv> {
    let ci = *canon.canon_of_clause.get(n.clause.0 as usize)?;
    let inv: HashMap<Var, u32> = canon.clause_vars[ci]
        .iter()
        .enumerate()
        .map(|(k, v)| (*v, k as u32))
        .collect();
    let mut model = Vec::new();
    for (v, val) in n.model.iter() {
        // Assignments outside the clause's own variables are inert
        // during replay (replay only evaluates clause-local terms),
        // so they are dropped rather than blocking the cache.
        if let Some(k) = inv.get(&v) {
            model.push((*k, val.clone()));
        }
    }
    model.sort_by(|a, b| a.0.cmp(&b.0));
    let mut children = Vec::with_capacity(n.children.len());
    for ch in &n.children {
        children.push(deriv_to_canon(canon, ch)?);
    }
    Some(CanonDeriv {
        pred: n.pred.map(|p| canon.canon_of_pred[p.0 as usize]),
        sample: n.sample.clone(),
        clause: ci,
        model,
        children,
    })
}

/// Translates a cached verdict into `sys`'s coordinates via its
/// canonical form. The result is *not yet trusted* — the caller must
/// re-verify (interpretation check or derivation replay) before
/// serving it. Returns `None` on any structural mismatch.
pub fn restore_verdict(canon: &Canon, sys: &ChcSystem, v: &CachedVerdict) -> Option<SolveResult> {
    match v {
        CachedVerdict::Sat(formulas) => {
            if formulas.len() != canon.arities.len() {
                return None;
            }
            let mut interp = Interpretation::new();
            for (ci, f) in formulas.iter().enumerate() {
                let pid = *canon.pred_of_canon.get(ci)?;
                let params = &sys.pred(pid).params;
                let map: HashMap<Var, Var> = params
                    .iter()
                    .enumerate()
                    .map(|(j, v)| (Var::from_index(j as u32), *v))
                    .collect();
                interp.insert(pid, f.rename(&map));
            }
            Some(SolveResult::Sat(interp))
        }
        CachedVerdict::Unsat(tree) => deriv_from_canon(canon, tree).map(SolveResult::Unsat),
    }
}

fn deriv_from_canon(canon: &Canon, n: &CanonDeriv) -> Option<DerivationNode> {
    let clause = *canon.clause_of_canon.get(n.clause)?;
    let vars = canon.clause_vars.get(n.clause)?;
    let mut model = Model::new();
    for (k, val) in &n.model {
        model.assign(*vars.get(*k as usize)?, val.clone());
    }
    let mut children = Vec::with_capacity(n.children.len());
    for ch in &n.children {
        children.push(deriv_from_canon(canon, ch)?);
    }
    Some(DerivationNode {
        pred: match n.pred {
            Some(ci) => Some(*canon.pred_of_canon.get(ci)?),
            None => None,
        },
        sample: n.sample.clone(),
        clause,
        model,
        children,
    })
}

/// Collects the atoms of a cached Sat verdict as near-tier seed
/// material: `(canonical predicate index, atom)` pairs.
pub fn invariant_atoms(verdict: &CachedVerdict) -> Vec<(usize, Atom)> {
    let CachedVerdict::Sat(formulas) = verdict else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (ci, f) in formulas.iter().enumerate() {
        collect_atoms(f, ci, &mut out);
    }
    out
}

fn collect_atoms(f: &Formula, ci: usize, out: &mut Vec<(usize, Atom)>) {
    match f {
        Formula::Atom(a) => out.push((ci, a.clone())),
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                collect_atoms(g, ci, out);
            }
        }
        Formula::Not(g) => collect_atoms(g, ci, out),
        Formula::True | Formula::False | Formula::Mod(_) => {}
    }
}

fn overlap(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The bounded, deterministic entry store.
pub struct InvariantCache {
    by_key: HashMap<String, Arc<CacheEntry>>,
    /// Keys in insertion order: FIFO eviction and deterministic
    /// near-tier scans.
    order: VecDeque<String>,
    cap: usize,
}

impl InvariantCache {
    /// An empty cache holding at most `cap` entries (min 1).
    pub fn new(cap: usize) -> InvariantCache {
        InvariantCache { by_key: HashMap::new(), order: VecDeque::new(), cap: cap.max(1) }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Exact-tier lookup: key match confirmed by full canonical text
    /// comparison.
    pub fn exact(&self, canon: &Canon) -> Option<Arc<CacheEntry>> {
        self.by_key.get(&canon.key).filter(|e| e.text == canon.text).cloned()
    }

    /// Near-tier lookup: the entry with the highest fingerprint
    /// overlap fraction, provided it reaches `min_frac` of the larger
    /// fingerprint and its canonical arities match (snapshot predicate
    /// remapping requires aligned signatures). Ties keep the earliest
    /// inserted entry, so results do not depend on hash order.
    pub fn nearest(&self, canon: &Canon, min_frac: f64) -> Option<Arc<CacheEntry>> {
        let mut best: Option<(f64, Arc<CacheEntry>)> = None;
        for key in &self.order {
            let e = &self.by_key[key];
            if e.arities != canon.arities || e.text == canon.text {
                continue;
            }
            let denom = e.fingerprint.len().max(canon.fingerprint.len()).max(1);
            let frac = overlap(&e.fingerprint, &canon.fingerprint) as f64 / denom as f64;
            if frac >= min_frac && best.as_ref().map_or(true, |(b, _)| frac > *b) {
                best = Some((frac, Arc::clone(e)));
            }
        }
        best.map(|(_, e)| e)
    }

    /// Inserts (or replaces) the entry for `key`, evicting the oldest
    /// entry when full.
    pub fn insert(&mut self, key: String, entry: CacheEntry) {
        if self.by_key.insert(key.clone(), Arc::new(entry)).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.by_key.remove(&old);
                }
            }
        }
    }
}
