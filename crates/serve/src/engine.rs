//! Batch scheduling and solving behind the cache (DESIGN.md §15).
//!
//! [`ServeCore`] is the daemon's heart, usable with or without a
//! socket: jobs are sharded across a [`linarb_pool::Pool`], each
//! worker runs parse → canonicalize → cache probe → solve-or-verify,
//! and newly solved entries are inserted *after* the batch in batch
//! order, so cache contents are a deterministic function of the
//! submission sequence (never of worker timing).
//!
//! Worker solvers run single-threaded (`with_threads(1)`) — the
//! parallelism budget is spent across jobs, not inside one solve, and
//! it keeps per-job trajectories identical at every pool width.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use linarb_frontend::{canonicalize, Canon};
use linarb_logic::{parse_chc, Atom, ChcSystem, PredId, Var};
use linarb_pool::Pool;
use linarb_portfolio::{run_engine, Certificate, EngineKind, EngineVerdict};
use linarb_smt::Budget;
use linarb_solver::{
    verify_interpretation, CegarSolver, OracleMode, SolveResult, SolveSnapshot, SolverConfig,
};
use linarb_trace::json_string;

use crate::cache::{self, CacheEntry, InvariantCache, WarmStart};
use crate::proto::JobSpec;

/// Configuration of a [`ServeCore`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Pool width for batch sharding (jobs in flight at once).
    pub threads: usize,
    /// Per-job wall-clock budget.
    pub timeout: Duration,
    /// Master cache switch (`false` = every job solves cold; the
    /// replay driver's baseline mode).
    pub cache: bool,
    /// Maximum number of cache entries (FIFO eviction beyond).
    pub cache_cap: usize,
    /// Near-miss tier switch.
    pub near: bool,
    /// Minimum fingerprint-overlap fraction for a near-tier donor.
    pub near_min_frac: f64,
    /// `None` solves with the in-crate CEGAR engine (which can donate
    /// and consume warm-start snapshots); `Some(kind)` dispatches
    /// through the portfolio's [`run_engine`] instead.
    pub engine: Option<EngineKind>,
    /// Countermodel minimization knob forwarded to the CEGAR engine.
    pub minimize_models: bool,
    /// BMC unroll cap forwarded to portfolio engines.
    pub bmc_max_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let threads = std::env::var("LINARB_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
            });
        ServeConfig {
            threads,
            timeout: Duration::from_secs(30),
            cache: true,
            cache_cap: 4096,
            near: true,
            near_min_frac: 0.5,
            engine: None,
            minimize_models: false,
            bmc_max_depth: 256,
        }
    }
}

/// What a job solves: program text in a supported format, or an
/// already-built system (in-process callers like the replay driver).
pub enum Source {
    /// SMT-LIB2 Horn text.
    Smt2(String),
    /// Mini-C text for the frontend compiler.
    MiniC(String),
    /// A pre-built system.
    System(ChcSystem),
}

/// One scheduled job.
pub struct JobInput {
    /// Echoed back in the outcome.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// The program.
    pub source: Source,
}

impl JobInput {
    /// Converts a wire-level [`JobSpec`] into a schedulable job.
    pub fn from_spec(spec: JobSpec) -> JobInput {
        let source = match spec.format.as_str() {
            "c" => Source::MiniC(spec.program),
            _ => Source::Smt2(spec.program),
        };
        JobInput { id: spec.id, name: spec.name, source }
    }
}

/// Which cache tier answered a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Memoized verdict served after re-verification.
    Exact,
    /// Fresh solve warm-started from the closest neighbor.
    Near,
    /// Fresh cold solve (no usable neighbor).
    Miss,
    /// Cache disabled.
    Off,
}

impl Tier {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::Near => "near",
            Tier::Miss => "miss",
            Tier::Off => "off",
        }
    }
}

/// The result of one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Echo of [`JobInput::id`].
    pub id: u64,
    /// Echo of [`JobInput::name`].
    pub name: String,
    /// `"sat"`, `"unsat"`, `"unknown"`, or `"error"`.
    pub verdict: String,
    /// Which tier answered.
    pub tier: Tier,
    /// Whether the verdict passed an independent check
    /// (interpretation verification / derivation replay). Always true
    /// for served exact hits; best-effort for fresh solves (fresh Sat
    /// results are already oracle-validated by construction).
    pub verified: bool,
    /// Wall time of the job inside its worker.
    pub wall_us: u64,
    /// Unknown reason or parse/compile error text (empty otherwise).
    pub detail: String,
}

impl JobOutcome {
    /// Renders the response object for the wire.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{{\"id\":{},\"name\":{},\"verdict\":{},\"cache\":{},\"verified\":{},\"wall_us\":{}",
            self.id,
            json_string(&self.name),
            json_string(&self.verdict),
            json_string(self.tier.label()),
            self.verified,
            self.wall_us
        );
        if !self.detail.is_empty() {
            s.push_str(&format!(",\"detail\":{}", json_string(&self.detail)));
        }
        s.push('}');
        s
    }

    fn error(id: u64, name: &str, tier: Tier, detail: String, start: Instant) -> JobOutcome {
        JobOutcome {
            id,
            name: name.to_string(),
            verdict: "error".to_string(),
            tier,
            verified: false,
            wall_us: start.elapsed().as_micros() as u64,
            detail,
        }
    }
}

/// Scheduler and cache counters, exported by the daemon's `stats` op
/// and the replay driver.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Jobs completed.
    pub jobs: u64,
    /// Exact-tier hits served.
    pub exact_hits: u64,
    /// Near-tier warm starts.
    pub near_hits: u64,
    /// Cold solves (cache enabled, no usable neighbor).
    pub misses: u64,
    /// Exact-tier candidates that failed re-verification (served as
    /// fresh solves instead).
    pub verify_failures: u64,
    /// Jobs that failed to parse/compile.
    pub errors: u64,
    /// Verdict counts.
    pub sat: u64,
    /// See [`ServeStats::sat`].
    pub unsat: u64,
    /// See [`ServeStats::sat`].
    pub unknown: u64,
}

impl ServeStats {
    /// Renders the counters as a JSON object body (no `op` field).
    pub fn render(&self, cache_entries: usize) -> String {
        format!(
            "{{\"jobs\":{},\"exact_hits\":{},\"near_hits\":{},\"misses\":{},\
             \"verify_failures\":{},\"errors\":{},\"sat\":{},\"unsat\":{},\
             \"unknown\":{},\"cache_entries\":{}}}",
            self.jobs,
            self.exact_hits,
            self.near_hits,
            self.misses,
            self.verify_failures,
            self.errors,
            self.sat,
            self.unsat,
            self.unknown,
            cache_entries
        )
    }
}

/// The resident solver: pool, cache, counters.
pub struct ServeCore {
    cfg: ServeConfig,
    pool: Pool,
    cache: Mutex<InvariantCache>,
    stats: Mutex<ServeStats>,
}

impl ServeCore {
    /// Builds a core with its worker pool.
    pub fn new(cfg: ServeConfig) -> ServeCore {
        let pool = Pool::new(cfg.threads);
        let cache = Mutex::new(InvariantCache::new(cfg.cache_cap));
        ServeCore { cfg, pool, cache, stats: Mutex::new(ServeStats::default()) }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> ServeStats {
        self.stats.lock().unwrap().clone()
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Solves a batch in three deterministic waves:
    ///
    /// 1. **Prepare** (parallel): parse/compile and canonicalize every
    ///    job.
    /// 2. **Leaders** (parallel): for each canonical form not already
    ///    cached, its *first* job in submission order solves it; the
    ///    results are memoized in submission order.
    /// 3. **Followers** (parallel): the remaining jobs run with the
    ///    leaders' entries visible, so intra-batch duplicates hit the
    ///    exact tier instead of solving the same system N times.
    ///
    /// Results come back in submission order, and cache contents are a
    /// function of the submission sequence alone — never of worker
    /// timing or pool width.
    pub fn submit_batch(&self, jobs: Vec<JobInput>) -> Vec<JobOutcome> {
        let n = jobs.len();
        let prepared = self.pool.parallel_map(jobs, |job| self.prepare(job));

        let mut slots: Vec<Option<JobOutcome>> = (0..n).map(|_| None).collect();
        let mut leaders: Vec<(usize, Prepared)> = Vec::new();
        let mut followers: Vec<(usize, Prepared)> = Vec::new();
        {
            let cache = self.cache.lock().unwrap();
            let mut batch_forms: std::collections::HashSet<String> = std::collections::HashSet::new();
            for (idx, prep) in prepared.into_iter().enumerate() {
                match prep {
                    Prep::Failed(outcome) => {
                        let mut stats = self.stats.lock().unwrap();
                        stats.jobs += 1;
                        stats.errors += 1;
                        drop(stats);
                        slots[idx] = Some(outcome);
                    }
                    Prep::Ready(p) => {
                        let already = self.cfg.cache
                            && (cache.exact(&p.canon).is_some()
                                || !batch_forms.insert(p.canon.text.clone()));
                        if already {
                            followers.push((idx, p));
                        } else {
                            leaders.push((idx, p));
                        }
                    }
                }
            }
        }

        let solved =
            self.pool.parallel_map(leaders, |(idx, p)| (idx, self.solve_prepared(p)));
        self.settle(solved, &mut slots);
        let solved =
            self.pool.parallel_map(followers, |(idx, p)| (idx, self.solve_prepared(p)));
        self.settle(solved, &mut slots);

        slots.into_iter().map(|s| s.expect("every slot filled")).collect()
    }

    /// Sequential accounting for one wave: counters, cache insertion
    /// (in submission order), and result slotting.
    fn settle(
        &self,
        solved: Vec<(usize, (JobOutcome, Option<FreshSolve>))>,
        slots: &mut [Option<JobOutcome>],
    ) {
        let mut stats = self.stats.lock().unwrap();
        let mut cache = self.cache.lock().unwrap();
        for (idx, (outcome, fresh)) in solved {
            stats.jobs += 1;
            match outcome.verdict.as_str() {
                "sat" => stats.sat += 1,
                "unsat" => stats.unsat += 1,
                "unknown" => stats.unknown += 1,
                _ => stats.errors += 1,
            }
            match outcome.tier {
                Tier::Exact => stats.exact_hits += 1,
                Tier::Near => stats.near_hits += 1,
                Tier::Miss => stats.misses += 1,
                Tier::Off => {}
            }
            stats.verify_failures += fresh.as_ref().map_or(0, |f| f.verify_failed as u64);
            if let Some(f) = fresh {
                if let Some((key, entry)) = f.entry {
                    cache.insert(key, entry);
                }
            }
            slots[idx] = Some(outcome);
        }
    }

    /// Wave 1: parse/compile and canonicalize.
    fn prepare(&self, job: JobInput) -> Prep {
        let start = Instant::now();
        let sys = match job.source {
            Source::System(sys) => sys,
            Source::Smt2(text) => match parse_chc(&text) {
                Ok(sys) => sys,
                Err(e) => {
                    return Prep::Failed(JobOutcome::error(
                        job.id,
                        &job.name,
                        Tier::Off,
                        e.to_string(),
                        start,
                    ))
                }
            },
            Source::MiniC(text) => match linarb_frontend::compile(&text) {
                Ok(sys) => sys,
                Err(e) => {
                    return Prep::Failed(JobOutcome::error(
                        job.id,
                        &job.name,
                        Tier::Off,
                        e.to_string(),
                        start,
                    ))
                }
            },
        };
        let canon = canonicalize(&sys);
        Prep::Ready(Prepared { id: job.id, name: job.name, sys, canon, start })
    }

    /// Waves 2–3: cache probe, then solve or serve.
    fn solve_prepared(&self, p: Prepared) -> (JobOutcome, Option<FreshSolve>) {
        let Prepared { id, name, sys, canon, start } = p;
        let budget = Budget::timeout(self.cfg.timeout);
        let mut verify_failed = false;

        // Exact tier: serve the memoized verdict iff it independently
        // re-verifies against *this* submission.
        if self.cfg.cache {
            let hit = self.cache.lock().unwrap().exact(&canon);
            if let Some(entry) = hit {
                if let Some(result) = cache::restore_verdict(&canon, &sys, &entry.verdict) {
                    let ok = match &result {
                        SolveResult::Sat(interp) => {
                            verify_interpretation(&sys, interp, &budget) == Some(true)
                        }
                        SolveResult::Unsat(tree) => tree.replay(&sys),
                        SolveResult::Unknown(_) => false,
                    };
                    if ok {
                        let outcome = JobOutcome {
                            id,
                            name,
                            verdict: verdict_label(&result).to_string(),
                            tier: Tier::Exact,
                            verified: true,
                            wall_us: start.elapsed().as_micros() as u64,
                            detail: String::new(),
                        };
                        return (outcome, None);
                    }
                }
                verify_failed = true;
            }
        }

        // Near tier: translate the best neighbor's solver state into
        // this system's predicate space and warm-start the solve.
        let mut warm: Option<Arc<SolveSnapshot>> = None;
        let mut seed_atoms: Vec<(PredId, Atom)> = Vec::new();
        let mut tier = if self.cfg.cache { Tier::Miss } else { Tier::Off };
        if self.cfg.cache && self.cfg.near {
            let near = self.cache.lock().unwrap().nearest(&canon, self.cfg.near_min_frac);
            if let Some(entry) = near {
                let mut pred_map: HashMap<PredId, PredId> = HashMap::new();
                for (ci, producer) in entry.pred_of_canon.iter().enumerate() {
                    if let Some(consumer) = canon.pred_of_canon.get(ci) {
                        pred_map.insert(*producer, *consumer);
                    }
                }
                let snap = entry.warm.snapshot.remap_preds(&pred_map);
                if !snap.is_empty() {
                    warm = Some(Arc::new(snap));
                }
                for (ci, atom) in &entry.warm.atoms {
                    if let Some(pid) = canon.pred_of_canon.get(*ci) {
                        let params = &sys.pred(*pid).params;
                        let map: HashMap<Var, Var> = params
                            .iter()
                            .enumerate()
                            .map(|(j, v)| (Var::from_index(j as u32), *v))
                            .collect();
                        seed_atoms.push((*pid, atom.rename(&map)));
                    }
                }
                if warm.is_some() || !seed_atoms.is_empty() {
                    tier = Tier::Near;
                }
            }
        }

        let (result, snapshot, detail) = self.run_solver(&sys, warm, seed_atoms, &budget);

        // Memoize definite verdicts (in canonical coordinates).
        let entry = if self.cfg.cache {
            cache::cache_verdict(&canon, &sys, &result).map(|cv| {
                let atoms = cache::invariant_atoms(&cv);
                let entry = CacheEntry {
                    name: name.clone(),
                    text: canon.text.clone(),
                    fingerprint: canon.fingerprint.clone(),
                    arities: canon.arities.clone(),
                    verdict: cv,
                    pred_of_canon: canon.pred_of_canon.clone(),
                    warm: WarmStart { snapshot: snapshot.unwrap_or_default(), atoms },
                };
                (canon.key.clone(), entry)
            })
        } else {
            None
        };

        let outcome = JobOutcome {
            id,
            name,
            verdict: verdict_label(&result).to_string(),
            tier,
            verified: false,
            wall_us: start.elapsed().as_micros() as u64,
            detail,
        };
        (outcome, Some(FreshSolve { entry, verify_failed }))
    }

    fn run_solver(
        &self,
        sys: &ChcSystem,
        warm: Option<Arc<SolveSnapshot>>,
        seed_atoms: Vec<(PredId, Atom)>,
        budget: &Budget,
    ) -> (SolveResult, Option<SolveSnapshot>, String) {
        match self.cfg.engine {
            None | Some(EngineKind::Cegar) => {
                let mut config = SolverConfig::default()
                    .with_oracle(OracleMode::Incremental)
                    .with_threads(1)
                    .with_minimize_models(self.cfg.minimize_models)
                    .with_seed_atoms(seed_atoms);
                if let Some(ws) = warm {
                    config = config.with_warm_start(ws);
                }
                let mut solver = CegarSolver::new(sys, config);
                let result = solver.solve(budget);
                let snapshot = match &result {
                    SolveResult::Unknown(_) => None,
                    _ => Some(solver.snapshot()),
                };
                let detail = match &result {
                    SolveResult::Unknown(reason) => format!("{reason:?}"),
                    _ => String::new(),
                };
                (result, snapshot, detail)
            }
            Some(kind) => {
                let verdict = run_engine(kind, sys, budget, None, self.cfg.bmc_max_depth);
                match verdict {
                    EngineVerdict::Sat(Certificate::Invariant(interp)) => {
                        (SolveResult::Sat(interp), None, String::new())
                    }
                    EngineVerdict::Unsat(Certificate::Derivation(tree)) => {
                        (SolveResult::Unsat(tree), None, String::new())
                    }
                    EngineVerdict::Unknown(reason) => (
                        SolveResult::Unknown(linarb_solver::UnknownReason::SmtUnknown),
                        None,
                        reason,
                    ),
                    // Engines never cross certificate kinds; treat a
                    // mismatch as unknown rather than trusting it.
                    _ => (
                        SolveResult::Unknown(linarb_solver::UnknownReason::SmtUnknown),
                        None,
                        "certificate kind mismatch".to_string(),
                    ),
                }
            }
        }
    }
}

/// Byproducts of a fresh (non-exact-hit) solve.
struct FreshSolve {
    entry: Option<(String, CacheEntry)>,
    verify_failed: bool,
}

/// A parsed, canonicalized job awaiting its solve wave.
struct Prepared {
    id: u64,
    name: String,
    sys: ChcSystem,
    canon: Canon,
    start: Instant,
}

/// Wave-1 result: ready to solve, or failed to parse.
enum Prep {
    Ready(Prepared),
    Failed(JobOutcome),
}

fn verdict_label(r: &SolveResult) -> &'static str {
    match r {
        SolveResult::Sat(_) => "sat",
        SolveResult::Unsat(_) => "unsat",
        SolveResult::Unknown(_) => "unknown",
    }
}

// `Canon` appears in this module's docs.
#[doc(hidden)]
pub type _CanonRef = Canon;
