//! Solver-as-a-service: a persistent daemon with structural invariant
//! caching and batch scheduling (DESIGN.md §15).
//!
//! Verification workloads are repetitive: CI re-submits the same CHC
//! systems on every push, and small program edits yield systems that
//! are *structurally* near-identical to ones already solved. A
//! one-shot CLI pays full price every time. This crate keeps the
//! solver resident and exploits that repetition with a two-tier
//! persistent cache keyed on canonical CHC forms
//! ([`linarb_frontend::canonicalize`]):
//!
//! * **Exact tier.** Systems whose canonical *text* matches a cached
//!   entry get the memoized verdict back after a cheap independent
//!   re-check ([`linarb_solver::verify_interpretation`] for SAT,
//!   [`linarb_solver::DerivationNode::replay`] for UNSAT). A served
//!   hit is therefore never trusted blindly — staleness or a
//!   canonicalization bug costs a cache miss, not soundness.
//! * **Near tier.** Systems with no exact hit are matched to the
//!   closest cached neighbor by structural fingerprint overlap, and
//!   the neighbor's solver state — seed directions, learner
//!   negatives, per-clause incremental contexts
//!   ([`linarb_solver::SolveSnapshot`]) and invariant atoms — warm
//!   starts the fresh solve.
//!
//! The daemon ([`server`]) speaks length-prefixed JSON frames
//! ([`linarb_trace::frame`]) over a Unix or TCP socket; batches are
//! sharded across a [`linarb_pool::Pool`] by [`engine::ServeCore`],
//! which is also usable in-process (the replay bench driver and the
//! CI smoke test drive it without a socket). [`replay`] generates
//! thousands of mutated variants of base systems to measure cache
//! effectiveness: throughput, hit rates, and latency percentiles.

pub mod cache;
pub mod cli;
pub mod client;
pub mod engine;
pub mod proto;
pub mod replay;
pub mod server;

pub use cache::{CacheEntry, CachedVerdict, InvariantCache};
pub use engine::{JobInput, JobOutcome, ServeConfig, ServeCore, ServeStats, Source};
pub use proto::{parse_request, JobSpec, Request};
pub use replay::{run_replay, ReplayConfig, ReplayOutcome};
pub use server::{parse_addr, serve, BindAddr};
