//! Replay bench driver: measures cache effectiveness by re-submitting
//! thousands of mutated variants of base systems (DESIGN.md §15,
//! EXPERIMENTS.md).
//!
//! Each base system spawns a deterministic stream of variants built
//! from three *syntactic* mutations and one *semantic* one:
//!
//! * **rename** — predicates and variables renamed (canonical form
//!   unchanged → exact tier);
//! * **reorder** — clauses permuted (unchanged → exact tier);
//! * **scale** — every linear atom multiplied by a positive constant
//!   ([`Atom::le_zero`] normalizes it away → exact tier);
//! * **perturb** — one guard constant nudged (a *semantic* change →
//!   at best the near tier).
//!
//! Variants cycle through eight classes: the seven non-empty
//! combinations of the syntactic mutations, then one perturb. That mix
//! models the intended service workload — mostly resubmissions of
//! systems the daemon has already seen in different syntactic dress,
//! with a steady minority of genuinely new problems.
//!
//! The same variant stream runs through a cache-enabled core and a
//! cache-disabled core; the driver reports throughput for both, the
//! exact/near hit rates, latency percentiles, and any verdict
//! disagreements between the two runs (always zero modulo unknowns —
//! the cache must never change an answer).

use std::time::{Duration, Instant};

use linarb_arith::BigInt;
use linarb_logic::{Atom, ChcSystem, ClauseHead, Formula, PredApp};

use crate::engine::{JobInput, JobOutcome, ServeConfig, ServeCore, Source, Tier};

/// Replay driver configuration.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Mutated variants generated per base system (the originals are
    /// submitted first and are not counted here).
    pub variants_per_base: usize,
    /// RNG seed for the mutation stream.
    pub seed: u64,
    /// Jobs per submitted batch.
    pub batch: usize,
    /// Per-job budget.
    pub timeout: Duration,
    /// Pool width of both cores.
    pub threads: usize,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            variants_per_base: 125,
            seed: 0x1abb_5eed,
            batch: 64,
            // Perturbed variants are semantically new problems and can
            // be arbitrarily harder than their base; a bounded per-job
            // budget keeps one pathological mutant from dominating the
            // whole replay (it costs an `unknown`, counted per side).
            timeout: Duration::from_secs(10),
            threads: ServeConfig::default().threads,
        }
    }
}

/// Timing and hit counters for one side (warm or cold) of a replay.
#[derive(Clone, Debug, Default)]
pub struct RunSide {
    /// Total wall time of the run.
    pub wall_s: f64,
    /// Jobs per second.
    pub throughput: f64,
    /// Median per-job latency (µs).
    pub p50_us: u64,
    /// 99th-percentile per-job latency (µs).
    pub p99_us: u64,
    /// Exact-tier hits.
    pub exact_hits: u64,
    /// Near-tier warm starts.
    pub near_hits: u64,
    /// Cold solves.
    pub misses: u64,
    /// Exact-tier candidates that failed re-verification.
    pub verify_failures: u64,
    /// Unknown verdicts.
    pub unknown: u64,
}

/// The replay driver's report (the `serve` section of `BENCH_<n>.json`).
#[derive(Clone, Debug, Default)]
pub struct ReplayOutcome {
    /// Base systems.
    pub bases: usize,
    /// Total jobs per side (bases + variants).
    pub jobs: usize,
    /// Cache-enabled side.
    pub warm: RunSide,
    /// Cache-disabled side.
    pub cold: RunSide,
    /// `cold.wall_s / warm.wall_s`.
    pub speedup: f64,
    /// Variants where the two sides returned different *definite*
    /// verdicts. Must be zero: the cache may change speed, never
    /// answers.
    pub mismatches: usize,
}

/// xorshift64* — the workspace's stock tiny deterministic RNG,
/// re-implemented locally because `linarb-testutil` is a
/// dev-dependency by convention.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Atom-level mutation applied during a rebuild (renaming and clause
/// reordering are separate rebuild inputs, so all three syntactic
/// mutations compose freely).
enum Tweak {
    /// Atoms untouched.
    None,
    /// All atoms scaled by this factor.
    Scale(BigInt),
    /// Atom `atom_idx` of clause `clause_idx` (counting constraint
    /// atoms then goal atoms) gets `delta` added to its constant.
    Perturb { clause_idx: usize, atom_idx: usize, delta: BigInt },
}

fn map_formula(f: &Formula, n: &mut usize, tweak: &mut impl FnMut(usize, &Atom) -> Atom) -> Formula {
    match f {
        Formula::Atom(a) => {
            let idx = *n;
            *n += 1;
            Formula::Atom(tweak(idx, a))
        }
        Formula::And(fs) => Formula::And(fs.iter().map(|g| map_formula(g, n, tweak)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|g| map_formula(g, n, tweak)).collect()),
        Formula::Not(g) => Formula::Not(Box::new(map_formula(g, n, tweak))),
        Formula::True | Formula::False | Formula::Mod(_) => f.clone(),
    }
}

fn count_atoms(f: &Formula) -> usize {
    match f {
        Formula::Atom(_) => 1,
        Formula::And(fs) | Formula::Or(fs) => fs.iter().map(count_atoms).sum(),
        Formula::Not(g) => count_atoms(g),
        Formula::True | Formula::False | Formula::Mod(_) => 0,
    }
}

/// Rebuilds `sys` with renamed symbols, permuted clauses, and tweaked
/// atoms, *preserving the variable and predicate index layout* (the
/// rebuilt system's `Var`/`PredId` values match the original's).
/// Returns `None` when the system's parameter blocks are not laid out
/// the way [`ChcSystem::declare_pred`] produces them (never the case
/// for in-tree frontends); callers fall back to a plain clone.
fn rebuild(sys: &ChcSystem, tag: Option<&str>, order: &[usize], tweak: &Tweak) -> Option<ChcSystem> {
    let mut out = ChcSystem::new();
    // Vars and preds, in index order, interleaving predicate parameter
    // blocks at their original positions.
    let mut cursor: u32 = 0;
    for p in sys.preds() {
        let arity = p.params.len();
        let name = match tag {
            Some(t) => format!("{}_{t}", p.name),
            None => p.name.clone(),
        };
        if arity == 0 {
            out.declare_pred(&name, 0);
            continue;
        }
        let start = p.params[0].index();
        if start < cursor {
            return None;
        }
        while cursor < start {
            out.fresh_var(&var_name(sys, cursor, tag));
            cursor += 1;
        }
        for (j, v) in p.params.iter().enumerate() {
            if v.index() != start + j as u32 {
                return None;
            }
        }
        let pid = out.declare_pred(&name, arity);
        if pid != p.id || out.pred(pid).params != p.params {
            return None;
        }
        cursor += arity as u32;
    }
    while (cursor as usize) < sys.num_vars() {
        out.fresh_var(&var_name(sys, cursor, tag));
        cursor += 1;
    }

    let clauses = sys.clauses();
    for &idx in order {
        let c = &clauses[idx];
        // Atom tweaks see a per-clause atom counter spanning the
        // constraint first, then a goal head.
        let mut n = 0usize;
        let mut f = |atom_idx: usize, a: &Atom| match tweak {
            Tweak::None => a.clone(),
            Tweak::Scale(k) => Atom::le_zero(a.expr().scale(k)),
            Tweak::Perturb { clause_idx, atom_idx: t, delta } => {
                if *clause_idx == idx && *t == atom_idx {
                    let mut e = a.expr().clone();
                    e.add_constant(delta);
                    Atom::le_zero(e)
                } else {
                    a.clone()
                }
            }
        };
        let constraint = map_formula(&c.constraint, &mut n, &mut f);
        let head = match &c.head {
            ClauseHead::Pred(app) => {
                ClauseHead::Pred(PredApp::new(app.pred, app.args.clone()))
            }
            ClauseHead::Goal(g) => ClauseHead::Goal(map_formula(g, &mut n, &mut f)),
        };
        out.add_clause(c.body_preds.clone(), constraint, head);
    }
    Some(out)
}

fn var_name(sys: &ChcSystem, idx: u32, tag: Option<&str>) -> String {
    let base = sys.var_name(linarb_logic::Var::from_index(idx));
    match tag {
        Some(t) => format!("{base}_{t}"),
        None => base.to_string(),
    }
}

/// Generates variant `i` of `sys`, deterministically from the seed.
/// Indices cycle through eight classes: the seven non-empty
/// combinations of rename/reorder/scale (all of which preserve the
/// canonical form, so they exact-hit once the base is cached), then
/// one constant perturbation (a semantic change: near tier at best).
pub fn variant(sys: &ChcSystem, seed: u64, i: usize) -> ChcSystem {
    let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let n = sys.num_clauses();
    let identity: Vec<usize> = (0..n).collect();
    // Classes 1..=7 read the low three bits as a rename/reorder/scale
    // mask; class 0 (mask 000 would be a no-op) is the perturbation.
    let mask = (i % 8) as u32;
    let tag = format!("v{i}");
    let rename = mask & 0b001 != 0;
    let order = if mask & 0b010 != 0 {
        let mut order = identity.clone();
        // Fisher–Yates.
        for k in (1..order.len()).rev() {
            order.swap(k, rng.below(k + 1));
        }
        order
    } else {
        identity.clone()
    };
    let tweak = if mask == 0 {
        perturb_tweak(sys, &mut rng)
    } else if mask & 0b100 != 0 {
        Tweak::Scale(BigInt::from(2 + rng.below(5) as i64))
    } else {
        Tweak::None
    };
    let built = rebuild(sys, rename.then_some(tag.as_str()), &order, &tweak);
    built.unwrap_or_else(|| {
        rebuild(sys, None, &identity, &Tweak::None).unwrap_or_else(|| {
            // Layout too exotic to rebuild at all: replay the original.
            parse_roundtrip(sys)
        })
    })
}

/// Picks one atom (uniformly across all clauses) and a small nonzero
/// delta for its constant. Systems with no atoms at all degrade to an
/// exact duplicate.
fn perturb_tweak(sys: &ChcSystem, rng: &mut Rng) -> Tweak {
    let clauses = sys.clauses();
    let counts: Vec<usize> = clauses
        .iter()
        .map(|c| {
            count_atoms(&c.constraint)
                + match &c.head {
                    ClauseHead::Goal(g) => count_atoms(g),
                    ClauseHead::Pred(_) => 0,
                }
        })
        .collect();
    let total: usize = counts.iter().sum();
    if total == 0 {
        return Tweak::None;
    }
    let mut pick = rng.below(total);
    let mut clause_idx = 0;
    for (ci, cnt) in counts.iter().enumerate() {
        if pick < *cnt {
            clause_idx = ci;
            break;
        }
        pick -= cnt;
    }
    let delta = BigInt::from(1 + rng.below(3) as i64);
    let delta = if rng.below(2) == 0 { delta } else { -delta };
    Tweak::Perturb { clause_idx, atom_idx: pick, delta }
}

/// Last-resort clone via the SMT-LIB round trip (always succeeds for
/// systems the parser produced).
fn parse_roundtrip(sys: &ChcSystem) -> ChcSystem {
    linarb_logic::parse_chc(&sys.to_smtlib()).expect("smtlib round trip")
}

fn run_side(cfg: &ReplayConfig, cache: bool, jobs: &[(String, ChcSystem)]) -> (RunSide, Vec<JobOutcome>) {
    let core = ServeCore::new(ServeConfig {
        threads: cfg.threads,
        timeout: cfg.timeout,
        cache,
        ..ServeConfig::default()
    });
    let start = Instant::now();
    let mut outcomes = Vec::with_capacity(jobs.len());
    for chunk in jobs.chunks(cfg.batch.max(1)) {
        let inputs: Vec<JobInput> = chunk
            .iter()
            .enumerate()
            .map(|(k, (name, sys))| JobInput {
                id: (outcomes.len() + k) as u64,
                name: name.clone(),
                source: Source::System(sys.clone()),
            })
            .collect();
        outcomes.extend(core.submit_batch(inputs));
    }
    let wall_s = start.elapsed().as_secs_f64();
    let stats = core.stats();
    let mut lat: Vec<u64> = outcomes.iter().map(|o| o.wall_us).collect();
    lat.sort_unstable();
    let pct = |q: usize| -> u64 {
        if lat.is_empty() {
            0
        } else {
            lat[(lat.len() - 1) * q / 100]
        }
    };
    let side = RunSide {
        wall_s,
        throughput: if wall_s > 0.0 { outcomes.len() as f64 / wall_s } else { 0.0 },
        p50_us: pct(50),
        p99_us: pct(99),
        exact_hits: stats.exact_hits,
        near_hits: stats.near_hits,
        misses: stats.misses,
        verify_failures: stats.verify_failures,
        unknown: stats.unknown,
    };
    (side, outcomes)
}

/// Runs the full replay: generates the variant stream, drives it
/// through a warm (cache-enabled) and a cold (cache-disabled) core,
/// and cross-checks the verdicts.
pub fn run_replay(bases: &[(String, ChcSystem)], cfg: &ReplayConfig) -> ReplayOutcome {
    let mut jobs: Vec<(String, ChcSystem)> = Vec::new();
    for (name, sys) in bases {
        jobs.push((name.clone(), sys.clone()));
        for i in 0..cfg.variants_per_base {
            jobs.push((format!("{name}@{i}"), variant(sys, cfg.seed, i)));
        }
    }
    let (warm, warm_out) = run_side(cfg, true, &jobs);
    let (cold, cold_out) = run_side(cfg, false, &jobs);
    let mismatches = warm_out
        .iter()
        .zip(cold_out.iter())
        .filter(|(w, c)| {
            w.verdict != c.verdict && w.verdict != "unknown" && c.verdict != "unknown"
        })
        .count();
    let speedup = if warm.wall_s > 0.0 { cold.wall_s / warm.wall_s } else { 0.0 };
    ReplayOutcome { bases: bases.len(), jobs: jobs.len(), warm, cold, speedup, mismatches }
}

// `Tier` is part of this module's contract with the engine.
#[doc(hidden)]
pub type _TierRef = Tier;

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_frontend::canonicalize;
    use linarb_suite::fig1;

    #[test]
    fn exact_class_variants_preserve_the_canonical_form() {
        let sys = fig1().system;
        let base = canonicalize(&sys);
        for i in 0..24 {
            let v = variant(&sys, 0x1abb_5eed, i);
            let c = canonicalize(&v);
            if i % 8 == 0 {
                assert_ne!(c.text, base.text, "perturb variant {i} must change the form");
                assert!(
                    !c.fingerprint.is_empty(),
                    "perturbed variant must keep a fingerprint"
                );
            } else {
                assert_eq!(
                    c.text, base.text,
                    "variant {i} (syntactic mask {:03b}) must keep the canonical form",
                    i % 8
                );
            }
        }
    }
}
