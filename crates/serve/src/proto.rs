//! Wire protocol: JSON request/response payloads carried in
//! length-prefixed frames ([`linarb_trace::frame`]).
//!
//! Requests are single JSON objects dispatched on `"op"`:
//!
//! ```json
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! {"op":"solve","id":1,"name":"fig1","format":"smt2","program":"(set-logic HORN)..."}
//! {"op":"batch","jobs":[{...},{...}]}
//! ```
//!
//! Every request gets exactly one response frame. Solve responses
//! carry the verdict, which cache tier answered, whether the verdict
//! was independently re-verified, and the wall time:
//!
//! ```json
//! {"op":"solve","id":1,"name":"fig1","verdict":"sat","cache":"exact","verified":true,"wall_us":812}
//! ```

use linarb_trace::json::{self, Json};
use linarb_trace::json_string;

/// One solve job as submitted on the wire.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Client-chosen id echoed back in the response.
    pub id: u64,
    /// Display name (defaults to `job<id>`).
    pub name: String,
    /// `"smt2"` (SMT-LIB2 Horn) or `"c"` (the mini-C frontend).
    pub format: String,
    /// The program text.
    pub program: String,
}

/// A parsed request frame.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Cache/scheduler counters.
    Stats,
    /// Stop accepting connections and exit the accept loop.
    Shutdown,
    /// One or more solve jobs (a bare `solve` is a batch of one).
    Batch(Vec<JobSpec>),
}

fn parse_job(v: &Json, default_id: u64) -> Result<JobSpec, String> {
    let id = v.get("id").and_then(Json::as_f64).map(|n| n as u64).unwrap_or(default_id);
    let program = v
        .get("program")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("job {id}: missing \"program\""))?
        .to_string();
    let format = v.get("format").and_then(Json::as_str).unwrap_or("smt2").to_string();
    if format != "smt2" && format != "c" {
        return Err(format!("job {id}: unknown format {format:?} (want \"smt2\" or \"c\")"));
    }
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| format!("job{id}"));
    Ok(JobSpec { id, name, format, program })
}

/// Parses one request frame.
///
/// # Errors
///
/// A human-readable message when the frame is not valid JSON, has no
/// known `"op"`, or a job is malformed. The server reports it in an
/// `{"op":"error"}` response rather than dropping the connection.
pub fn parse_request(text: &str) -> Result<Request, String> {
    let v = json::parse(text).map_err(|e| e.to_string())?;
    let op = v.get("op").and_then(Json::as_str).ok_or("missing \"op\"")?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "solve" => Ok(Request::Batch(vec![parse_job(&v, 0)?])),
        "batch" => {
            let Some(Json::Arr(items)) = v.get("jobs") else {
                return Err("batch: missing \"jobs\" array".to_string());
            };
            let mut jobs = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                jobs.push(parse_job(item, i as u64)?);
            }
            Ok(Request::Batch(jobs))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Renders a solve request frame (client side).
pub fn render_solve(job: &JobSpec) -> String {
    format!(
        "{{\"op\":\"solve\",\"id\":{},\"name\":{},\"format\":{},\"program\":{}}}",
        job.id,
        json_string(&job.name),
        json_string(&job.format),
        json_string(&job.program)
    )
}

/// Renders a batch request frame (client side).
pub fn render_batch(jobs: &[JobSpec]) -> String {
    let body: Vec<String> = jobs
        .iter()
        .map(|j| {
            format!(
                "{{\"id\":{},\"name\":{},\"format\":{},\"program\":{}}}",
                j.id,
                json_string(&j.name),
                json_string(&j.format),
                json_string(&j.program)
            )
        })
        .collect();
    format!("{{\"op\":\"batch\",\"jobs\":[{}]}}", body.join(","))
}

/// Renders an error response frame.
pub fn render_error(msg: &str) -> String {
    format!("{{\"op\":\"error\",\"error\":{}}}", json_string(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_round_trip() {
        let job = JobSpec {
            id: 7,
            name: "fig\"1".to_string(),
            format: "smt2".to_string(),
            program: "(set-logic HORN)\n".to_string(),
        };
        let Request::Batch(jobs) = parse_request(&render_solve(&job)).unwrap() else {
            panic!("expected batch");
        };
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, 7);
        assert_eq!(jobs[0].name, "fig\"1");
        assert_eq!(jobs[0].program, "(set-logic HORN)\n");
    }

    #[test]
    fn batch_round_trip_and_defaults() {
        let jobs = vec![
            JobSpec { id: 0, name: "a".into(), format: "smt2".into(), program: "x".into() },
            JobSpec { id: 1, name: "b".into(), format: "c".into(), program: "y".into() },
        ];
        let Request::Batch(parsed) = parse_request(&render_batch(&jobs)).unwrap() else {
            panic!("expected batch");
        };
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].format, "c");
        // Missing name/format fall back to defaults.
        let Request::Batch(j) =
            parse_request("{\"op\":\"solve\",\"program\":\"p\"}").unwrap()
        else {
            panic!("expected batch");
        };
        assert_eq!(j[0].name, "job0");
        assert_eq!(j[0].format, "smt2");
    }

    #[test]
    fn malformed_requests_are_errors() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"warp\"}").is_err());
        assert!(parse_request("{\"op\":\"solve\"}").is_err());
        assert!(parse_request("{\"op\":\"batch\"}").is_err());
        assert!(
            parse_request("{\"op\":\"solve\",\"program\":\"p\",\"format\":\"f90\"}").is_err()
        );
    }
}
