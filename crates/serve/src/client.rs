//! A blocking client for the daemon's frame protocol: connect, send
//! one request frame, read one response frame.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use linarb_trace::frame::{read_frame, write_frame};

use crate::server::BindAddr;

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to a serve daemon.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Connection failures from the underlying socket.
    pub fn connect(addr: &BindAddr) -> io::Result<Client> {
        let stream = match addr {
            BindAddr::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            BindAddr::Tcp(hostport) => Stream::Tcp(TcpStream::connect(hostport.as_str())?),
        };
        Ok(Client { stream })
    }

    /// Sends one request frame and reads the response frame.
    ///
    /// # Errors
    ///
    /// I/O failures, or `UnexpectedEof` if the daemon closes without
    /// responding.
    pub fn call(&mut self, request: &str) -> io::Result<String> {
        write_frame(&mut self.stream, request)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed without responding")
        })
    }
}
