//! `linarb serve` / `linarb client` subcommand entry points (thin
//! argument parsing over [`crate::server`] and [`crate::client`]).

use std::sync::Arc;
use std::time::Duration;

use linarb_portfolio::EngineKind;
use linarb_trace::json::{self, Json};

use crate::client::Client;
use crate::engine::{ServeConfig, ServeCore};
use crate::proto::{render_batch, JobSpec};
use crate::server::{parse_addr, serve};

const SERVE_USAGE: &str = "\
usage: linarb serve [options]

options:
  --addr <unix:PATH|tcp:HOST:PORT>  listen address
                                    (default unix:/tmp/linarb-serve.sock)
  --threads <n>                     batch pool width (default
                                    LINARB_THREADS or the machine)
  --timeout-ms <n>                  per-job budget (default 30000)
  --engine <name>                   solve with a single portfolio
                                    engine instead of the in-daemon
                                    CEGAR path (disables warm starts)
  --no-cache                        disable the invariant cache
  --no-near                         disable the near-miss tier
  --cache-cap <n>                   max cache entries (default 4096)
  --model-min                       enable countermodel minimization

the daemon prints one `ready` line once listening and exits on a
client `shutdown` request";

const CLIENT_USAGE: &str = "\
usage: linarb client [options] [file.smt2|file.c ...]

options:
  --addr <unix:PATH|tcp:HOST:PORT>  daemon address
                                    (default unix:/tmp/linarb-serve.sock)
  --op <ping|stats|shutdown>        send a control request instead of
                                    solving files

files are submitted as one batch; each result prints as
`<name> <verdict> cache=<tier> verified=<bool> wall_us=<n>`.
exit status: 0 = all verdicts definite, 2 = some unknown, 1 = error";

const DEFAULT_ADDR: &str = "unix:/tmp/linarb-serve.sock";

/// `linarb serve …` — runs the daemon until shutdown.
pub fn serve_main(args: &[String]) -> i32 {
    let mut cfg = ServeConfig::default();
    let mut addr = DEFAULT_ADDR.to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        let r: Result<(), String> = (|| {
            match arg.as_str() {
                "--help" | "-h" => Err(String::new()),
                "--addr" => {
                    addr = value("--addr")?.to_string();
                    Ok(())
                }
                "--threads" => {
                    cfg.threads = value("--threads")?
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or("bad --threads value")?;
                    Ok(())
                }
                "--timeout-ms" => {
                    let ms: u64 =
                        value("--timeout-ms")?.parse().map_err(|_| "bad --timeout-ms value")?;
                    cfg.timeout = Duration::from_millis(ms);
                    Ok(())
                }
                "--engine" => {
                    let v = value("--engine")?;
                    cfg.engine =
                        Some(EngineKind::parse(v).ok_or_else(|| format!("bad --engine `{v}`"))?);
                    Ok(())
                }
                "--no-cache" => {
                    cfg.cache = false;
                    Ok(())
                }
                "--no-near" => {
                    cfg.near = false;
                    Ok(())
                }
                "--cache-cap" => {
                    cfg.cache_cap = value("--cache-cap")?
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or("bad --cache-cap value")?;
                    Ok(())
                }
                "--model-min" => {
                    cfg.minimize_models = true;
                    Ok(())
                }
                other => Err(format!("unknown option `{other}`")),
            }
        })();
        if let Err(msg) = r {
            if msg.is_empty() {
                println!("{SERVE_USAGE}");
                return 0;
            }
            eprintln!("linarb serve: {msg}");
            eprintln!("{SERVE_USAGE}");
            return 1;
        }
    }
    let addr = match parse_addr(&addr) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("linarb serve: {msg}");
            return 1;
        }
    };
    match serve(&addr, Arc::new(ServeCore::new(cfg))) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("linarb serve: {e}");
            1
        }
    }
}

/// `linarb client …` — submits files or a control op to a daemon.
pub fn client_main(args: &[String]) -> i32 {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut op: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{CLIENT_USAGE}");
                return 0;
            }
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => {
                    eprintln!("linarb client: --addr needs a value");
                    return 1;
                }
            },
            "--op" => match it.next() {
                Some(v) if matches!(v.as_str(), "ping" | "stats" | "shutdown") => {
                    op = Some(v.clone());
                }
                Some(v) => {
                    eprintln!("linarb client: bad --op `{v}`");
                    return 1;
                }
                None => {
                    eprintln!("linarb client: --op needs a value");
                    return 1;
                }
            },
            other if other.starts_with('-') => {
                eprintln!("linarb client: unknown option `{other}`");
                eprintln!("{CLIENT_USAGE}");
                return 1;
            }
            file => files.push(file.to_string()),
        }
    }
    let addr = match parse_addr(&addr) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("linarb client: {msg}");
            return 1;
        }
    };
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("linarb client: cannot connect: {e}");
            return 1;
        }
    };

    if let Some(op) = op {
        let reply = match client.call(&format!("{{\"op\":\"{op}\"}}")) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("linarb client: {e}");
                return 1;
            }
        };
        println!("{reply}");
        return 0;
    }

    if files.is_empty() {
        eprintln!("linarb client: no files and no --op");
        eprintln!("{CLIENT_USAGE}");
        return 1;
    }
    let mut jobs = Vec::with_capacity(files.len());
    for (i, path) in files.iter().enumerate() {
        let program = match std::fs::read_to_string(path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("linarb client: cannot read {path}: {e}");
                return 1;
            }
        };
        let format = if path.ends_with(".c") { "c" } else { "smt2" };
        jobs.push(JobSpec {
            id: i as u64,
            name: path.clone(),
            format: format.to_string(),
            program,
        });
    }
    let reply = match client.call(&render_batch(&jobs)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("linarb client: {e}");
            return 1;
        }
    };
    let parsed = match json::parse(&reply) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("linarb client: bad response: {e}");
            return 1;
        }
    };
    if let Some(err) = parsed.get("error").and_then(Json::as_str) {
        eprintln!("linarb client: server error: {err}");
        return 1;
    }
    let Some(Json::Arr(results)) = parsed.get("results") else {
        eprintln!("linarb client: malformed response: {reply}");
        return 1;
    };
    let mut code = 0;
    for r in results {
        let name = r.get("name").and_then(Json::as_str).unwrap_or("?");
        let verdict = r.get("verdict").and_then(Json::as_str).unwrap_or("?");
        let tier = r.get("cache").and_then(Json::as_str).unwrap_or("?");
        let verified = matches!(r.get("verified"), Some(Json::Bool(true)));
        let wall = r.get("wall_us").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        println!("{name} {verdict} cache={tier} verified={verified} wall_us={wall}");
        match verdict {
            "sat" | "unsat" => {}
            "unknown" => code = code.max(2),
            _ => {
                if let Some(d) = r.get("detail").and_then(Json::as_str) {
                    eprintln!("linarb client: {name}: {d}");
                }
                code = 1;
            }
        }
    }
    code
}
