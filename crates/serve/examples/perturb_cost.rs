//! Manual sizing harness: cold cost of the perturb-class variants per
//! base, and whether a near-tier warm start from the cached base helps.

use std::time::{Duration, Instant};

use linarb_serve::engine::{JobInput, ServeConfig, ServeCore, Source, Tier};
use linarb_serve::replay::variant;

fn main() {
    let benches = [
        linarb_suite::fig1(),
        linarb_suite::fibo_unsafe(),
        linarb_suite::even_odd(),
        linarb_suite::cggmp2005(),
        linarb_suite::hhk2008(),
        linarb_suite::invgen_sum(),
        linarb_suite::half_counter(),
        linarb_suite::program_c_fibo(),
        linarb_suite::program_a(),
        linarb_suite::jm2006(),
    ];
    let seed = 0x1abb_5eed_u64;
    for b in &benches {
        // Cold side: no cache at all.
        let cold = ServeCore::new(ServeConfig {
            threads: 1,
            cache: false,
            timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        // Warm side: cache primed with the base solve.
        let warm = ServeCore::new(ServeConfig {
            threads: 1,
            timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        warm.submit_batch(vec![JobInput {
            id: 0,
            name: b.name.clone(),
            source: Source::System(b.system.clone()),
        }]);
        let mut cold_tot = Duration::ZERO;
        let mut warm_tot = Duration::ZERO;
        let mut tiers = Vec::new();
        for (k, i) in [0usize, 8, 16, 24].into_iter().enumerate() {
            let v = variant(&b.system, seed, i);
            let t = Instant::now();
            cold.submit_batch(vec![JobInput {
                id: 100 + k as u64,
                name: format!("{}@{i}", b.name),
                source: Source::System(v.clone()),
            }]);
            cold_tot += t.elapsed();
            let t = Instant::now();
            let out = warm.submit_batch(vec![JobInput {
                id: 200 + k as u64,
                name: format!("{}@{i}", b.name),
                source: Source::System(v),
            }]);
            warm_tot += t.elapsed();
            tiers.push(match out[0].tier {
                Tier::Exact => "E",
                Tier::Near => "N",
                Tier::Miss => "M",
                Tier::Off => "O",
            });
        }
        println!(
            "{:24} perturb cold {:>9.1}ms   near-warmed {:>9.1}ms   tiers {}",
            b.name,
            cold_tot.as_secs_f64() * 1e3 / 4.0,
            warm_tot.as_secs_f64() * 1e3 / 4.0,
            tiers.join("")
        );
    }
}
