//! Manual sizing harness for the replay driver: prints the replay
//! report for a configurable variant count (`REPLAY_VARIANTS`,
//! default 25) over the fast suite bases.

use linarb_serve::replay::{run_replay, ReplayConfig};

fn main() {
    let variants: usize = std::env::var("REPLAY_VARIANTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let bases: Vec<(String, linarb_logic::ChcSystem)> = [
        linarb_suite::fig1(),
        linarb_suite::fibo_unsafe(),
        linarb_suite::even_odd(),
        linarb_suite::cggmp2005(),
        linarb_suite::hhk2008(),
        linarb_suite::invgen_sum(),
        linarb_suite::program_c_fibo(),
        linarb_suite::jm2006(),
    ]
    .into_iter()
    .map(|b| (b.name.clone(), b.system))
    .collect();
    let cfg = ReplayConfig { variants_per_base: variants, ..ReplayConfig::default() };
    let out = run_replay(&bases, &cfg);
    println!(
        "jobs {} | warm {:.2}s ({:.0}/s, p50 {}us p99 {}us, exact {} near {} miss {} vfail {}) | \
         cold {:.2}s ({:.0}/s) | speedup {:.2}x | mismatches {} | unknown warm {} cold {}",
        out.jobs,
        out.warm.wall_s,
        out.warm.throughput,
        out.warm.p50_us,
        out.warm.p99_us,
        out.warm.exact_hits,
        out.warm.near_hits,
        out.warm.misses,
        out.warm.verify_failures,
        out.cold.wall_s,
        out.cold.throughput,
        out.speedup,
        out.mismatches,
        out.warm.unknown,
        out.cold.unknown
    );
}
