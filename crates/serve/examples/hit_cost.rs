//! Manual sizing harness: pure exact-hit cost per base (submit the
//! same system 50 times; first is a miss, rest are verified hits).

use std::time::{Duration, Instant};

use linarb_serve::engine::{JobInput, ServeConfig, ServeCore, Source};

fn main() {
    let benches = [
        linarb_suite::fig1(),
        linarb_suite::fibo_unsafe(),
        linarb_suite::even_odd(),
        linarb_suite::cggmp2005(),
        linarb_suite::hhk2008(),
        linarb_suite::invgen_sum(),
        linarb_suite::half_counter(),
        linarb_suite::program_c_fibo(),
    ];
    for b in &benches {
        let core = ServeCore::new(ServeConfig {
            threads: 1,
            timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        });
        let mk = |id: u64| JobInput {
            id,
            name: b.name.clone(),
            source: Source::System(b.system.clone()),
        };
        let t0 = Instant::now();
        core.submit_batch(vec![mk(0)]);
        let miss = t0.elapsed();
        let t1 = Instant::now();
        for id in 1..51u64 {
            let out = core.submit_batch(vec![mk(id)]);
            assert!(out[0].verified, "{}: hit not verified", b.name);
        }
        let hit = t1.elapsed() / 50;
        println!(
            "{:24} miss {:>9.3}ms   hit {:>9.3}ms",
            b.name,
            miss.as_secs_f64() * 1e3,
            hit.as_secs_f64() * 1e3
        );
    }
}
