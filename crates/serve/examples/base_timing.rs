//! Manual sizing harness: per-base cold solve cost in the serve
//! engine, with and without countermodel minimization.

use std::time::{Duration, Instant};

use linarb_serve::engine::{JobInput, ServeConfig, ServeCore, Source};

fn main() {
    let benches = [
        linarb_suite::fig1(),
        linarb_suite::program_a(),
        linarb_suite::fibo_unsafe(),
        linarb_suite::even_odd(),
        linarb_suite::cggmp2005(),
        linarb_suite::jm2006(),
        linarb_suite::hhk2008(),
        linarb_suite::invgen_sum(),
        linarb_suite::half_counter(),
        linarb_suite::program_c_fibo(),
    ];
    for minimize in [false, true] {
        println!("== minimize_models = {minimize} ==");
        let core = ServeCore::new(ServeConfig {
            cache: false,
            threads: 1,
            timeout: Duration::from_secs(30),
            minimize_models: minimize,
            ..ServeConfig::default()
        });
        for b in &benches {
            let start = Instant::now();
            let out = core.submit_batch(vec![JobInput {
                id: 0,
                name: b.name.clone(),
                source: Source::System(b.system.clone()),
            }]);
            println!("{:24} {:8} {:>8.3}s", b.name, out[0].verdict, start.elapsed().as_secs_f64());
        }
    }
}
