//! Manual helper: prints a named suite benchmark as SMT-LIB (used to
//! regenerate the checked-in `examples/*.smt2` files).

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fibo_unsafe".into());
    let all: Vec<linarb_suite::Benchmark> = linarb_suite::paper_examples()
        .into_iter()
        .chain(linarb_suite::literature_programs())
        .collect();
    match all.iter().find(|b| b.name == name) {
        Some(b) => print!("{}", b.system.to_smtlib()),
        None => {
            eprintln!("unknown benchmark `{name}`");
            std::process::exit(1);
        }
    }
}
