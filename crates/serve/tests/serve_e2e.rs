//! End-to-end tests for the serve subsystem: cache tiers, verdict
//! stability, the socket daemon, and the replay driver.

use std::sync::Arc;
use std::time::Duration;

use linarb_serve::engine::{JobInput, ServeConfig, ServeCore, Source, Tier};
use linarb_serve::client::Client;
use linarb_serve::replay::{run_replay, ReplayConfig};
use linarb_serve::server::{serve, BindAddr};
use linarb_suite::{even_odd, fibo_unsafe, fig1, Benchmark};

fn test_config() -> ServeConfig {
    ServeConfig { threads: 2, timeout: Duration::from_secs(60), ..ServeConfig::default() }
}

fn job(id: u64, b: &Benchmark) -> JobInput {
    JobInput { id, name: b.name.clone(), source: Source::System(b.system.clone()) }
}

#[test]
fn repeat_submission_is_a_verified_exact_hit() {
    let core = ServeCore::new(test_config());
    let bench = fig1();
    let first = core.submit_batch(vec![job(0, &bench)]);
    assert_eq!(first[0].verdict, "sat");
    assert_eq!(first[0].tier, Tier::Miss);
    let second = core.submit_batch(vec![job(1, &bench)]);
    assert_eq!(second[0].verdict, "sat");
    assert_eq!(second[0].tier, Tier::Exact, "same system again must hit the exact tier");
    assert!(second[0].verified, "exact hits must be re-verified before serving");
    let stats = core.stats();
    assert_eq!(stats.exact_hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.verify_failures, 0);
}

#[test]
fn unsat_verdicts_cache_and_replay() {
    let core = ServeCore::new(test_config());
    let bench = fibo_unsafe();
    let first = core.submit_batch(vec![job(0, &bench)]);
    assert_eq!(first[0].verdict, "unsat");
    let second = core.submit_batch(vec![job(1, &bench)]);
    assert_eq!(second[0].verdict, "unsat");
    assert_eq!(second[0].tier, Tier::Exact);
    assert!(second[0].verified);
}

#[test]
fn cache_disabled_never_hits() {
    let core = ServeCore::new(ServeConfig { cache: false, ..test_config() });
    let bench = fig1();
    for id in 0..2 {
        let out = core.submit_batch(vec![job(id, &bench)]);
        assert_eq!(out[0].verdict, "sat");
        assert_eq!(out[0].tier, Tier::Off);
    }
    assert_eq!(core.cache_len(), 0);
}

#[test]
fn batches_shard_across_the_pool_in_order() {
    let core = ServeCore::new(test_config());
    let benches = [fig1(), fibo_unsafe(), even_odd()];
    let jobs: Vec<JobInput> = benches.iter().enumerate().map(|(i, b)| job(i as u64, b)).collect();
    let out = core.submit_batch(jobs);
    assert_eq!(out.len(), 3);
    // Results come back in submission order regardless of completion
    // order.
    for (i, (o, b)) in out.iter().zip(benches.iter()).enumerate() {
        assert_eq!(o.id, i as u64);
        assert_eq!(o.name, b.name);
    }
    assert_eq!(out[0].verdict, "sat");
    assert_eq!(out[1].verdict, "unsat");
    assert_eq!(out[2].verdict, "sat");
}

#[test]
fn daemon_round_trip_over_unix_socket() {
    let dir = std::env::temp_dir().join(format!("linarb-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let addr = BindAddr::Unix(dir.join("daemon.sock"));
    let core = Arc::new(ServeCore::new(test_config()));
    let server_addr = addr.clone();
    let handle = std::thread::spawn(move || serve(&server_addr, core));

    // The daemon binds asynchronously; poll for the socket.
    let mut client = None;
    for _ in 0..200 {
        match Client::connect(&addr) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let mut client = client.expect("daemon did not come up");

    let pong = client.call("{\"op\":\"ping\"}").unwrap();
    assert!(pong.contains("\"ok\":true"), "bad ping reply: {pong}");

    let smt2 = fig1().system.to_smtlib();
    let req = format!(
        "{{\"op\":\"solve\",\"id\":1,\"name\":\"fig1\",\"format\":\"smt2\",\"program\":{}}}",
        linarb_trace::json_string(&smt2)
    );
    let reply = client.call(&req).unwrap();
    assert!(reply.contains("\"verdict\":\"sat\""), "bad solve reply: {reply}");
    assert!(reply.contains("\"cache\":\"miss\""), "first solve must miss: {reply}");

    // Same program again on a new connection: exact hit.
    drop(client);
    let mut client = Client::connect(&addr).unwrap();
    let reply = client.call(&req).unwrap();
    assert!(reply.contains("\"cache\":\"exact\""), "repeat must hit: {reply}");
    assert!(reply.contains("\"verified\":true"), "hit must be verified: {reply}");

    let stats = client.call("{\"op\":\"stats\"}").unwrap();
    assert!(stats.contains("\"exact_hits\":1"), "bad stats: {stats}");

    let bye = client.call("{\"op\":\"shutdown\"}").unwrap();
    assert!(bye.contains("\"ok\":true"));
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_frames_get_error_responses() {
    let dir = std::env::temp_dir().join(format!("linarb-serve-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let addr = BindAddr::Unix(dir.join("daemon.sock"));
    let core = Arc::new(ServeCore::new(test_config()));
    let server_addr = addr.clone();
    let handle = std::thread::spawn(move || serve(&server_addr, core));
    let mut client = None;
    for _ in 0..200 {
        match Client::connect(&addr) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let mut client = client.expect("daemon did not come up");
    let reply = client.call("this is not json").unwrap();
    assert!(reply.contains("\"op\":\"error\""), "bad error reply: {reply}");
    // The connection survives a bad request.
    let pong = client.call("{\"op\":\"ping\"}").unwrap();
    assert!(pong.contains("\"ok\":true"));
    client.call("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_driver_small_run_agrees_and_hits() {
    let bases: Vec<(String, linarb_logic::ChcSystem)> = [fig1(), fibo_unsafe()]
        .into_iter()
        .map(|b| (b.name.clone(), b.system))
        .collect();
    let cfg = ReplayConfig {
        variants_per_base: 12,
        threads: 2,
        timeout: Duration::from_secs(60),
        ..ReplayConfig::default()
    };
    let out = run_replay(&bases, &cfg);
    assert_eq!(out.jobs, 2 * 13);
    assert_eq!(out.mismatches, 0, "cache must never change a verdict");
    assert_eq!(out.warm.unknown, 0);
    // Rename/reorder/scale variants (7 of every 8) must hit the exact
    // tier after each base's first solve: 12 variants per base means
    // 10 exact-class ones each (indices 0 and 8 are perturbations).
    assert!(
        out.warm.exact_hits >= 20,
        "expected most mutants to exact-hit, got {} (near {}, miss {})",
        out.warm.exact_hits,
        out.warm.near_hits,
        out.warm.misses
    );
    assert_eq!(out.cold.exact_hits + out.cold.near_hits, 0, "cold side must not hit");
    assert_eq!(out.warm.verify_failures, 0);
}
