//! The programs named in the paper: Fig. 1, programs (a)–(c), the
//! SV-COMP fibonacci variant, and the recursive-category programs
//! characterized in §6 (`EvenOdd`, `recHanoi3`, `Fib2calls`, and a
//! `Prime`-inspired multiplication benchmark — the original uses a
//! `mult`/`isPrime` encoding whose essence is a recursive
//! multiplication summary).

use crate::{Benchmark, Category, Expected};

/// Fig. 1: `x=1; y=0; while(*){x+=y; y++;} assert(x>=y);`
pub fn fig1() -> Benchmark {
    Benchmark::from_mini_c(
        "fig1",
        Category::Paper,
        Expected::Safe,
        r#"
        void main() {
            int x = 1; int y = 0;
            while (*) { x = x + y; y = y + 1; }
            assert(x >= y);
        }
    "#,
    )
}

/// Program (a), Fig. 3: needs a ∨∧ invariant (the diamond).
pub fn program_a() -> Benchmark {
    Benchmark::from_mini_c(
        "program_a",
        Category::Paper,
        Expected::Safe,
        r#"
        void main() {
            int x = 0; int y = nondet();
            while (y != 0) {
                if (y < 0) { x = x - 1; y = y + 1; }
                else       { x = x + 1; y = y - 1; }
                assert(x != 0);
            }
        }
    "#,
    )
}

/// Program (b), Fig. 4: needs a Polyhedral invariant with parity.
pub fn program_b() -> Benchmark {
    Benchmark::from_mini_c(
        "program_b",
        Category::Paper,
        Expected::Safe,
        r#"
        void main() {
            int x = 0; int y = 0; int i = 0; int n = nondet();
            while (i < n) {
                i = i + 1;
                x = x + 1;
                if (i % 2 == 0) { y = y + 1; }
            }
            assert(i % 2 != 0 || x == 2 * y);
        }
    "#,
    )
}

/// Program (c), Fig. 5: recursive fibonacci, `fibo(x) >= x - 1`.
pub fn program_c_fibo() -> Benchmark {
    Benchmark::from_mini_c(
        "program_c_fibo",
        Category::Paper,
        Expected::Safe,
        r#"
        int fibo(int x) {
            if (x < 1) { return 0; }
            else { if (x == 1) { return 1; }
                   else { return fibo(x - 1) + fibo(x - 2); } }
        }
        void main() {
            int n = nondet();
            assert(fibo(n) >= n - 1);
        }
    "#,
    )
}

/// §2.3's hard SV-COMP variant: `assert(x < 9 || fibo(x) >= 34)`.
pub fn fibo_svcomp() -> Benchmark {
    Benchmark::from_mini_c(
        "fibo_svcomp",
        Category::Recursive,
        Expected::Safe,
        r#"
        int fibo(int x) {
            if (x < 1) { return 0; }
            else { if (x == 1) { return 1; }
                   else { return fibo(x - 1) + fibo(x - 2); } }
        }
        void main() {
            int x = nondet();
            assert(x < 9 || fibo(x) >= 34);
        }
    "#,
    )
}

/// An unsafe fibonacci claim (`fibo(x) >= x` fails at `x = 2`).
pub fn fibo_unsafe() -> Benchmark {
    Benchmark::from_mini_c(
        "fibo_unsafe",
        Category::Recursive,
        Expected::Unsafe,
        r#"
        int fibo(int x) {
            if (x < 1) { return 0; }
            else { if (x == 1) { return 1; }
                   else { return fibo(x - 1) + fibo(x - 2); } }
        }
        void main() {
            int x = nondet();
            assume(x > 1);
            assert(fibo(x) >= x);
        }
    "#,
    )
}

/// `EvenOdd`-style mutual recursion with a parity property.
pub fn even_odd() -> Benchmark {
    Benchmark::from_mini_c(
        "even_odd",
        Category::Recursive,
        Expected::Safe,
        r#"
        int is_even(int n) {
            if (n == 0) { return 1; }
            if (n == 1) { return 0; }
            return is_even(n - 2);
        }
        void main() {
            int n = nondet();
            assume(n >= 0);
            assume(n % 2 == 0);
            int r = is_even(n);
            assert(r == 1 || n % 2 == 1);
        }
    "#,
    )
}

/// `recHanoi3`-style: the recursive move count is positive.
pub fn rec_hanoi3() -> Benchmark {
    Benchmark::from_mini_c(
        "rec_hanoi3",
        Category::Recursive,
        Expected::Safe,
        r#"
        int hanoi(int n) {
            if (n == 1) { return 1; }
            return 2 * hanoi(n - 1) + 1;
        }
        void main() {
            int n = nondet();
            assume(n >= 1);
            int r = hanoi(n);
            assert(r >= 1);
        }
    "#,
    )
}

/// `Fib2calls`-style: two entangled recursive functions.
pub fn fib2calls() -> Benchmark {
    Benchmark::from_mini_c(
        "fib2calls",
        Category::Recursive,
        Expected::Safe,
        r#"
        int f(int x) {
            if (x < 1) { return 0; }
            return g(x - 1) + 1;
        }
        int g(int x) {
            if (x < 1) { return 0; }
            return f(x - 1) + x;
        }
        void main() {
            int n = nondet();
            assert(f(n) >= 0);
        }
    "#,
    )
}

/// `Prime`-inspired: recursive multiplication summary
/// (`mult(a,b) >= a + b - 1` for positive operands).
pub fn prime_mult() -> Benchmark {
    Benchmark::from_mini_c(
        "prime_mult",
        Category::Recursive,
        Expected::Safe,
        r#"
        int mult(int a, int b) {
            if (b <= 0) { return 0; }
            return mult(a, b - 1) + a;
        }
        void main() {
            int a = nondet(); int b = nondet();
            assume(a >= 1); assume(b >= 1);
            int n = mult(a, b);
            assert(n >= a + b - 1);
        }
    "#,
    )
}

/// McCarthy's 91 function — a classic recursive-summary benchmark.
pub fn mccarthy91() -> Benchmark {
    Benchmark::from_mini_c(
        "mccarthy91",
        Category::Recursive,
        Expected::Safe,
        r#"
        int mc(int n) {
            if (n > 100) { return n - 10; }
            return mc(mc(n + 11));
        }
        void main() {
            int n = nondet();
            assume(n <= 100);
            int r = mc(n);
            assert(r == 91);
        }
    "#,
    )
}

/// All named paper programs.
pub fn paper_examples() -> Vec<Benchmark> {
    vec![
        fig1(),
        program_a(),
        program_b(),
        program_c_fibo(),
        fibo_svcomp(),
        fibo_unsafe(),
        even_odd(),
        rec_hanoi3(),
        fib2calls(),
        prime_mult(),
        mccarthy91(),
    ]
}
