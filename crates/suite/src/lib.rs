//! Benchmark corpus for the linarb evaluation.
//!
//! The paper evaluates on suites we cannot redistribute (SV-COMP C
//! files, PIE's and DIG's test programs), so this crate re-authors the
//! *named* programs the paper discusses and generates the large
//! categories parametrically (see `DESIGN.md` §3 for the substitution
//! rationale). Each [`Benchmark`] carries its mini-C source, compiled
//! [`ChcSystem`], category, and ground-truth verdict.
//!
//! Suite entry points mirror the paper's experiments:
//!
//! * [`paper_examples`] — Fig. 1, programs (a)–(c), §6's recursive
//!   programs.
//! * [`pie82`] — 82 loop programs (Fig. 8(a)).
//! * [`dig_linear`] — linear/equation programs (Fig. 8(b)).
//! * [`chc381`] — the 381-program solver-comparison suite
//!   (Fig. 8(c) and the GPDR/Spacer/Duality table).
//! * [`svcomp135`] — loop-lit/loop-invgen/recursive subset
//!   (Fig. 8(d)).
//! * [`scalability`] — NTDriver/Product-lines/Psyco/SystemC-style
//!   generated programs (the 679-program scalability study).

mod generators;
mod literature;
mod paper;

pub use generators::{
    counter_family, diamond_family, equation_family, harder_tier, invgen_family,
    nested_family, ntdriver, phase_family, product_lines, psyco, recursive_family, systemc,
};
pub use literature::{
    cggmp2005, gj2007, gj2007_bug, gr2006, half_counter, hhk2008, invgen_sum, jm2006,
    literature_programs, sharma2011,
};
pub use paper::{
    even_odd, fib2calls, fibo_svcomp, fibo_unsafe, fig1, mccarthy91, paper_examples,
    prime_mult, program_a, program_b, program_c_fibo, rec_hanoi3,
};

use linarb_frontend::compile;
use linarb_logic::ChcSystem;

/// Ground truth of a benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expected {
    /// The assertions hold (the CHC system is satisfiable).
    Safe,
    /// Some assertion fails (the CHC system is unsatisfiable).
    Unsafe,
}

/// Benchmark category, mirroring the paper's suite names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Programs named in the paper's running text.
    Paper,
    /// PIE's 82-program suite (Fig. 8(a)).
    Pie82,
    /// DIG's linear-invariant suite (Fig. 8(b)).
    DigLinear,
    /// SV-COMP `loop-lit`.
    LoopLit,
    /// SV-COMP `loop-invgen`.
    LoopInvgen,
    /// SV-COMP `recursive-*`.
    Recursive,
    /// SV-COMP `ntdrivers`.
    NtDriver,
    /// SV-COMP `product-lines`.
    ProductLines,
    /// SV-COMP `psyco`.
    Psyco,
    /// SV-COMP `systemc`.
    SystemC,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Category::Paper => "paper",
            Category::Pie82 => "pie82",
            Category::DigLinear => "dig-linear",
            Category::LoopLit => "loop-lit",
            Category::LoopInvgen => "loop-invgen",
            Category::Recursive => "recursive",
            Category::NtDriver => "ntdrivers",
            Category::ProductLines => "product-lines",
            Category::Psyco => "psyco",
            Category::SystemC => "systemc",
        };
        write!(f, "{s}")
    }
}

/// One verification task: a program, its CHC system, and ground truth.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Unique name.
    pub name: String,
    /// Suite category.
    pub category: Category,
    /// Ground truth.
    pub expected: Expected,
    /// The compiled CHC system.
    pub system: ChcSystem,
    /// Source line count (the paper's `#L`).
    pub source_lines: usize,
    /// The mini-C source (absent for CHC-direct benchmarks); used by
    /// the differential-execution tests.
    pub source: Option<String>,
}

impl Benchmark {
    /// Compiles a mini-C source into a benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the source does not compile — benchmarks are
    /// compile-time constants of the corpus, so failures are bugs.
    pub fn from_mini_c(
        name: &str,
        category: Category,
        expected: Expected,
        src: &str,
    ) -> Benchmark {
        let prog = linarb_frontend::parse_program(src)
            .unwrap_or_else(|e| panic!("benchmark {name}: {e}"));
        let system = linarb_frontend::generate_chc(&prog)
            .unwrap_or_else(|e| panic!("benchmark {name}: {e}"));
        Benchmark {
            name: name.to_string(),
            category,
            expected,
            system,
            source_lines: prog.source_lines,
            source: Some(src.to_string()),
        }
    }

    /// Builds a benchmark directly from SMT-LIB2 HORN text.
    ///
    /// # Panics
    ///
    /// Panics if the text does not parse.
    pub fn from_chc(
        name: &str,
        category: Category,
        expected: Expected,
        text: &str,
    ) -> Benchmark {
        let system =
            linarb_logic::parse_chc(text).unwrap_or_else(|e| panic!("benchmark {name}: {e}"));
        let source_lines = text.lines().filter(|l| !l.trim().is_empty()).count();
        Benchmark {
            name: name.to_string(),
            category,
            expected,
            system,
            source_lines,
            source: None,
        }
    }

    /// The paper's per-benchmark statistics: (#L, #C, #P, #V).
    pub fn stats(&self) -> (usize, usize, usize, usize) {
        (
            self.source_lines,
            self.system.num_clauses(),
            self.system.num_preds(),
            self.system.num_vars(),
        )
    }
}

/// Verifies that a mini-C source round-trips through the compiler —
/// used by the corpus tests.
pub fn compiles(src: &str) -> bool {
    compile(src).is_ok()
}

/// The 82-program suite of Fig. 8(a) (PIE comparison): loop programs
/// whose invariants range from boxes to disjunctions.
pub fn pie82() -> Vec<Benchmark> {
    let mut out = Vec::new();
    out.extend(counter_family(22, 0xA1, Category::Pie82));
    out.extend(equation_family(12, 0xA2, Category::Pie82));
    out.extend(phase_family(16, 0xA3, Category::Pie82));
    out.extend(diamond_family(10, 0xA4, Category::Pie82));
    out.extend(nested_family(10, 0xA5, Category::Pie82));
    out.extend(invgen_family(12, 0xA6, Category::Pie82));
    debug_assert_eq!(out.len(), 82);
    rename_unique(&mut out);
    out
}

/// The DIG comparison suite of Fig. 8(b): programs where linear
/// invariants suffice — equation-shaped (DIG's strength) and
/// disjunctive (DIG's weakness).
pub fn dig_linear() -> Vec<Benchmark> {
    let mut out = Vec::new();
    out.extend(equation_family(14, 0xB1, Category::DigLinear));
    out.extend(phase_family(8, 0xB2, Category::DigLinear));
    out.extend(diamond_family(8, 0xB3, Category::DigLinear));
    rename_unique(&mut out);
    out
}

/// The 381-program suite of Fig. 8(c) and the solver-comparison
/// table: SV-COMP `loop-*`/`recursive-*` style programs plus the
/// literature's hard loops. Size is controlled by `scale`
/// (`1.0` ≈ the paper's 381).
pub fn chc381_scaled(scale: f64) -> Vec<Benchmark> {
    let n = |base: usize| ((base as f64 * scale).round() as usize).max(1);
    let mut out = Vec::new();
    out.extend(counter_family(n(90), 0xC1, Category::LoopLit));
    out.extend(equation_family(n(55), 0xC2, Category::LoopLit));
    out.extend(phase_family(n(60), 0xC3, Category::LoopInvgen));
    out.extend(diamond_family(n(45), 0xC4, Category::LoopInvgen));
    out.extend(nested_family(n(40), 0xC5, Category::LoopLit));
    out.extend(invgen_family(n(41), 0xC6, Category::LoopInvgen));
    out.extend(recursive_family(n(30), 0xC7, Category::Recursive));
    for b in paper_examples() {
        out.push(b);
    }
    for b in literature_programs() {
        out.push(b);
    }
    rename_unique(&mut out);
    out
}

/// The full-size 381-program suite.
pub fn chc381() -> Vec<Benchmark> {
    let out = chc381_scaled(1.0);
    debug_assert_eq!(out.len(), 381);
    out
}

/// The 135-program suite of Fig. 8(d): `loop-lit`, `loop-invgen` and
/// `recursive-*`.
pub fn svcomp135() -> Vec<Benchmark> {
    let mut out = Vec::new();
    out.extend(counter_family(30, 0xD1, Category::LoopLit));
    out.extend(invgen_family(25, 0xD2, Category::LoopInvgen));
    out.extend(phase_family(20, 0xD3, Category::LoopLit));
    out.extend(diamond_family(14, 0xD4, Category::LoopInvgen));
    out.extend(recursive_family(35, 0xD5, Category::Recursive));
    out.push(fibo_svcomp());
    out.push(even_odd());
    out.push(rec_hanoi3());
    out.push(fib2calls());
    out.push(prime_mult());
    out.push(mccarthy91());
    out.push(program_c_fibo());
    out.push(fibo_unsafe());
    out.push(fig1());
    out.push(program_a());
    out.push(program_b());
    debug_assert_eq!(out.len(), 135);
    rename_unique(&mut out);
    out
}

/// The scalability study (NTDriver / Product-lines / Psyco / SystemC):
/// generated programs of growing size; `sizes` controls how many
/// instances of each family.
pub fn scalability(sizes: &[usize]) -> Vec<Benchmark> {
    let mut out = Vec::new();
    for (i, &k) in sizes.iter().enumerate() {
        out.push(product_lines(k, 0xE1 + i as u64));
        out.push(psyco(k, 0xE2 + i as u64));
        out.push(systemc(k, 0xE3 + i as u64));
        out.push(ntdriver(k, 0xE4 + i as u64));
    }
    rename_unique(&mut out);
    out
}

fn rename_unique(benches: &mut [Benchmark]) {
    use std::collections::HashMap;
    let mut seen: HashMap<String, usize> = HashMap::new();
    for b in benches.iter_mut() {
        let n = seen.entry(b.name.clone()).or_insert(0);
        if *n > 0 {
            b.name = format!("{}_{}", b.name, n);
        }
        *n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_compile() {
        let all = paper_examples();
        assert_eq!(all.len(), 11);
        for b in &all {
            assert!(b.system.num_clauses() > 0, "{} has no clauses", b.name);
        }
    }

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(pie82().len(), 82);
        assert_eq!(dig_linear().len(), 30);
        assert_eq!(svcomp135().len(), 135);
        assert_eq!(chc381().len(), 381);
        assert_eq!(scalability(&[2, 4]).len(), 8);
    }

    #[test]
    fn names_are_unique() {
        for suite in [pie82(), dig_linear(), svcomp135(), chc381()] {
            let mut names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
            let total = names.len();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), total, "duplicate benchmark names");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = counter_family(5, 42, Category::LoopLit);
        let b = counter_family(5, 42, Category::LoopLit);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.system.to_smtlib(), y.system.to_smtlib());
        }
    }

    #[test]
    fn scalability_grows_with_k() {
        let small = product_lines(2, 1);
        let big = product_lines(12, 1);
        assert!(big.source_lines > small.source_lines);
        assert!(big.system.num_clauses() >= small.system.num_clauses());
        assert!(big.stats().3 > small.stats().3, "more variables in bigger programs");
    }

    #[test]
    fn mixture_of_verdicts() {
        let suite = chc381();
        let unsafe_count = suite
            .iter()
            .filter(|b| b.expected == Expected::Unsafe)
            .count();
        assert!(unsafe_count > 10, "suite needs unsafe programs, got {unsafe_count}");
        assert!(unsafe_count < suite.len() / 2);
    }
}
