//! Parametric benchmark generators for the evaluation's large
//! categories.
//!
//! Every generator is seeded and deterministic: the same call always
//! produces the same programs. Families are designed so that each
//! category keeps the property that made it hard in the paper:
//!
//! * loop programs with **disjunctive** invariants (where PDR and
//!   interpolation diverge),
//! * **equation-shaped** invariants (where DIG-style templates shine),
//! * **recursive** programs with non-linear clauses,
//! * **large sequential** programs (product lines, event loops,
//!   SystemC-style schedulers, driver harnesses) whose invariants are
//!   simple but whose clause systems are big.

use crate::{Benchmark, Category, Expected};
use linarb_testutil::XorShiftRng;

/// Bounded counter loops: `x` from `a` stepping `s` up to `n`.
/// Safe variants assert the exit window; unsafe variants assert an
/// exact landing that the step misses.
pub fn counter_family(count: usize, seed: u64, category: Category) -> Vec<Benchmark> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..count {
        let a = rng.gen_range(-5i64..=5);
        let s = rng.gen_range(1i64..=4);
        let n = a + s * rng.gen_range(3i64..=12);
        let unsafe_variant = k % 5 == 4;
        let (assert, expected) = if unsafe_variant && s > 1 {
            // landing between n and n+s-1 — asserting == n exactly is
            // wrong when the step can overshoot
            (format!("assert(x == {n} + 1);"), Expected::Unsafe)
        } else {
            (
                format!("assert(x >= {n} && x <= {n} + {s} - 1);"),
                Expected::Safe,
            )
        };
        let src = format!(
            r#"
            void main() {{
                int x = {a};
                while (x < {n}) {{ x = x + {s}; }}
                {assert}
            }}
        "#
        );
        out.push(Benchmark::from_mini_c(
            &format!("counter_{k}"),
            category,
            expected,
            &src,
        ));
    }
    out
}

/// Two-variable lockstep loops: invariants are equations
/// (`x = c·y + d`), DIG's sweet spot.
pub fn equation_family(count: usize, seed: u64, category: Category) -> Vec<Benchmark> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..count {
        let c = rng.gen_range(1i64..=3);
        let d = rng.gen_range(-3i64..=3);
        let src = format!(
            r#"
            void main() {{
                int y = 0; int x = {d};
                while (*) {{ x = x + {c}; y = y + 1; }}
                assert(x == {c} * y + {d});
            }}
        "#
        );
        out.push(Benchmark::from_mini_c(
            &format!("equation_{k}"),
            category,
            Expected::Safe,
            &src,
        ));
    }
    out
}

/// Phase/mode loops whose invariants are disjunctive: a counter walks
/// up to a threshold, then a second variable takes over.
pub fn phase_family(count: usize, seed: u64, category: Category) -> Vec<Benchmark> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..count {
        let t = rng.gen_range(3i64..=10);
        let src = format!(
            r#"
            void main() {{
                int x = 0; int y = 0;
                while (*) {{
                    if (x < {t}) {{ x = x + 1; }}
                    else {{ y = y + 1; }}
                }}
                assert(y == 0 || x >= {t});
            }}
        "#
        );
        out.push(Benchmark::from_mini_c(
            &format!("phase_{k}"),
            category,
            Expected::Safe,
            &src,
        ));
    }
    out
}

/// Diamond walks (program (a) variants): `x` steps ±1 driven by the
/// sign of `y`; invariants are genuinely ∨∧-shaped.
pub fn diamond_family(count: usize, seed: u64, category: Category) -> Vec<Benchmark> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..count {
        let bias = rng.gen_range(1i64..=3);
        let src = format!(
            r#"
            void main() {{
                int x = 0; int y = nondet();
                while (y != 0) {{
                    if (y < 0) {{ x = x - {bias}; y = y + 1; }}
                    else {{ x = x + {bias}; y = y - 1; }}
                    assert(x != 0);
                }}
            }}
        "#
        );
        out.push(Benchmark::from_mini_c(
            &format!("diamond_{k}"),
            category,
            Expected::Safe,
            &src,
        ));
    }
    out
}

/// Nested loops accumulating a non-negative quantity.
pub fn nested_family(count: usize, seed: u64, category: Category) -> Vec<Benchmark> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..count {
        let step = rng.gen_range(1i64..=3);
        let src = format!(
            r#"
            void main() {{
                int i = 0; int s = 0; int n = nondet();
                while (i < n) {{
                    int j = 0;
                    while (j < i) {{ s = s + {step}; j = j + 1; }}
                    i = i + 1;
                }}
                assert(s >= 0);
            }}
        "#
        );
        out.push(Benchmark::from_mini_c(
            &format!("nested_{k}"),
            category,
            Expected::Safe,
            &src,
        ));
    }
    out
}

/// Recursive functions: linear-summary recursion (sum, double, count)
/// plus some unsafe claims.
pub fn recursive_family(count: usize, seed: u64, category: Category) -> Vec<Benchmark> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..count {
        let c = rng.gen_range(1i64..=3);
        let unsafe_variant = k % 6 == 5;
        let (claim, expected) = if unsafe_variant {
            (format!("assert(r >= {c} * n + 1);"), Expected::Unsafe)
        } else {
            (format!("assert(r >= {c} * n || n < 0);"), Expected::Safe)
        };
        let src = format!(
            r#"
            int acc(int n) {{
                if (n <= 0) {{ return 0; }}
                return acc(n - 1) + {c};
            }}
            void main() {{
                int n = nondet();
                assume(n >= 0);
                int r = acc(n);
                {claim}
            }}
        "#
        );
        out.push(Benchmark::from_mini_c(
            &format!("recursive_{k}"),
            category,
            expected,
            &src,
        ));
    }
    out
}

/// Assume-guided range programs (loop-invgen style).
pub fn invgen_family(count: usize, seed: u64, category: Category) -> Vec<Benchmark> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..count {
        let lo = rng.gen_range(-4i64..=0);
        let hi = rng.gen_range(4i64..=9);
        let src = format!(
            r#"
            void main() {{
                int x = nondet(); int y = nondet();
                assume(x >= {lo} && x <= {hi});
                assume(y >= x);
                while (x < {hi}) {{ x = x + 1; y = y + 1; }}
                assert(y >= x);
            }}
        "#
        );
        out.push(Benchmark::from_mini_c(
            &format!("invgen_{k}"),
            category,
            Expected::Safe,
            &src,
        ));
    }
    out
}

/// The harder tier: adversarial instances aimed at the portfolio race,
/// each constructed so the CEGAR sampler is at a structural
/// disadvantage while some *other* engine in the default race set has
/// a shortcut. Three shapes:
///
/// * **Wide-bound counters** — the separating constant sits five
///   orders of magnitude beyond any state sampling can reach, so
///   hyperplane search wanders; PDR lifts the bound straight off the
///   loop guard as an inductive lemma.
/// * **Deep bugs** — the violation only manifests `n` steps in; BMC's
///   iterative deepening walks straight to it, while the CEGAR loop
///   has to grow its sample-derivation forest one refinement at a
///   time.
/// * **Multi-variable equations** — exact affine invariants over three
///   lockstep variables, DIG's template sweet spot and the worst case
///   for margin-based separation (every sample lies *on* the target
///   plane).
pub fn harder_tier(seed: u64) -> Vec<Benchmark> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 0..2 {
        let n = 100_000 + rng.gen_range(0i64..=9) * 10_000;
        let src = format!(
            r#"
            void main() {{
                int x = 0;
                while (x < {n}) {{ x = x + 1; }}
                assert(x <= {n});
            }}
        "#
        );
        out.push(Benchmark::from_mini_c(
            &format!("hard_wide_{k}"),
            Category::LoopLit,
            Expected::Safe,
            &src,
        ));
    }
    for k in 0..2 {
        let n = 24 + rng.gen_range(0i64..=8) * 4;
        let src = format!(
            r#"
            void main() {{
                int x = 0;
                while (*) {{ x = x + 1; assert(x != {n}); }}
            }}
        "#
        );
        out.push(Benchmark::from_mini_c(
            &format!("hard_deep_{k}"),
            Category::LoopLit,
            Expected::Unsafe,
            &src,
        ));
    }
    for k in 0..2 {
        let a = rng.gen_range(2i64..=5);
        let b = a + rng.gen_range(1i64..=3);
        let d = rng.gen_range(-3i64..=3);
        let src = format!(
            r#"
            void main() {{
                int x = {d}; int y = 0; int z = 0;
                while (*) {{
                    if (*) {{ x = x + {a}; y = y + 1; }}
                    else {{ x = x + {b}; z = z + 1; }}
                }}
                assert(x == {a} * y + {b} * z + {d});
            }}
        "#
        );
        out.push(Benchmark::from_mini_c(
            &format!("hard_equation_{k}"),
            Category::DigLinear,
            Expected::Safe,
            &src,
        ));
    }
    out
}

/// Product-line style: a controller loop over `k` optional features,
/// each guarded by a 0/1 configuration variable. Program size grows
/// linearly with `k`; the invariant stays simple.
pub fn product_lines(k: usize, seed: u64) -> Benchmark {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let mut decls = String::new();
    let mut body = String::new();
    for i in 0..k {
        decls.push_str(&format!(
            "int f{i} = nondet(); assume(f{i} >= 0 && f{i} <= 1);\n"
        ));
        let w = rng.gen_range(1i64..=3);
        body.push_str(&format!(
            "if (f{i} == 1) {{ if (credit > 0) {{ credit = credit - 1; used = used + {w}; }} }}\n"
        ));
    }
    let src = format!(
        r#"
        void main() {{
            {decls}
            int credit = {k}; int used = 0;
            while (*) {{
                {body}
                if (credit == 0) {{ credit = {k}; used = 0; }}
            }}
            assert(credit >= 0);
        }}
    "#
    );
    Benchmark::from_mini_c(
        &format!("product_lines_{k}"),
        Category::ProductLines,
        Expected::Safe,
        &src,
    )
}

/// Psyco-style event loop: an integer state machine with `k` states
/// and nondeterministic events.
pub fn psyco(k: usize, seed: u64) -> Benchmark {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    let mut body = String::new();
    for i in 0..k {
        let next = rng.gen_range(0..k as i64);
        body.push_str(&format!(
            "if (state == {i}) {{ if (*) {{ state = {next}; }} else {{ state = {}; }} }}\n",
            (i as i64 + 1) % k as i64
        ));
    }
    let src = format!(
        r#"
        void main() {{
            int state = 0;
            while (*) {{
                {body}
            }}
            assert(state >= 0 && state <= {});
        }}
    "#,
        k as i64 - 1
    );
    Benchmark::from_mini_c(&format!("psyco_{k}"), Category::Psyco, Expected::Safe, &src)
}

/// SystemC-style round-robin scheduler with `k` process counters.
/// The program grows with `k` but the safety property stays simple
/// (scheduler bounds), matching the paper's observation that the big
/// SV-COMP programs have easy disjunctive invariants.
pub fn systemc(k: usize, _seed: u64) -> Benchmark {
    let mut decls = String::new();
    let mut body = String::new();
    for i in 0..k {
        decls.push_str(&format!("int c{i} = 0;\n"));
        body.push_str(&format!(
            "if (turn == {i}) {{ c{i} = c{i} + 1; total = total + 1; }}\n"
        ));
    }
    let src = format!(
        r#"
        void main() {{
            {decls}
            int turn = 0; int total = 0;
            while (*) {{
                {body}
                turn = turn + 1;
                if (turn >= {k}) {{ turn = 0; }}
            }}
            assert(turn >= 0 && turn <= {k});
        }}
    "#
    );
    Benchmark::from_mini_c(
        &format!("systemc_{k}"),
        Category::SystemC,
        Expected::Safe,
        &src,
    )
}

/// NT-driver style: a lock/flag protocol harness.
pub fn ntdriver(k: usize, _seed: u64) -> Benchmark {
    let mut body = String::new();
    for i in 0..k {
        body.push_str(&format!(
            r#"
            if (*) {{
                assume(held == 0);
                held = 1; owner = {i};
            }}
            if (held == 1 && owner == {i}) {{
                if (*) {{ held = 0; releases = releases + 1; }}
            }}
        "#
        ));
    }
    let src = format!(
        r#"
        void main() {{
            int held = 0; int owner = 0 - 1; int releases = 0; int acquires = 0;
            while (*) {{
                {body}
                assert(held == 0 || held == 1);
            }}
            assert(releases >= 0);
        }}
    "#
    );
    Benchmark::from_mini_c(
        &format!("ntdriver_{k}"),
        Category::NtDriver,
        Expected::Safe,
        &src,
    )
}
