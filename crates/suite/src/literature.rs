//! Hand-written benchmarks from the loop-invariant literature — the
//! "additional complicated loop programs from our related work
//! (e.g. [8, 14, 29])" that §6 mentions: classic programs from
//! InvGen [14], abductive inference [8], and the data-driven
//! precondition papers.

use crate::{Benchmark, Category, Expected};

/// Gulwani–Jojic style two-phase counter (`gj2007`).
pub fn gj2007() -> Benchmark {
    Benchmark::from_mini_c(
        "gj2007",
        Category::LoopLit,
        Expected::Safe,
        r#"
        void main() {
            int x = 0; int y = 50;
            while (x < 100) {
                if (x < 50) { x = x + 1; }
                else { x = x + 1; y = y + 1; }
            }
            assert(y == 100);
        }
    "#,
    )
}

/// Costan–Gaubert–Goubault–Martel–Putot style bouncing counter.
pub fn cggmp2005() -> Benchmark {
    Benchmark::from_mini_c(
        "cggmp2005",
        Category::LoopLit,
        Expected::Safe,
        r#"
        void main() {
            int i = 1; int j = 10;
            while (j >= i) {
                i = i + 2;
                j = j - 1;
            }
            assert(j == 6);
        }
    "#,
    )
}

/// Gopan–Reps phased loop (`gr2006`): needs a disjunctive invariant.
pub fn gr2006() -> Benchmark {
    Benchmark::from_mini_c(
        "gr2006",
        Category::LoopLit,
        Expected::Safe,
        r#"
        void main() {
            int x = 0; int y = 0;
            while (*) {
                if (x <= 50) { y = y + 1; }
                else { y = y - 1; }
                if (y < 0) { assert(x == 102); }
                else { x = x + 1; }
            }
        }
    "#,
    )
}

/// Jhala–McMillan style lock-step counters (`jm2006`).
pub fn jm2006() -> Benchmark {
    Benchmark::from_mini_c(
        "jm2006",
        Category::LoopInvgen,
        Expected::Safe,
        r#"
        void main() {
            int i = nondet(); int j = nondet();
            assume(i >= 0 && j >= 0);
            int x = i; int y = j;
            while (x != 0) {
                x = x - 1;
                y = y - 1;
            }
            if (i == j) { assert(y == 0); }
        }
    "#,
    )
}

/// InvGen's `sum1` style accumulation with bound.
pub fn invgen_sum() -> Benchmark {
    Benchmark::from_mini_c(
        "invgen_sum",
        Category::LoopInvgen,
        Expected::Safe,
        r#"
        void main() {
            int n = nondet(); int i = 0; int sum = 0;
            assume(n >= 0);
            while (i < n) {
                sum = sum + i;
                i = i + 1;
            }
            assert(sum >= 0);
        }
    "#,
    )
}

/// The `hhk2008` adaptation: simultaneous bounded increments.
pub fn hhk2008() -> Benchmark {
    Benchmark::from_mini_c(
        "hhk2008",
        Category::LoopLit,
        Expected::Safe,
        r#"
        void main() {
            int a = nondet(); int b = nondet();
            assume(a <= 1000000 && b >= 0 && b <= 1000000);
            int res = a; int cnt = b;
            while (cnt > 0) {
                cnt = cnt - 1;
                res = res + 1;
            }
            assert(res == a + b);
        }
    "#,
    )
}

/// Sharma et al.'s motivating split loop (`sharma2011`): one loop, two
/// phases, invariant needs a disjunction.
pub fn sharma2011() -> Benchmark {
    Benchmark::from_mini_c(
        "sharma2011",
        Category::LoopLit,
        Expected::Safe,
        r#"
        void main() {
            int x = 0; int y = 0;
            while (*) {
                if (x < 50) { y = y + 1; }
                else { y = y - 1; }
                x = x + 1;
            }
            assert(x < 50 || y >= 0 - 1000000);
        }
    "#,
    )
}

/// A "half" benchmark: counting every other iteration; needs parity.
pub fn half_counter() -> Benchmark {
    Benchmark::from_mini_c(
        "half_counter",
        Category::LoopLit,
        Expected::Safe,
        r#"
        void main() {
            int i = 0; int k = 0; int n = nondet();
            assume(n >= 0);
            while (i < 2 * n) {
                if (i % 2 == 0) { k = k + 1; }
                i = i + 1;
            }
            assert(k >= 0);
        }
    "#,
    )
}

/// An unsafe literature variant: `gj2007` with an off-by-one claim.
pub fn gj2007_bug() -> Benchmark {
    Benchmark::from_mini_c(
        "gj2007_bug",
        Category::LoopLit,
        Expected::Unsafe,
        r#"
        void main() {
            int x = 0; int y = 50;
            while (x < 100) {
                if (x < 50) { x = x + 1; }
                else { x = x + 1; y = y + 1; }
            }
            assert(y == 101);
        }
    "#,
    )
}

/// All literature-named benchmarks.
pub fn literature_programs() -> Vec<Benchmark> {
    vec![
        gj2007(),
        cggmp2005(),
        gr2006(),
        jm2006(),
        invgen_sum(),
        hhk2008(),
        sharma2011(),
        half_counter(),
        gj2007_bug(),
    ]
}
