//! Property tests: the SMT solver agrees with brute-force evaluation
//! on random small formulas, and its models always satisfy the input.

use linarb_arith::int;
use linarb_logic::{Atom, Formula, LinExpr, Model, Var};
use linarb_smt::{check_sat, Budget, SmtResult};
use proptest::prelude::*;

const NVARS: u32 = 3;
const GRID: i64 = 4; // brute-force grid [-GRID, GRID]^NVARS

fn arb_atom() -> impl Strategy<Value = Formula> {
    (
        prop::collection::vec(-3i64..=3, NVARS as usize),
        -6i64..=6,
    )
        .prop_map(|(coeffs, k)| {
            let e = LinExpr::from_terms(
                coeffs
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| (Var::from_index(i as u32), int(c))),
                int(0),
            );
            Formula::from(Atom::le(e, LinExpr::constant(int(k))))
        })
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    arb_atom().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Formula::and),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Formula::or),
            inner.prop_map(Formula::not),
        ]
    })
}

fn grid_models(f: &Formula) -> Option<Model> {
    let mut point = [0i64; NVARS as usize];
    fn rec(f: &Formula, idx: usize, point: &mut [i64; NVARS as usize]) -> Option<Model> {
        if idx == NVARS as usize {
            let m: Model = point
                .iter()
                .enumerate()
                .map(|(i, &v)| (Var::from_index(i as u32), int(v)))
                .collect();
            return if f.eval(&m) { Some(m) } else { None };
        }
        for v in -GRID..=GRID {
            point[idx] = v;
            if let Some(m) = rec(f, idx + 1, point) {
                return Some(m);
            }
        }
        None
    }
    rec(f, 0, &mut point)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn models_satisfy_formula(f in arb_formula()) {
        if let SmtResult::Sat(m) = check_sat(&f, &Budget::unlimited()) {
            prop_assert!(f.eval(&m), "returned model must satisfy the formula: {f} with {m:?}");
        }
    }

    #[test]
    fn grid_witness_implies_sat(f in arb_formula()) {
        if grid_models(&f).is_some() {
            let r = check_sat(&f, &Budget::unlimited());
            prop_assert!(
                r.is_sat(),
                "brute force found a model inside the grid but solver said {r:?} for {f}"
            );
        }
    }

    #[test]
    fn unsat_means_no_grid_witness(f in arb_formula()) {
        if check_sat(&f, &Budget::unlimited()).is_unsat() {
            prop_assert!(
                grid_models(&f).is_none(),
                "solver said unsat but the grid contains a model of {f}"
            );
        }
    }

    #[test]
    fn double_negation_preserves_verdict(f in arb_formula()) {
        let g = Formula::not(Formula::not(f.clone()));
        let rf = check_sat(&f, &Budget::unlimited());
        let rg = check_sat(&g, &Budget::unlimited());
        prop_assert_eq!(rf.is_sat(), rg.is_sat());
        prop_assert_eq!(rf.is_unsat(), rg.is_unsat());
    }
}
