//! Property tests: the SMT solver agrees with brute-force evaluation
//! on random small formulas, and its models always satisfy the input.

use linarb_arith::int;
use linarb_logic::{Atom, Formula, LinExpr, Model, Var};
use linarb_smt::{check_sat, Budget, SmtResult};
use linarb_testutil::{cases, XorShiftRng};

const NVARS: u32 = 3;
const GRID: i64 = 4; // brute-force grid [-GRID, GRID]^NVARS
const CASES: u64 = 128;

fn rand_atom(rng: &mut XorShiftRng) -> Formula {
    let e = LinExpr::from_terms(
        (0..NVARS).map(|i| (Var::from_index(i), int(rng.gen_range(-3i64..=3)))),
        int(0),
    );
    let k = rng.gen_range(-6i64..=6);
    Formula::from(Atom::le(e, LinExpr::constant(int(k))))
}

fn rand_formula(rng: &mut XorShiftRng, depth: u32) -> Formula {
    if depth == 0 || rng.gen_bool(0.3) {
        return rand_atom(rng);
    }
    match rng.gen_range(0u32..3) {
        0 => {
            let n = rng.gen_range(1usize..4);
            Formula::and((0..n).map(|_| rand_formula(rng, depth - 1)).collect())
        }
        1 => {
            let n = rng.gen_range(1usize..4);
            Formula::or((0..n).map(|_| rand_formula(rng, depth - 1)).collect())
        }
        _ => Formula::not(rand_formula(rng, depth - 1)),
    }
}

fn grid_models(f: &Formula) -> Option<Model> {
    let mut point = [0i64; NVARS as usize];
    fn rec(f: &Formula, idx: usize, point: &mut [i64; NVARS as usize]) -> Option<Model> {
        if idx == NVARS as usize {
            let m: Model = point
                .iter()
                .enumerate()
                .map(|(i, &v)| (Var::from_index(i as u32), int(v)))
                .collect();
            return if f.eval(&m) { Some(m) } else { None };
        }
        for v in -GRID..=GRID {
            point[idx] = v;
            if let Some(m) = rec(f, idx + 1, point) {
                return Some(m);
            }
        }
        None
    }
    rec(f, 0, &mut point)
}

#[test]
fn models_satisfy_formula() {
    cases(CASES, 0xD001, |rng| {
        let f = rand_formula(rng, 3);
        if let SmtResult::Sat(m) = check_sat(&f, &Budget::unlimited()) {
            assert!(f.eval(&m), "returned model must satisfy the formula: {f} with {m:?}");
        }
    });
}

#[test]
fn grid_witness_implies_sat() {
    cases(CASES, 0xD002, |rng| {
        let f = rand_formula(rng, 3);
        if grid_models(&f).is_some() {
            let r = check_sat(&f, &Budget::unlimited());
            assert!(
                r.is_sat(),
                "brute force found a model inside the grid but solver said {r:?} for {f}"
            );
        }
    });
}

#[test]
fn unsat_means_no_grid_witness() {
    cases(CASES, 0xD003, |rng| {
        let f = rand_formula(rng, 3);
        if check_sat(&f, &Budget::unlimited()).is_unsat() {
            assert!(
                grid_models(&f).is_none(),
                "solver said unsat but the grid contains a model of {f}"
            );
        }
    });
}

#[test]
fn double_negation_preserves_verdict() {
    cases(CASES, 0xD004, |rng| {
        let f = rand_formula(rng, 3);
        let g = Formula::not(Formula::not(f.clone()));
        let rf = check_sat(&f, &Budget::unlimited());
        let rg = check_sat(&g, &Budget::unlimited());
        assert_eq!(rf.is_sat(), rg.is_sat());
        assert_eq!(rf.is_unsat(), rg.is_unsat());
    });
}
