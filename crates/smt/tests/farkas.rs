//! Property tests for Farkas certificates: every certificate returned
//! by `check_conjunction` must be a genuine positive combination of
//! the input atoms whose variable coefficients cancel and whose
//! constant is a contradiction.

use linarb_arith::{int, BigRational};
use linarb_logic::{Atom, LinExpr, Var};
use linarb_smt::{check_conjunction, BoundKind, Budget, ConjunctionResult};
use linarb_testutil::{cases, XorShiftRng};

const DIM: usize = 3;
const CASES: u64 = 192;

fn rand_atoms(rng: &mut XorShiftRng) -> Vec<Atom> {
    let n = rng.gen_range(2usize..10);
    (0..n)
        .map(|_| {
            let e = LinExpr::from_terms(
                (0..DIM).map(|i| (Var::from_index(i as u32), int(rng.gen_range(-4i64..=4)))),
                int(0),
            );
            Atom::le(e, LinExpr::constant(int(rng.gen_range(-10i64..=10))))
        })
        .collect()
}

#[test]
fn certificates_are_valid_combinations() {
    cases(CASES, 0xE001, |rng| {
        let atoms = rand_atoms(rng);
        match check_conjunction(&atoms, &Budget::unlimited()) {
            ConjunctionResult::Sat(m) => {
                // the model must satisfy every atom
                for a in &atoms {
                    assert!(a.holds(&m), "{a} fails under {m:?}");
                }
            }
            ConjunctionResult::Unsat { core, farkas } => {
                // An empty core with no certificate is the documented
                // branch-and-bound-only verdict ("whole conjunction");
                // certificates, when present, must be valid.
                let _ = core;
                if let Some(cert) = farkas {
                    // Reconstruct Σ mᵢ·eᵢ: variables must cancel and
                    // the constant must be strictly positive
                    // (eᵢ ≤ 0 summed with positive multipliers cannot
                    // exceed 0 — a positive constant is the
                    // contradiction).
                    let mut combo_num = vec![BigRational::zero(); DIM];
                    let mut konst = BigRational::zero();
                    for entry in &cert.entries {
                        assert!(entry.multiplier.is_positive());
                        // entries reference atoms by tag; both bound
                        // kinds refer to the same inequality e ≤ 0.
                        let atom = &atoms[entry.tag];
                        let _ = BoundKind::Upper;
                        let e = atom.expr();
                        for d in 0..DIM {
                            let c = e.coeff(Var::from_index(d as u32));
                            combo_num[d] = &combo_num[d]
                                + &(&entry.multiplier * &BigRational::from(c));
                        }
                        konst = &konst
                            + &(&entry.multiplier * &BigRational::from(e.constant_term()));
                    }
                    for (d, c) in combo_num.iter().enumerate() {
                        assert!(c.is_zero(), "coefficient of x{d} must cancel, got {c}");
                    }
                    assert!(
                        konst.is_positive(),
                        "certificate constant must witness the contradiction, got {konst}"
                    );
                }
            }
            ConjunctionResult::Unknown => {}
        }
    });
}

#[test]
fn cores_are_themselves_unsat() {
    cases(CASES, 0xE002, |rng| {
        let atoms = rand_atoms(rng);
        if let ConjunctionResult::Unsat { core, farkas: Some(_) } =
            check_conjunction(&atoms, &Budget::unlimited())
        {
            let subset: Vec<Atom> = core.iter().map(|&i| atoms[i].clone()).collect();
            let again = check_conjunction(&subset, &Budget::unlimited());
            assert!(
                matches!(again, ConjunctionResult::Unsat { .. }),
                "the reported core must itself be unsatisfiable"
            );
        }
    });
}
