//! Property tests for Farkas certificates: every certificate returned
//! by `check_conjunction` must be a genuine positive combination of
//! the input atoms whose variable coefficients cancel and whose
//! constant is a contradiction.

use linarb_arith::{int, BigRational};
use linarb_logic::{Atom, LinExpr, Var};
use linarb_smt::{check_conjunction, BoundKind, Budget, ConjunctionResult};
use proptest::prelude::*;

const DIM: usize = 3;

fn arb_atoms() -> impl Strategy<Value = Vec<Atom>> {
    prop::collection::vec(
        (
            prop::collection::vec(-4i64..=4, DIM),
            -10i64..=10,
        ),
        2..10,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(w, c)| {
                let e = LinExpr::from_terms(
                    w.into_iter()
                        .enumerate()
                        .map(|(i, a)| (Var::from_index(i as u32), int(a))),
                    int(0),
                );
                Atom::le(e, LinExpr::constant(int(c)))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn certificates_are_valid_combinations(atoms in arb_atoms()) {
        match check_conjunction(&atoms, &Budget::unlimited()) {
            ConjunctionResult::Sat(m) => {
                // the model must satisfy every atom
                for a in &atoms {
                    prop_assert!(a.holds(&m), "{a} fails under {m:?}");
                }
            }
            ConjunctionResult::Unsat { core, farkas } => {
                // An empty core with no certificate is the documented
                // branch-and-bound-only verdict ("whole conjunction");
                // certificates, when present, must be valid.
                let _ = core;
                if let Some(cert) = farkas {
                    // Reconstruct Σ mᵢ·eᵢ: variables must cancel and
                    // the constant must be strictly positive
                    // (eᵢ ≤ 0 summed with positive multipliers cannot
                    // exceed 0 — a positive constant is the
                    // contradiction).
                    let mut combo_num = vec![BigRational::zero(); DIM];
                    let mut konst = BigRational::zero();
                    for entry in &cert.entries {
                        prop_assert!(entry.multiplier.is_positive());
                        // entries reference atoms by tag; both bound
                        // kinds refer to the same inequality e ≤ 0.
                        let atom = &atoms[entry.tag];
                        let _ = BoundKind::Upper;
                        let e = atom.expr();
                        for d in 0..DIM {
                            let c = e.coeff(Var::from_index(d as u32));
                            combo_num[d] = &combo_num[d]
                                + &(&entry.multiplier * &BigRational::from(c));
                        }
                        konst = &konst
                            + &(&entry.multiplier * &BigRational::from(e.constant_term()));
                    }
                    for (d, c) in combo_num.iter().enumerate() {
                        prop_assert!(c.is_zero(), "coefficient of x{d} must cancel, got {c}");
                    }
                    prop_assert!(
                        konst.is_positive(),
                        "certificate constant must witness the contradiction, got {konst}"
                    );
                }
            }
            ConjunctionResult::Unknown => {}
        }
    }

    #[test]
    fn cores_are_themselves_unsat(atoms in arb_atoms()) {
        if let ConjunctionResult::Unsat { core, farkas: Some(_) } =
            check_conjunction(&atoms, &Budget::unlimited())
        {
            let subset: Vec<Atom> = core.iter().map(|&i| atoms[i].clone()).collect();
            let again = check_conjunction(&subset, &Budget::unlimited());
            prop_assert!(
                matches!(again, ConjunctionResult::Unsat { .. }),
                "the reported core must itself be unsatisfiable"
            );
        }
    }
}
