//! Online DPLL(T) bridge: connects the CDCL core's theory hook
//! ([`linarb_sat::TheoryHook`]) to the LIA theory context through its
//! push/pop trail.
//!
//! The offline loop this replaces tore the theory down after every
//! complete boolean assignment and re-solved the SAT instance from the
//! top. Here the theory context is long-lived: every candidate
//! assignment is judged inside the SAT search under a backtrack mark,
//! theory conflicts become learned clauses on the spot (the search
//! backjumps instead of restarting), and the simplex tableau — rows,
//! interned slack columns, and the current basis — stays warm from one
//! frame to the next.

use crate::budget::Budget;
use crate::theory::{TheoryLia, TheoryVerdict};
use linarb_logic::{Atom, Model};
use linarb_sat::{BVar, Lit, SatSolver, TheoryHook, TheoryResponse};

/// The literal↔atom bridge handed to [`SatSolver::solve_with_theory`].
///
/// At every complete boolean assignment it pushes a theory frame,
/// asserts the induced atom polarities in variable-index order (the
/// index doubling as the theory tag), asks for a verdict, and pops the
/// frame — leaving the tableau warm for the next frame.
pub(crate) struct LiaHook<'a> {
    theory: &'a mut TheoryLia,
    /// Atom ↔ boolean-variable map fixing the assertion order; the
    /// slice index is the theory tag, so cores map back to literals.
    atoms: &'a [(Atom, BVar)],
    budget: &'a Budget,
    /// Model of the accepted assignment, when the search ends `Sat`.
    pub(crate) model: Option<Model>,
    /// Blocking clause for an assignment the theory abandoned
    /// (`Unknown`): the outer loop installs it (guarded by a call
    /// literal in incremental use) and re-solves.
    pub(crate) abandoned: Option<Vec<Lit>>,
    /// Set when the budget tripped before the theory was consulted.
    pub(crate) budget_stop: bool,
    /// Complete assignments judged by the theory in this search.
    pub(crate) models_checked: u64,
}

impl<'a> LiaHook<'a> {
    pub(crate) fn new(
        theory: &'a mut TheoryLia,
        atoms: &'a [(Atom, BVar)],
        budget: &'a Budget,
    ) -> LiaHook<'a> {
        LiaHook {
            theory,
            atoms,
            budget,
            model: None,
            abandoned: None,
            budget_stop: false,
            models_checked: 0,
        }
    }
}

impl TheoryHook for LiaHook<'_> {
    fn check_model(&mut self, sat: &SatSolver) -> TheoryResponse {
        if self.budget.exhausted() {
            self.budget_stop = true;
            return TheoryResponse::Pause;
        }
        self.models_checked += 1;
        let mark = self.theory.set_backtrack_point();
        // True literal of each atom under the current assignment, in
        // tag order; cores index into this.
        let mut lits: Vec<Lit> = Vec::with_capacity(self.atoms.len());
        let mut early: Option<Vec<usize>> = None;
        for (tag, (a, v)) in self.atoms.iter().enumerate() {
            let value = sat.value(*v).expect("full assignment");
            lits.push(v.lit(value));
            let atom = if value { a.clone() } else { a.negate() };
            if let Err(c) = self.theory.assert_atom(&atom, tag) {
                early = Some(c.core());
                break;
            }
        }
        let response = match early {
            Some(core) => {
                TheoryResponse::Conflict(core.iter().map(|&t| lits[t].negated()).collect())
            }
            None => match self.theory.check(self.budget) {
                TheoryVerdict::Feasible(m) => {
                    self.model = Some(m);
                    TheoryResponse::Sat
                }
                TheoryVerdict::Unknown => {
                    self.abandoned = Some(lits.iter().map(|l| l.negated()).collect());
                    TheoryResponse::Pause
                }
                TheoryVerdict::Infeasible { core, .. } => {
                    let clause: Vec<Lit> = if core.is_empty() {
                        lits.iter().map(|l| l.negated()).collect()
                    } else {
                        core.iter().map(|&t| lits[t].negated()).collect()
                    };
                    if clause.is_empty() {
                        // No theory atoms at all yet "infeasible" —
                        // cannot happen (the empty conjunction is
                        // feasible); pause defensively rather than
                        // fabricate an empty conflict.
                        self.abandoned = Some(Vec::new());
                        TheoryResponse::Pause
                    } else {
                        TheoryResponse::Conflict(clause)
                    }
                }
            },
        };
        self.theory.backtrack_to(mark);
        response
    }
}

/// Whether the retained offline (rebuild-per-model) oracle is forced
/// via the `LINARB_SMT_OFFLINE` environment variable. Read once per
/// process; CI runs the whole suite under both oracle paths with it.
pub(crate) fn offline_mode() -> bool {
    static OFFLINE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *OFFLINE.get_or_init(|| {
        std::env::var("LINARB_SMT_OFFLINE")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}
