//! A lazy DPLL(T) SMT solver for quantifier-free linear integer
//! arithmetic (QF_LIA).
//!
//! This crate plays the role Z3 plays in the paper: it provides the
//! three oracle operations Algorithm 3 relies on —
//!
//! * `Z3Check`  → [`is_valid`] / [`check_sat`]
//! * `Z3Model`  → [`SmtResult::Sat`] carries a [`Model`]
//! * `Z3Eval`   → [`linarb_logic::LinExpr::eval`] under that model
//!
//! plus conjunction-level checks with **Farkas certificates**
//! ([`check_conjunction`]) that the baseline solvers use for unsat
//! cores and interpolation.
//!
//! Architecture: formulas are Tseitin-encoded into the CDCL solver
//! from `linarb-sat`; full boolean assignments are checked by an exact
//! rational simplex with branch-and-bound for integrality
//! ([`TheoryLia`]); theory conflicts come back as blocking clauses.
//!
//! # Examples
//!
//! ```
//! use linarb_arith::int;
//! use linarb_logic::{Atom, Formula, LinExpr, Var};
//! use linarb_smt::{check_sat, Budget, SmtResult};
//!
//! let x = Var::from_index(0);
//! // (x <= 0 \/ x >= 10) /\ x >= 5
//! let f = Formula::and(vec![
//!     Formula::or(vec![
//!         Formula::from(Atom::le(LinExpr::var(x), LinExpr::constant(int(0)))),
//!         Formula::from(Atom::ge(LinExpr::var(x), LinExpr::constant(int(10)))),
//!     ]),
//!     Formula::from(Atom::ge(LinExpr::var(x), LinExpr::constant(int(5)))),
//! ]);
//! match check_sat(&f, &Budget::unlimited()) {
//!     SmtResult::Sat(m) => assert!(m.value(x) >= int(10)),
//!     other => panic!("expected sat, got {other:?}"),
//! }
//! ```

mod budget;
mod incremental;
mod online;
pub mod simplex;
mod theory;
mod tseitin;

pub use budget::{Budget, CancelToken};
pub use incremental::{find_countermodel_incremental, IncrementalSolver};
pub use linarb_sat::Lit;
pub use simplex::{BoundKind, Conflict, FarkasEntry};
pub use theory::{TheoryLia, TheoryVerdict};
pub use tseitin::Encoder;

use linarb_logic::{Atom, Formula, Model};
use linarb_sat::SatResult;

/// Result of a satisfiability check.
#[derive(Debug)]
pub enum SmtResult {
    /// Satisfiable, with an integer model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted before an answer was found.
    Unknown,
}

impl SmtResult {
    /// Returns the model if the result is `Sat`.
    pub fn model(self) -> Option<Model> {
        match self {
            SmtResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` for [`SmtResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// Returns `true` for [`SmtResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }

    /// Stable lower-case label (used in trace events).
    pub fn label(&self) -> &'static str {
        match self {
            SmtResult::Sat(_) => "sat",
            SmtResult::Unsat => "unsat",
            SmtResult::Unknown => "unknown",
        }
    }
}

/// Result of a conjunction check ([`check_conjunction`]).
#[derive(Debug)]
pub enum ConjunctionResult {
    /// Satisfiable, with an integer model.
    Sat(Model),
    /// Unsatisfiable. `core` indexes into the input atoms; `farkas`
    /// carries multipliers when infeasibility is rational. An empty
    /// core means "the whole conjunction" (integer-only
    /// infeasibility).
    Unsat {
        /// Indices of a contradictory subset of the input atoms.
        core: Vec<usize>,
        /// Rational Farkas certificate when available.
        farkas: Option<Conflict>,
    },
    /// Budget exhausted.
    Unknown,
}

/// Eliminates [`Formula::Mod`] atoms by introducing fresh
/// quotient/remainder variables with defining constraints. Sound for
/// satisfiability: the definitions are total, so every model of the
/// original extends to the lowered formula and vice versa (projected).
fn lower_mods(f: &Formula) -> Formula {
    let mut next = f.vars().iter().map(|v| v.index() + 1).max().unwrap_or(0);
    lower_mods_from(f, &mut next)
}

/// [`lower_mods`] with a caller-owned fresh-variable supply, so an
/// incremental context lowering formulas one at a time never reuses an
/// index (`next` only moves forward).
fn lower_mods_from(f: &Formula, next: &mut u32) -> Formula {
    let groups = f.mod_atoms();
    if groups.is_empty() {
        return f.clone();
    }
    use linarb_arith::BigInt;
    use linarb_logic::{Atom, LinExpr, Var};
    use std::collections::HashMap;

    // One (quotient, remainder) pair per distinct (expr, modulus).
    let mut defs: Vec<Formula> = Vec::new();
    let mut rems: HashMap<(LinExpr, BigInt), Var> = HashMap::new();
    for a in &groups {
        let key = (a.expr().clone(), a.modulus().clone());
        if rems.contains_key(&key) {
            continue;
        }
        let q = Var::from_index(*next);
        let r = Var::from_index(*next + 1);
        *next += 2;
        let (qe, re) = (LinExpr::var(q), LinExpr::var(r));
        defs.push(Atom::eq_expr(a.expr().clone(), &qe.scale(a.modulus()) + &re));
        defs.push(Formula::from(Atom::ge(re.clone(), LinExpr::zero())));
        defs.push(Formula::from(Atom::lt(
            re,
            LinExpr::constant(a.modulus().clone()),
        )));
        rems.insert(key, r);
    }
    // Replace each Mod atom by (r = residue).
    fn replace(f: &Formula, rems: &HashMap<(LinExpr, BigInt), Var>) -> Formula {
        match f {
            Formula::Mod(a) => {
                let r = rems[&(a.expr().clone(), a.modulus().clone())];
                Atom::eq_expr(LinExpr::var(r), LinExpr::constant(a.residue().clone()))
            }
            Formula::And(fs) => Formula::and(fs.iter().map(|g| replace(g, rems)).collect()),
            Formula::Or(fs) => Formula::or(fs.iter().map(|g| replace(g, rems)).collect()),
            Formula::Not(g) => Formula::not(replace(g, rems)),
            other => other.clone(),
        }
    }
    let core = replace(f, &rems);
    defs.push(core);
    Formula::and(defs)
}

/// Decides satisfiability of a QF_LIA formula (with optional
/// divisibility atoms), producing an integer model when satisfiable.
pub fn check_sat(f: &Formula, budget: &Budget) -> SmtResult {
    use linarb_trace::Level;
    let mut span = linarb_trace::span(Level::Debug, "smt", "smt.check_sat");
    let mut rounds = 0u64;
    let result = check_sat_inner(f, budget, &mut rounds, online::offline_mode());
    if span.active() {
        span.record("rounds", rounds);
        span.record("result", result.label());
    }
    result
}

/// The pre-online reference oracle: identical pipeline, but it tears
/// the theory context down after every complete boolean assignment and
/// restarts the SAT search from the top. Kept for differential testing
/// against the online engine; `LINARB_SMT_OFFLINE=1` routes
/// [`check_sat`] here process-wide.
pub fn check_sat_offline(f: &Formula, budget: &Budget) -> SmtResult {
    use linarb_trace::Level;
    let mut span = linarb_trace::span(Level::Debug, "smt", "smt.check_sat");
    let mut rounds = 0u64;
    let result = check_sat_inner(f, budget, &mut rounds, true);
    if span.active() {
        span.record("rounds", rounds);
        span.record("result", result.label());
    }
    result
}

fn check_sat_inner(f: &Formula, budget: &Budget, rounds: &mut u64, offline: bool) -> SmtResult {
    use linarb_trace::{event, metrics, Level};
    let f = lower_mods(f).simplify();
    match f {
        Formula::True => return SmtResult::Sat(Model::new()),
        Formula::False => return SmtResult::Unsat,
        _ => {}
    }
    let mut enc = Encoder::new();
    let root = enc.encode(&f);
    enc.sat.add_clause(&[root]);
    event!(Level::Trace, "smt", "tseitin.encoded",
        "atoms" => enc.num_atoms(),
        "subformulas" => enc.num_subformulas(),
        "clauses" => enc.sat.num_clauses());
    metrics::counter("smt.tseitin_clauses", enc.sat.num_clauses() as u64);
    if offline {
        check_sat_loop_offline(&mut enc, budget, rounds)
    } else {
        check_sat_loop_online(&mut enc, budget, rounds)
    }
}

/// Online DPLL(T) search loop: one long-lived [`TheoryLia`] judges
/// every complete assignment inside the SAT search via [`online::LiaHook`],
/// and theory conflicts are learned as clauses mid-search. The outer
/// loop only re-enters for theory-`Unknown` abandonments and budget
/// checks.
fn check_sat_loop_online(enc: &mut Encoder, budget: &Budget, rounds: &mut u64) -> SmtResult {
    use linarb_trace::{event, metrics, Level};
    let atom_list: Vec<(Atom, linarb_sat::BVar)> =
        enc.atoms().map(|(a, v)| (a.clone(), v)).collect();
    let mut theory = TheoryLia::new();
    let mut had_theory_unknown = false;
    loop {
        if budget.exhausted() {
            event!(Level::Debug, "smt", "smt.budget_exhausted", "rounds" => *rounds);
            metrics::counter("smt.budget_exhausted", 1);
            return SmtResult::Unknown;
        }
        *rounds += 1;
        // Re-read the cap every round: concurrent workers may have
        // drained a shared conflict pool since the last search.
        enc.sat.set_conflict_limit(budget.effective_conflict_limit());
        let conflicts0 = enc.sat.num_conflicts();
        let mut hook = online::LiaHook::new(&mut theory, &atom_list, budget);
        let verdict = enc.sat.solve_with_theory(&[], &mut hook);
        let model = hook.model.take();
        let abandoned = hook.abandoned.take();
        drop(hook);
        budget.charge_conflicts(enc.sat.num_conflicts() - conflicts0);
        match verdict {
            SatResult::Unsat => {
                return if had_theory_unknown { SmtResult::Unknown } else { SmtResult::Unsat }
            }
            SatResult::Unknown => return SmtResult::Unknown,
            SatResult::Sat => {
                if let Some(m) = model {
                    return SmtResult::Sat(m);
                }
                // Paused: either the budget tripped (the loop head
                // reports it) or the theory abandoned this assignment —
                // block it and keep looking, remembering that a boolean
                // Unsat can no longer be trusted.
                if let Some(clause) = abandoned {
                    had_theory_unknown = true;
                    if clause.is_empty() || !enc.sat.add_clause(&clause) {
                        return SmtResult::Unknown;
                    }
                }
            }
        }
    }
}

fn check_sat_loop_offline(enc: &mut Encoder, budget: &Budget, rounds: &mut u64) -> SmtResult {
    use linarb_trace::{event, metrics, Level};
    // Whether some boolean assignment was abandoned because the theory
    // solver could not decide it: an eventual boolean Unsat is then
    // only "unknown" (the abandoned assignment might have been
    // feasible).
    let mut had_theory_unknown = false;
    loop {
        if budget.exhausted() {
            event!(Level::Debug, "smt", "smt.budget_exhausted", "rounds" => *rounds);
            metrics::counter("smt.budget_exhausted", 1);
            return SmtResult::Unknown;
        }
        *rounds += 1;
        // Re-read the cap every round: concurrent workers may have
        // drained a shared conflict pool since the last search.
        enc.sat.set_conflict_limit(budget.effective_conflict_limit());
        let conflicts0 = enc.sat.num_conflicts();
        let verdict = enc.sat.solve();
        budget.charge_conflicts(enc.sat.num_conflicts() - conflicts0);
        match verdict {
            SatResult::Unsat => {
                return if had_theory_unknown { SmtResult::Unknown } else { SmtResult::Unsat }
            }
            SatResult::Unknown => return SmtResult::Unknown,
            SatResult::Sat => {
                // Assert the induced theory literals.
                let mut theory = TheoryLia::new();
                let assignment: Vec<(Atom, Lit)> = enc
                    .atoms()
                    .map(|(a, v)| {
                        let value = enc.sat.value(v).expect("full assignment");
                        let atom = if value { a.clone() } else { a.negate() };
                        (atom, v.lit(value))
                    })
                    .collect();
                let mut early_conflict: Option<Vec<usize>> = None;
                for (tag, (atom, _)) in assignment.iter().enumerate() {
                    if let Err(c) = theory.assert_atom(atom, tag) {
                        early_conflict = Some(c.core());
                        break;
                    }
                }
                let core: Option<Vec<usize>> = match early_conflict {
                    Some(core) => Some(core),
                    None => match theory.check(budget) {
                        TheoryVerdict::Feasible(m) => return SmtResult::Sat(m),
                        TheoryVerdict::Unknown => {
                            // Abandon this assignment but keep looking
                            // for an easier one; remember that Unsat
                            // can no longer be trusted.
                            had_theory_unknown = true;
                            Some(Vec::new())
                        }
                        TheoryVerdict::Infeasible { core, .. } => Some(core),
                    },
                };
                let core = core.expect("conflict path");
                // Blocking clause: negation of the core literals (or of
                // the entire assignment when the core is empty).
                let clause: Vec<Lit> = if core.is_empty() {
                    assignment.iter().map(|(_, l)| l.negated()).collect()
                } else {
                    core.iter().map(|&t| assignment[t].1.negated()).collect()
                };
                if clause.is_empty() {
                    // No theory literals at all yet infeasible: unsat.
                    return SmtResult::Unsat;
                }
                if !enc.sat.add_clause(&clause) {
                    return SmtResult::Unsat;
                }
            }
        }
    }
}

/// Checks validity: `f` holds under every integer assignment.
///
/// Returns `Some(true)` / `Some(false)` (with the countermodel
/// available via [`find_countermodel`]) or `None` on budget
/// exhaustion.
pub fn is_valid(f: &Formula, budget: &Budget) -> Option<bool> {
    match check_sat(&Formula::not(f.clone()), budget) {
        SmtResult::Sat(_) => Some(false),
        SmtResult::Unsat => Some(true),
        SmtResult::Unknown => None,
    }
}

/// Finds a countermodel of `f` (a model of `¬f`), if any.
pub fn find_countermodel(f: &Formula, budget: &Budget) -> SmtResult {
    check_sat(&Formula::not(f.clone()), budget)
}

/// Decides satisfiability of a conjunction of atoms directly on the
/// theory solver (no SAT search), returning Farkas certificates on
/// unsatisfiability. This is the workhorse of the PDR and
/// interpolation baselines.
pub fn check_conjunction(atoms: &[Atom], budget: &Budget) -> ConjunctionResult {
    // Slack rows interned inside popped frames persist (they are
    // semantically inert without bounds), so a long-lived pool accretes
    // columns; rebuild once it crosses this cap.
    const POOL_MAX_SLACKS: usize = 4096;
    thread_local! {
        static CONJUNCTION_POOL: std::cell::RefCell<TheoryLia> =
            std::cell::RefCell::new(TheoryLia::new());
    }
    CONJUNCTION_POOL.with(|pool| {
        let mut theory = pool.borrow_mut();
        if theory.num_slacks() > POOL_MAX_SLACKS {
            *theory = TheoryLia::new();
        }
        // The budget's conflict cap bounds search effort here too: the
        // theory's branch-and-bound node limit is the analogue of CDCL
        // conflicts. The default cap (500k) leaves the historical
        // 512-node limit in place; only tighter budgets reduce it.
        theory.set_branch_limit(budget.conflict_limit().map_or(512, |l| l.min(512)));
        let mark = theory.set_backtrack_point();
        for (tag, a) in atoms.iter().enumerate() {
            if let Err(c) = theory.assert_atom(a, tag) {
                theory.backtrack_to(mark);
                return ConjunctionResult::Unsat { core: c.core(), farkas: Some(c) };
            }
        }
        let result = match theory.check(budget) {
            TheoryVerdict::Feasible(m) => ConjunctionResult::Sat(m),
            TheoryVerdict::Unknown => ConjunctionResult::Unknown,
            TheoryVerdict::Infeasible { core, farkas } => ConjunctionResult::Unsat { core, farkas },
        };
        theory.backtrack_to(mark);
        result
    })
}

/// Checks whether the conjunction of `premises` entails `conclusion`
/// (`premises ∧ ¬conclusion` unsat). `None` on budget exhaustion.
pub fn entails(premises: &Formula, conclusion: &Formula, budget: &Budget) -> Option<bool> {
    let f = Formula::and(vec![premises.clone(), Formula::not(conclusion.clone())]);
    match check_sat(&f, budget) {
        SmtResult::Sat(_) => Some(false),
        SmtResult::Unsat => Some(true),
        SmtResult::Unknown => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::{LinExpr, Var};

    fn v(i: u32) -> Var {
        Var::from_index(i)
    }

    fn x() -> LinExpr {
        LinExpr::var(v(0))
    }

    fn y() -> LinExpr {
        LinExpr::var(v(1))
    }

    fn c(k: i64) -> LinExpr {
        LinExpr::constant(int(k))
    }

    fn b() -> Budget {
        Budget::unlimited()
    }

    #[test]
    fn sat_model_satisfies_formula() {
        let f = Formula::and(vec![
            Formula::or(vec![
                Formula::from(Atom::le(x(), c(-5))),
                Formula::from(Atom::ge(&x() + &y(), c(7))),
            ]),
            Formula::from(Atom::ge(x(), c(0))),
            Formula::from(Atom::le(y(), c(3))),
        ]);
        match check_sat(&f, &b()) {
            SmtResult::Sat(m) => assert!(f.eval(&m), "model {m:?} must satisfy formula"),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn unsat_conjunction_through_boolean_structure() {
        // (x <= 0 \/ x >= 10) /\ x >= 3 /\ x <= 7
        let f = Formula::and(vec![
            Formula::or(vec![
                Formula::from(Atom::le(x(), c(0))),
                Formula::from(Atom::ge(x(), c(10))),
            ]),
            Formula::from(Atom::ge(x(), c(3))),
            Formula::from(Atom::le(x(), c(7))),
        ]);
        assert!(check_sat(&f, &b()).is_unsat());
    }

    #[test]
    fn validity_of_tautology() {
        // x <= 3 \/ x >= 2 is valid over integers
        let f = Formula::or(vec![
            Formula::from(Atom::le(x(), c(3))),
            Formula::from(Atom::ge(x(), c(2))),
        ]);
        assert_eq!(is_valid(&f, &b()), Some(true));
        // x <= 3 alone is not valid
        assert_eq!(is_valid(&Formula::from(Atom::le(x(), c(3))), &b()), Some(false));
    }

    #[test]
    fn countermodel_falsifies() {
        let f = Formula::from(Atom::ge(&x() + &y(), c(1)));
        match find_countermodel(&f, &b()) {
            SmtResult::Sat(m) => assert!(!f.eval(&m)),
            other => panic!("expected countermodel, got {other:?}"),
        }
    }

    #[test]
    fn entailment() {
        let p = Formula::and(vec![
            Formula::from(Atom::ge(x(), c(2))),
            Formula::from(Atom::ge(y(), c(3))),
        ]);
        let q = Formula::from(Atom::ge(&x() + &y(), c(5)));
        assert_eq!(entails(&p, &q, &b()), Some(true));
        assert_eq!(entails(&q, &p, &b()), Some(false));
    }

    #[test]
    fn conjunction_api_core() {
        let atoms = vec![
            Atom::le(&x() + &y(), c(1)),
            Atom::ge(x(), c(1)),
            Atom::ge(y(), c(1)),
            Atom::le(x(), c(100)), // irrelevant
        ];
        match check_conjunction(&atoms, &b()) {
            ConjunctionResult::Unsat { core, farkas } => {
                assert_eq!(core, vec![0, 1, 2], "irrelevant atom must not be in core");
                assert!(farkas.is_some());
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn equalities_and_disequalities() {
        // x = 2y /\ x != 4 /\ 2 <= x <= 6  => x = 2? no: x in {2,6}? x=2y so x even: x in {2,4,6} minus 4 -> {2,6}
        let f = Formula::and(vec![
            Atom::eq_expr(x(), y().scale(&int(2))),
            Formula::or(vec![
                Formula::from(Atom::lt(x(), c(4))),
                Formula::from(Atom::gt(x(), c(4))),
            ]),
            Formula::from(Atom::ge(x(), c(2))),
            Formula::from(Atom::le(x(), c(6))),
        ]);
        match check_sat(&f, &b()) {
            SmtResult::Sat(m) => {
                let mx = m.value(v(0));
                assert!(mx == int(2) || mx == int(6), "got {mx}");
                assert!(f.eval(&m));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn deep_boolean_structure() {
        // nested implications: ((x>=1 -> y>=1) /\ (y>=1 -> x+y>=3)) /\ x>=2
        let f = Formula::and(vec![
            Formula::implies(
                Formula::from(Atom::ge(x(), c(1))),
                Formula::from(Atom::ge(y(), c(1))),
            ),
            Formula::implies(
                Formula::from(Atom::ge(y(), c(1))),
                Formula::from(Atom::ge(&x() + &y(), c(3))),
            ),
            Formula::from(Atom::ge(x(), c(2))),
        ]);
        match check_sat(&f, &b()) {
            SmtResult::Sat(m) => assert!(f.eval(&m)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn budget_timeout_returns_unknown_or_answer_quickly() {
        use std::time::Duration;
        let f = Formula::from(Atom::le(x(), c(3)));
        // Zero budget: allowed to answer Unknown; must not hang.
        let r = check_sat(&f, &Budget::timeout(Duration::from_millis(0)));
        assert!(matches!(r, SmtResult::Unknown | SmtResult::Sat(_)));
    }

    #[test]
    fn fig1_check_formula_roundtrip() {
        // body /\ not head of the paper's query with p := x>=1 /\ y>=0:
        // p(x,y) /\ x'=x+y /\ y'=y+1 /\ not(x' >= y')
        let xp = LinExpr::var(v(2));
        let yp = LinExpr::var(v(3));
        let f = Formula::and(vec![
            Formula::from(Atom::ge(x(), c(1))),
            Formula::from(Atom::ge(y(), c(0))),
            Atom::eq_expr(xp.clone(), &x() + &y()),
            Atom::eq_expr(yp.clone(), &y() + &c(1)),
            Formula::not(Formula::from(Atom::ge(xp.clone(), yp.clone()))),
        ]);
        // The invariant is NOT inductive-strong enough? Check: x>=1, y>=0,
        // x'=x+y>=1, y'=y+1>=1; need x'>=y' i.e. x+y >= y+1 i.e. x>=1. Holds!
        assert!(check_sat(&f, &b()).is_unsat());
    }
}

#[cfg(test)]
mod mod_tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::{Atom, LinExpr, ModAtom, Var};

    fn x() -> LinExpr {
        LinExpr::var(Var::from_index(0))
    }

    #[test]
    fn mod_atom_sat_with_valid_model() {
        // x even /\ x >= 3  => x in {4, 6, ...}
        let f = Formula::and(vec![
            Formula::from(ModAtom::new(x(), int(2), int(0))),
            Formula::from(Atom::ge(x(), LinExpr::constant(int(3)))),
        ]);
        match check_sat(&f, &Budget::unlimited()) {
            SmtResult::Sat(m) => {
                assert!(f.eval(&m), "model must satisfy original formula");
                assert!(m.value(Var::from_index(0)).is_even());
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn negated_mod_atom() {
        // not(x ≡ 0 mod 2) /\ 0 <= x <= 2  => x = 1
        let f = Formula::and(vec![
            Formula::not(Formula::from(ModAtom::new(x(), int(2), int(0)))),
            Formula::from(Atom::ge(x(), LinExpr::zero())),
            Formula::from(Atom::le(x(), LinExpr::constant(int(2)))),
        ]);
        match check_sat(&f, &Budget::unlimited()) {
            SmtResult::Sat(m) => assert_eq!(m.value(Var::from_index(0)), int(1)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_congruences_unsat() {
        // x ≡ 0 (mod 2) /\ x ≡ 1 (mod 2)
        let f = Formula::and(vec![
            Formula::from(ModAtom::new(x(), int(2), int(0))),
            Formula::from(ModAtom::new(x(), int(2), int(1))),
        ]);
        assert!(check_sat(&f, &Budget::unlimited()).is_unsat());
    }

    #[test]
    fn mod_of_compound_expression() {
        // (x + y) ≡ 2 (mod 3) /\ x = 1 /\ y >= 0 /\ y <= 2 => y = 1
        let y = LinExpr::var(Var::from_index(1));
        let f = Formula::and(vec![
            Formula::from(ModAtom::new(&x() + &y, int(3), int(2))),
            Atom::eq_expr(x(), LinExpr::constant(int(1))),
            Formula::from(Atom::ge(y.clone(), LinExpr::zero())),
            Formula::from(Atom::le(y, LinExpr::constant(int(2)))),
        ]);
        match check_sat(&f, &Budget::unlimited()) {
            SmtResult::Sat(m) => {
                assert!(f.eval(&m));
                assert_eq!(m.value(Var::from_index(1)), int(1));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }
}
