//! An incremental DPLL(T) context: persistent CDCL state, activation
//! literals, and assumption-based checking.
//!
//! [`check_sat`](crate::check_sat) rebuilds the Tseitin encoding, the
//! SAT solver, and the theory state on every call, discarding
//! everything the previous call learned. [`IncrementalSolver`] keeps
//! one context alive across calls instead:
//!
//! * **Permanent assertions** ([`assert_permanent`]) encode the parts
//!   of a query that never change — for the CEGAR loop, a clause's
//!   constraint and body/head skeleton.
//! * **Guarded assertions** ([`push_guarded`]) encode retractable
//!   parts — candidate predicate interpretations. Each one is guarded
//!   by a fresh *activation literal* `g` via the clause `¬g ∨ root(f)`:
//!   passing `g` to [`check`] enables the formula, omitting it retracts
//!   it with zero solver work (the clause is vacuously satisfiable).
//! * **Checks under assumptions** ([`check`]) call the CDCL core
//!   through [`SatSolver::solve_under_assumptions`], so learned
//!   clauses, VSIDS activity, saved phases, and watcher state all
//!   carry over to the next check.
//!
//! Learned clauses are consequences of the *clause set* only — never
//! of the assumptions — so lemmas derived while one interpretation was
//! active remain sound after it is retracted. Theory conflicts are
//! fed back as permanent blocking clauses for the same reason: a
//! theory-infeasible combination of atom polarities stays infeasible
//! no matter which guarded formulas are active. The one exception is
//! an *abandoned* assignment (the theory solver answered Unknown):
//! its blocking clause is only a search pragma, not a fact, so it is
//! guarded by a per-check **call literal** and expires when the check
//! returns — otherwise a later check could report an Unsat that
//! silently depended on an unproven abandonment.
//!
//! [`assert_permanent`]: IncrementalSolver::assert_permanent
//! [`push_guarded`]: IncrementalSolver::push_guarded
//! [`check`]: IncrementalSolver::check
//! [`SatSolver::solve_under_assumptions`]: linarb_sat::SatSolver::solve_under_assumptions

use crate::budget::Budget;
use crate::online::LiaHook;
use crate::tseitin::Encoder;
use crate::theory::{TheoryLia, TheoryVerdict};
use crate::{lower_mods_from, SmtResult};
use linarb_logic::{Atom, Formula};
use linarb_sat::{BVar, Lit, SatResult};
use std::collections::{HashMap, HashSet};

/// First fresh variable index for lowered `Mod` atoms. High enough to
/// stay clear of any program variable the caller will ever mention;
/// fresh variables only appear in internal constraints and models,
/// where unknown indices are ignored by callers.
const FRESH_VAR_BASE: u32 = 1 << 28;

/// A persistent DPLL(T) solving context. See the [module
/// documentation](self) for the lifecycle.
#[derive(Clone, Debug)]
pub struct IncrementalSolver {
    enc: Encoder,
    /// Long-lived theory context for the online engine: each candidate
    /// assignment is asserted under a backtrack mark and popped again,
    /// so the simplex tableau (rows, interned slacks, current basis)
    /// stays warm across assignments *and* across checks.
    theory: TheoryLia,
    /// Online DPLL(T) (theory consulted inside the SAT search) vs. the
    /// retained offline loop (fresh theory per full model). Defaults to
    /// online unless `LINARB_SMT_OFFLINE=1`.
    online: bool,
    /// Monotone supply of fresh `Var` indices for mod-lowering: shared
    /// across all asserts so two formulas never collide.
    next_fresh: u32,
    /// Atom variables mentioned by permanent assertions.
    permanent_atoms: HashSet<BVar>,
    /// Atom variables mentioned by each guarded assertion. A check only
    /// hands the theory solver atoms *relevant* to it — permanent plus
    /// active-guard atoms — because the SAT core assigns arbitrary
    /// polarities to atoms that occur solely in retracted formulas, and
    /// feeding those to the theory both wastes branch-and-bound effort
    /// and (worse) grows blocking clauses over irrelevant literals.
    guard_atoms: HashMap<Lit, Vec<BVar>>,
    checks: u64,
    /// Activation literals of the last `Unsat` answer's assumption
    /// core (see [`last_unsat_core`](Self::last_unsat_core)).
    last_core: Vec<Lit>,
    /// Whether [`check`](Self::check) resets the CDCL branching state
    /// (VSIDS activities, saved phases) before searching. Off by
    /// default: carried-over decision state is what lets hard checks
    /// profit from earlier ones. See [`set_decision_reset`](Self::set_decision_reset)
    /// for when resetting wins instead.
    reset_decisions: bool,
}

impl Default for IncrementalSolver {
    fn default() -> IncrementalSolver {
        IncrementalSolver::new()
    }
}

impl IncrementalSolver {
    /// Creates an empty context.
    pub fn new() -> IncrementalSolver {
        IncrementalSolver {
            enc: Encoder::new(),
            theory: TheoryLia::new(),
            online: !crate::online::offline_mode(),
            next_fresh: FRESH_VAR_BASE,
            permanent_atoms: HashSet::new(),
            guard_atoms: HashMap::new(),
            checks: 0,
            last_core: Vec::new(),
            reset_decisions: false,
        }
    }

    /// Forces the offline (rebuild-per-model) oracle path for this
    /// context, regardless of the process-wide default. Used by the
    /// differential tests.
    pub fn set_online(&mut self, online: bool) {
        self.online = online;
    }

    /// Chooses whether each [`check`](Self::check) starts from a fresh
    /// branching state (activities and saved phases cleared; learned
    /// clauses always persist either way).
    ///
    /// This is a *model-selection* policy, not a correctness one: both
    /// settings are sound, but they walk different model sequences,
    /// which matters to callers that sample models (the CEGAR loop's
    /// refinement trajectory follows the countermodels it is fed).
    /// Keeping state preserves the diversity that accumulated phases
    /// provide; resetting makes every check branch like a fresh solver.
    /// Empirically neither dominates — see the oracle notes in the
    /// repository's DESIGN.md.
    pub fn set_decision_reset(&mut self, reset: bool) {
        self.reset_decisions = reset;
    }

    fn prepare(&mut self, f: &Formula) -> Formula {
        lower_mods_from(f, &mut self.next_fresh).simplify()
    }

    /// Atom variables of a prepared (mod-free) formula, interning as
    /// needed. Walks the structure rather than hooking `encode`, which
    /// short-circuits on hash-consed subformulas.
    fn atom_vars_of(&mut self, f: &Formula, out: &mut Vec<BVar>) {
        match f {
            Formula::Atom(a) => out.push(self.enc.atom_lit(a).var()),
            Formula::Not(g) => self.atom_vars_of(g, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for g in fs {
                    self.atom_vars_of(g, out);
                }
            }
            Formula::True | Formula::False => {}
            Formula::Mod(_) => unreachable!("prepared formulas are mod-free"),
        }
    }

    /// Asserts `f` unconditionally: it holds in every subsequent
    /// [`check`](Self::check), forever.
    pub fn assert_permanent(&mut self, f: &Formula) {
        use linarb_trace::{event, Level};
        let f = self.prepare(f);
        let mut atoms = Vec::new();
        self.atom_vars_of(&f, &mut atoms);
        self.permanent_atoms.extend(atoms);
        let clauses0 = self.enc.sat.num_clauses();
        let vars0 = self.enc.sat.num_vars();
        let root = self.enc.encode(&f);
        self.enc.sat.add_clause(&[root]);
        event!(Level::Trace, "smt", "inc.assert_permanent",
            "new_clauses" => self.enc.sat.num_clauses() - clauses0,
            "new_vars" => self.enc.sat.num_vars() - vars0);
    }

    /// Asserts `f` under a fresh activation literal and returns it.
    /// `f` is only in force during checks whose assumptions include
    /// the returned literal; retracting it is simply never passing the
    /// literal again (no solver work, no state lost).
    pub fn push_guarded(&mut self, f: &Formula) -> Lit {
        use linarb_trace::{event, Level};
        let f = self.prepare(f);
        let mut atoms = Vec::new();
        self.atom_vars_of(&f, &mut atoms);
        let clauses0 = self.enc.sat.num_clauses();
        let vars0 = self.enc.sat.num_vars();
        let act = self.enc.sat.new_var().positive();
        let root = self.enc.encode(&f);
        self.enc.sat.add_clause(&[act.negated(), root]);
        self.guard_atoms.insert(act, atoms);
        event!(Level::Trace, "smt", "inc.push_guarded",
            "new_clauses" => self.enc.sat.num_clauses() - clauses0,
            "new_vars" => self.enc.sat.num_vars() - vars0);
        act
    }

    /// Decides satisfiability of the permanent assertions plus every
    /// guarded formula whose activation literal appears in `active`.
    pub fn check(&mut self, active: &[Lit], budget: &Budget) -> SmtResult {
        use linarb_trace::{metrics, Level};
        let mut span = linarb_trace::span(Level::Debug, "smt", "smt.inc_check");
        let learned0 = self.enc.sat.num_learned();
        let pivots0 = self.num_simplex_pivots();
        let mut rounds = 0u64;
        let result = self.check_inner(active, budget, &mut rounds);
        // Per-check distributions: theory effort (simplex pivots) and
        // DPLL(T) round count for this one check.
        metrics::histogram("smt.check_pivots", self.num_simplex_pivots() - pivots0);
        metrics::histogram("smt.check_rounds", rounds);
        // Record which *caller-visible* activation literals the final
        // conflict used (internal call literals are filtered out). An
        // empty core on Unsat means the permanent assertions alone are
        // inconsistent with the clause set.
        self.last_core.clear();
        if result.is_unsat() {
            self.last_core.extend(
                self.enc.sat.assumption_core().iter().filter(|l| active.contains(l)),
            );
        }
        metrics::counter("smt.inc_checks", 1);
        if span.active() {
            span.record("active", active.len());
            span.record("rounds", rounds);
            span.record("learned", self.enc.sat.num_learned() - learned0);
            span.record("result", result.label());
        }
        result
    }

    fn check_inner(&mut self, active: &[Lit], budget: &Budget, rounds: &mut u64) -> SmtResult {
        self.checks += 1;
        if self.reset_decisions {
            self.enc.sat.reset_decision_state();
        }
        // Atoms this check's formulas actually mention; atoms occurring
        // only in retracted guarded formulas are invisible to the
        // theory (their SAT polarities are unconstrained noise).
        // Selected once per check — the per-round loop below only reads
        // their values.
        let mut relevant: HashSet<BVar> = self.permanent_atoms.clone();
        for g in active {
            if let Some(atoms) = self.guard_atoms.get(g) {
                relevant.extend(atoms.iter().copied());
            }
        }
        let relevant_atoms: Vec<(Atom, BVar)> = self
            .enc
            .atoms()
            .filter(|(_, v)| relevant.contains(v))
            .map(|(a, v)| (a.clone(), v))
            .collect();
        if self.online {
            self.check_online(&relevant_atoms, active, budget, rounds)
        } else {
            self.check_offline(&relevant_atoms, active, budget, rounds)
        }
    }

    /// Online DPLL(T) check: the pooled theory context judges complete
    /// assignments *inside* the SAT search (via [`LiaHook`]), learning
    /// theory conflicts as clauses mid-search instead of restarting the
    /// search per model. The outer loop only handles budget stops and
    /// abandoned (theory-`Unknown`) assignments.
    fn check_online(
        &mut self,
        relevant_atoms: &[(Atom, BVar)],
        active: &[Lit],
        budget: &Budget,
        rounds: &mut u64,
    ) -> SmtResult {
        use linarb_trace::{event, metrics, Level};
        // Slack rows interned inside popped frames persist (bound-free
        // slacks are semantically inert), so a context kept across
        // CEGAR iterations accretes one row per candidate atom it has
        // ever seen, and every simplex check pays for the whole
        // tableau (branch-and-bound clones it per node). Keep the warm
        // tableau while it stays commensurate with what *this* check
        // can use; once it has clearly outgrown the live atom set, a
        // fresh small tableau beats a warm bloated one. The factor was
        // tuned on the perf_smoke suite: tighter caps forfeit real
        // warm-start wins, an uncapped context times out the biggest
        // instances. Keyed on solver state only — never wall time — to
        // preserve cross-thread determinism.
        let slack_cap = 8 * relevant_atoms.len() + 512;
        if self.theory.num_slacks() > slack_cap {
            let (bt, bn, pv) = (
                self.theory.num_backtracks(),
                self.theory.num_branch_nodes(),
                self.theory.num_pivots(),
            );
            self.theory = TheoryLia::new();
            self.theory.restore_stats(bt, bn, pv);
        }
        let mut assumptions: Vec<Lit> = active.to_vec();
        // Allocated lazily on the first abandoned assignment; guards
        // this check's Unknown blocking clauses so they expire.
        let mut call_lit: Option<Lit> = None;
        let mut had_theory_unknown = false;
        loop {
            if budget.exhausted() {
                event!(Level::Debug, "smt", "smt.budget_exhausted", "rounds" => *rounds);
                metrics::counter("smt.budget_exhausted", 1);
                return SmtResult::Unknown;
            }
            *rounds += 1;
            // Re-read the cap every round: concurrent workers may have
            // drained a shared conflict pool since the last search.
            self.enc.sat.set_conflict_limit(budget.effective_conflict_limit());
            let conflicts0 = self.enc.sat.num_conflicts();
            let mut hook = LiaHook::new(&mut self.theory, relevant_atoms, budget);
            let verdict = self.enc.sat.solve_with_theory(&assumptions, &mut hook);
            let model = hook.model.take();
            let abandoned = hook.abandoned.take();
            drop(hook);
            budget.charge_conflicts(self.enc.sat.num_conflicts() - conflicts0);
            match verdict {
                SatResult::Unsat => {
                    return if had_theory_unknown { SmtResult::Unknown } else { SmtResult::Unsat }
                }
                SatResult::Unknown => return SmtResult::Unknown,
                SatResult::Sat => {
                    if let Some(m) = model {
                        return SmtResult::Sat(m);
                    }
                    // Paused. Budget stops are reported by the loop
                    // head; an abandonment is blocked under this
                    // check's call literal (a pragma, not a fact) and
                    // taints any later Unsat.
                    if let Some(mut clause) = abandoned {
                        had_theory_unknown = true;
                        let cl = *call_lit.get_or_insert_with(|| {
                            let l = self.enc.sat.new_var().positive();
                            assumptions.push(l);
                            l
                        });
                        clause.push(cl.negated());
                        if !self.enc.sat.add_clause(&clause) {
                            return SmtResult::Unknown;
                        }
                    }
                }
            }
        }
    }

    /// The retained offline loop: fresh theory per full SAT model,
    /// blocking clause, re-solve. Reference oracle for the online path.
    fn check_offline(
        &mut self,
        relevant_atoms: &[(Atom, BVar)],
        active: &[Lit],
        budget: &Budget,
        rounds: &mut u64,
    ) -> SmtResult {
        use linarb_trace::{event, metrics, Level};
        let mut assumptions: Vec<Lit> = active.to_vec();
        // Allocated lazily on the first abandoned assignment; guards
        // this check's Unknown blocking clauses so they expire.
        let mut call_lit: Option<Lit> = None;
        let mut had_theory_unknown = false;
        loop {
            if budget.exhausted() {
                event!(Level::Debug, "smt", "smt.budget_exhausted", "rounds" => *rounds);
                metrics::counter("smt.budget_exhausted", 1);
                return SmtResult::Unknown;
            }
            *rounds += 1;
            // Re-read the cap every round: concurrent workers may have
            // drained a shared conflict pool since the last search.
            self.enc.sat.set_conflict_limit(budget.effective_conflict_limit());
            let conflicts0 = self.enc.sat.num_conflicts();
            let verdict = self.enc.sat.solve_under_assumptions(&assumptions);
            budget.charge_conflicts(self.enc.sat.num_conflicts() - conflicts0);
            match verdict {
                SatResult::Unsat => {
                    return if had_theory_unknown { SmtResult::Unknown } else { SmtResult::Unsat }
                }
                SatResult::Unknown => return SmtResult::Unknown,
                SatResult::Sat => {
                    let mut theory = TheoryLia::new();
                    let assignment: Vec<(Atom, Lit)> = relevant_atoms
                        .iter()
                        .map(|(a, v)| {
                            let value = self.enc.sat.value(*v).expect("full assignment");
                            let atom = if value { a.clone() } else { a.negate() };
                            (atom, v.lit(value))
                        })
                        .collect();
                    let mut early_conflict: Option<Vec<usize>> = None;
                    for (tag, (atom, _)) in assignment.iter().enumerate() {
                        if let Err(c) = theory.assert_atom(atom, tag) {
                            early_conflict = Some(c.core());
                            break;
                        }
                    }
                    let (core, unknown) = match early_conflict {
                        Some(core) => (core, false),
                        None => match theory.check(budget) {
                            TheoryVerdict::Feasible(m) => return SmtResult::Sat(m),
                            TheoryVerdict::Unknown => (Vec::new(), true),
                            TheoryVerdict::Infeasible { core, .. } => (core, false),
                        },
                    };
                    // Blocking clause over the core (or the entire
                    // assignment when the theory couldn't localize).
                    let mut clause: Vec<Lit> = if core.is_empty() {
                        assignment.iter().map(|(_, l)| l.negated()).collect()
                    } else {
                        core.iter().map(|&t| assignment[t].1.negated()).collect()
                    };
                    if unknown {
                        // Abandonment, not a fact: guard it with this
                        // check's call literal so it expires.
                        had_theory_unknown = true;
                        let cl = *call_lit.get_or_insert_with(|| {
                            let l = self.enc.sat.new_var().positive();
                            assumptions.push(l);
                            l
                        });
                        clause.push(cl.negated());
                    }
                    if clause.is_empty() {
                        // No theory literals at all yet infeasible.
                        return SmtResult::Unsat;
                    }
                    if !self.enc.sat.add_clause(&clause) {
                        return SmtResult::Unsat;
                    }
                }
            }
        }
    }

    /// After an `Unsat` answer from [`check`](Self::check): the subset
    /// of that check's `active` literals whose guarded formulas the
    /// final conflict actually depended on. Guards absent from the
    /// core were irrelevant to the refutation — the CEGAR loop uses
    /// this to spot candidate atoms that never pull their weight.
    /// Cleared by any non-`Unsat` check.
    pub fn last_unsat_core(&self) -> &[Lit] {
        &self.last_core
    }

    /// Total clauses the persistent CDCL core has learned over the
    /// context's lifetime.
    pub fn learned_clauses(&self) -> u64 {
        self.enc.sat.num_learned()
    }

    /// Number of [`check`](Self::check) calls served by this context.
    pub fn num_checks(&self) -> u64 {
        self.checks
    }

    /// Number of distinct theory atoms interned by the encoder.
    pub fn num_atoms(&self) -> usize {
        self.enc.num_atoms()
    }

    /// Cumulative simplex pivots performed by this context's warm
    /// theory (statistics; zero while running the offline oracle,
    /// whose per-model theories are discarded).
    pub fn num_simplex_pivots(&self) -> u64 {
        self.theory.num_pivots()
    }

    /// Cumulative theory-level backtracks (frame pops) on the warm
    /// theory context (statistics).
    pub fn num_theory_backtracks(&self) -> u64 {
        self.theory.num_backtracks()
    }

    /// Clause-database reductions performed by the CDCL core.
    pub fn num_db_reductions(&self) -> u64 {
        self.enc.sat.num_db_reductions()
    }

    /// Learned clauses currently alive in the CDCL clause database
    /// (after reductions; [`learned_clauses`](Self::learned_clauses)
    /// is the lifetime total).
    pub fn learned_db_size(&self) -> usize {
        self.enc.sat.learned_db_size()
    }
}

/// Convenience: a validity check through an incremental context —
/// `Sat(countermodel)` means invalid. The negated formula goes in as a
/// one-shot guarded assertion.
pub fn find_countermodel_incremental(
    ctx: &mut IncrementalSolver,
    f: &Formula,
    budget: &Budget,
) -> SmtResult {
    let guard = ctx.push_guarded(&Formula::not(f.clone()));
    ctx.check(&[guard], budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::{Atom, LinExpr, Var};

    fn v(i: u32) -> Var {
        Var::from_index(i)
    }

    fn x() -> LinExpr {
        LinExpr::var(v(0))
    }

    fn y() -> LinExpr {
        LinExpr::var(v(1))
    }

    fn c(k: i64) -> LinExpr {
        LinExpr::constant(int(k))
    }

    fn b() -> Budget {
        Budget::unlimited()
    }

    #[test]
    fn permanent_assertions_accumulate() {
        let mut s = IncrementalSolver::new();
        s.assert_permanent(&Formula::from(Atom::ge(x(), c(0))));
        assert!(s.check(&[], &b()).is_sat());
        s.assert_permanent(&Formula::from(Atom::le(x(), c(5))));
        match s.check(&[], &b()) {
            SmtResult::Sat(m) => {
                assert!(m.value(v(0)) >= int(0) && m.value(v(0)) <= int(5));
            }
            other => panic!("expected sat, got {other:?}"),
        }
        s.assert_permanent(&Formula::from(Atom::ge(x(), c(6))));
        assert!(s.check(&[], &b()).is_unsat());
    }

    #[test]
    fn guarded_formulas_toggle_without_rebuild() {
        let mut s = IncrementalSolver::new();
        s.assert_permanent(&Formula::from(Atom::ge(x(), c(3))));
        let g_low = s.push_guarded(&Formula::from(Atom::le(x(), c(1))));
        let g_high = s.push_guarded(&Formula::from(Atom::le(x(), c(10))));
        // active contradiction
        assert!(s.check(&[g_low], &b()).is_unsat());
        // retract it: sat again, with the other guard or none
        assert!(s.check(&[g_high], &b()).is_sat());
        assert!(s.check(&[], &b()).is_sat());
        // both: still the contradiction
        assert!(s.check(&[g_low, g_high], &b()).is_unsat());
        // and the solver is still alive afterwards
        assert!(s.check(&[g_high], &b()).is_sat());
    }

    #[test]
    fn agrees_with_fresh_check_sat_across_interpretation_swaps() {
        // A clause skeleton x' = x + 1, checked against a sequence of
        // candidate "interpretations" — mirroring the CEGAR loop.
        let xp = LinExpr::var(v(2));
        let skeleton = Atom::eq_expr(xp.clone(), &x() + &c(1));
        let mut s = IncrementalSolver::new();
        s.assert_permanent(&skeleton);
        let candidates = [
            // body: x >= 0, negated head: ¬(x' >= 1) — valid, unsat
            Formula::and(vec![
                Formula::from(Atom::ge(x(), c(0))),
                Formula::not(Formula::from(Atom::ge(xp.clone(), c(1)))),
            ]),
            // body: x >= -5, negated head: ¬(x' >= 1) — invalid, sat
            Formula::and(vec![
                Formula::from(Atom::ge(x(), c(-5))),
                Formula::not(Formula::from(Atom::ge(xp.clone(), c(1)))),
            ]),
            // body: x >= 0 ∧ y >= x, ¬(x' + y >= 1) — unsat
            Formula::and(vec![
                Formula::from(Atom::ge(x(), c(0))),
                Formula::from(Atom::ge(y(), x())),
                Formula::not(Formula::from(Atom::ge(&xp + &y(), c(1)))),
            ]),
        ];
        for (i, cand) in candidates.iter().enumerate() {
            let g = s.push_guarded(cand);
            let inc = s.check(&[g], &b());
            let whole = Formula::and(vec![Formula::from(skeleton.clone()), cand.clone()]);
            let fresh = crate::check_sat(&whole, &b());
            assert_eq!(
                inc.is_sat(),
                fresh.is_sat(),
                "candidate {i}: incremental {inc:?} vs fresh {fresh:?}"
            );
            assert_eq!(inc.is_unsat(), fresh.is_unsat(), "candidate {i}");
            if let SmtResult::Sat(m) = inc {
                assert!(whole.eval(&m), "candidate {i}: model must satisfy");
            }
        }
        assert!(s.num_checks() >= 3);
    }

    #[test]
    fn state_persists_across_checks() {
        // A boolean-heavy instance: re-checking after learning must
        // not restart from scratch (learned count is monotone and the
        // atom table never shrinks).
        let mut s = IncrementalSolver::new();
        let atoms: Vec<Formula> = (0..6)
            .map(|i| Formula::from(Atom::ge(LinExpr::var(v(i)), c(i as i64))))
            .collect();
        s.assert_permanent(&Formula::or(atoms.clone()));
        let g1 = s.push_guarded(&Formula::not(atoms[0].clone()));
        let g2 = s.push_guarded(&Formula::not(atoms[1].clone()));
        assert!(s.check(&[g1], &b()).is_sat());
        let atoms_after_first = s.num_atoms();
        assert!(s.check(&[g1, g2], &b()).is_sat());
        assert!(s.check(&[g2], &b()).is_sat());
        assert_eq!(s.num_atoms(), atoms_after_first, "atom table is stable");
    }

    #[test]
    fn mod_lowering_uses_disjoint_fresh_vars() {
        use linarb_logic::ModAtom;
        let mut s = IncrementalSolver::new();
        // x even
        s.assert_permanent(&Formula::from(ModAtom::new(x(), int(2), int(0))));
        // y ≡ 1 (mod 2), asserted separately: fresh vars must not clash
        s.assert_permanent(&Formula::from(ModAtom::new(y(), int(2), int(1))));
        s.assert_permanent(&Formula::from(Atom::ge(x(), c(1))));
        s.assert_permanent(&Formula::from(Atom::ge(y(), c(2))));
        match s.check(&[], &b()) {
            SmtResult::Sat(m) => {
                assert!(m.value(v(0)).is_even());
                assert!(!m.value(v(1)).is_even());
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn unsat_core_names_only_relevant_guards() {
        let mut s = IncrementalSolver::new();
        s.assert_permanent(&Formula::from(Atom::ge(x(), c(3))));
        let g_low = s.push_guarded(&Formula::from(Atom::le(x(), c(1))));
        let g_free = s.push_guarded(&Formula::from(Atom::le(y(), c(10))));
        assert!(s.check(&[g_low, g_free], &b()).is_unsat());
        let core = s.last_unsat_core().to_vec();
        assert!(core.contains(&g_low), "core {core:?} must contain the contradiction");
        assert!(!core.contains(&g_free), "irrelevant guard in core {core:?}");
        // a sat check clears the core
        assert!(s.check(&[g_free], &b()).is_sat());
        assert!(s.last_unsat_core().is_empty());
    }

    #[test]
    fn incremental_solver_is_send() {
        // Parallel clause checking moves whole contexts to worker
        // threads; the solver (and everything it owns) must be Send.
        fn assert_send<T: Send>() {}
        assert_send::<IncrementalSolver>();
    }

    #[test]
    fn drained_global_pool_stops_checks() {
        let mut s = IncrementalSolver::new();
        s.assert_permanent(&Formula::from(Atom::ge(x(), c(0))));
        let budget = Budget::unlimited().with_global_conflict_limit(50);
        // Simulate siblings having spent the whole allowance.
        budget.charge_conflicts(50);
        assert!(budget.exhausted());
        assert!(matches!(s.check(&[], &budget), SmtResult::Unknown));
    }

    #[test]
    fn countermodel_convenience() {
        let mut s = IncrementalSolver::new();
        s.assert_permanent(&Formula::from(Atom::ge(x(), c(0))));
        // x >= 0 does not entail x >= 5
        let r = find_countermodel_incremental(
            &mut s,
            &Formula::from(Atom::ge(x(), c(5))),
            &b(),
        );
        match r {
            SmtResult::Sat(m) => {
                assert!(m.value(v(0)) >= int(0) && m.value(v(0)) < int(5));
            }
            other => panic!("expected countermodel, got {other:?}"),
        }
    }
}
