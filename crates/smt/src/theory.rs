//! Linear integer arithmetic theory solver: exact simplex plus
//! branch-and-bound for integrality.

use crate::budget::Budget;
use crate::simplex::{Conflict, Simplex, Tag};
use linarb_arith::{BigInt, BigRational};
use linarb_logic::{Atom, Model, Var};
use std::collections::HashMap;

/// Internal tag used by branch-and-bound bounds (never reported in
/// cores).
const INTERNAL_TAG: Tag = usize::MAX;

/// Verdict of a theory consistency check.
#[derive(Debug)]
pub enum TheoryVerdict {
    /// An integer model of the asserted atoms.
    Feasible(Model),
    /// The asserted atoms are jointly unsatisfiable; the core lists
    /// the tags of a contradictory subset, and `farkas` carries the
    /// rational certificate when one exists (`None` when
    /// infeasibility was established by branch-and-bound only).
    Infeasible {
        /// Tags of a contradictory subset of asserted atoms.
        core: Vec<Tag>,
        /// Rational Farkas certificate, if infeasibility is already
        /// rational.
        farkas: Option<Conflict>,
    },
    /// The budget or branching limit was exhausted.
    Unknown,
}

/// Incremental assertion context for conjunctions of linear atoms.
///
/// Each asserted [`Atom`] `e ≤ 0` is split into its homogeneous part
/// (turned into a shared simplex slack column) and its constant
/// (turned into a bound). Tags identify atoms in conflicts.
///
/// ```
/// use linarb_arith::int;
/// use linarb_logic::{Atom, LinExpr, Var};
/// use linarb_smt::{Budget, TheoryLia, TheoryVerdict};
///
/// let x = Var::from_index(0);
/// let mut t = TheoryLia::new();
/// t.assert_atom(&Atom::ge(LinExpr::var(x), LinExpr::constant(int(3))), 0).unwrap();
/// t.assert_atom(&Atom::le(LinExpr::var(x), LinExpr::constant(int(5))), 1).unwrap();
/// match t.check(&Budget::unlimited()) {
///     TheoryVerdict::Feasible(m) => {
///         let v = m.value(x);
///         assert!(v >= int(3) && v <= int(5));
///     }
///     other => panic!("expected feasible, got {other:?}"),
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct TheoryLia {
    simplex: Simplex,
    cols: HashMap<Var, usize>,
    /// Canonical homogeneous expression (as sorted (var, coeff) pairs,
    /// leading coefficient positive) -> slack column.
    slacks: HashMap<Vec<(Var, BigInt)>, usize>,
    /// All asserted atoms with caller tags (used by the rounding
    /// heuristic and the Diophantine equality check).
    asserted: Vec<(Atom, Tag)>,
    max_pivots: u64,
    max_branch_nodes: u64,
    /// Cumulative branch-and-bound nodes explored (statistics).
    branch_nodes: u64,
    /// Cumulative [`backtrack_to`](Self::backtrack_to) calls
    /// (statistics).
    backtracks: u64,
}

/// A snapshot of a [`TheoryLia`] assertion frame, returned by
/// [`TheoryLia::set_backtrack_point`] and consumed by
/// [`TheoryLia::backtrack_to`]. Marks must be popped in LIFO order.
#[derive(Clone, Copy, Debug)]
pub struct TheoryMark {
    simplex: usize,
    asserted: usize,
}

impl TheoryLia {
    /// Creates an empty context.
    pub fn new() -> TheoryLia {
        TheoryLia {
            simplex: Simplex::new(),
            cols: HashMap::new(),
            slacks: HashMap::new(),
            asserted: Vec::new(),
            max_pivots: 200_000,
            max_branch_nodes: 512,
            branch_nodes: 0,
            backtracks: 0,
        }
    }

    /// Takes a backtrack point covering everything asserted so far.
    ///
    /// Columns and slack rows interned below the mark survive a
    /// [`backtrack_to`](Self::backtrack_to) — only bounds (and the
    /// asserted-atom list) are retracted, which is what makes the next
    /// check a warm start on the existing tableau.
    pub fn set_backtrack_point(&mut self) -> TheoryMark {
        TheoryMark {
            simplex: self.simplex.set_backtrack_point(),
            asserted: self.asserted.len(),
        }
    }

    /// Retracts every assertion made since `mark` (LIFO). Interned
    /// columns, slack rows, and the current simplex basis are kept;
    /// see [`set_backtrack_point`](Self::set_backtrack_point).
    pub fn backtrack_to(&mut self, mark: TheoryMark) {
        self.simplex.backtrack_to(mark.simplex);
        self.asserted.truncate(mark.asserted);
        self.backtracks += 1;
    }

    /// Cumulative theory-level backtracks on this context (statistics).
    pub fn num_backtracks(&self) -> u64 {
        self.backtracks
    }

    /// Re-seeds the monotone statistics counters after a pool owner
    /// rebuilds an accreted context, so lifetime totals survive the
    /// rebuild.
    pub(crate) fn restore_stats(&mut self, backtracks: u64, branch_nodes: u64, pivots: u64) {
        self.backtracks = backtracks;
        self.branch_nodes = branch_nodes;
        self.simplex.restore_pivots(pivots);
    }

    /// Number of interned slack rows. Pool owners use this to decide
    /// when an accreting context is worth rebuilding from scratch.
    pub fn num_slacks(&self) -> usize {
        self.slacks.len()
    }

    /// Cumulative branch-and-bound nodes explored by
    /// [`check`](Self::check) calls on this context (statistics).
    pub fn num_branch_nodes(&self) -> u64 {
        self.branch_nodes
    }

    /// Total simplex pivots performed on the base tableau (statistics).
    pub fn num_pivots(&self) -> u64 {
        self.simplex.num_pivots()
    }

    /// Overrides the branch-and-bound node limit (default 512).
    pub fn set_branch_limit(&mut self, nodes: u64) {
        self.max_branch_nodes = nodes;
    }

    fn col_of(&mut self, v: Var) -> usize {
        if let Some(&c) = self.cols.get(&v) {
            return c;
        }
        let c = self.simplex.new_col();
        self.cols.insert(v, c);
        c
    }

    /// Asserts the atom `e ≤ 0` under `tag`.
    ///
    /// # Errors
    ///
    /// Returns the conflicting tags if the atom immediately
    /// contradicts previously asserted atoms' bounds.
    pub fn assert_atom(&mut self, atom: &Atom, tag: Tag) -> Result<(), Conflict> {
        self.asserted.push((atom.clone(), tag));
        if atom.is_truth() {
            return Ok(());
        }
        if atom.is_falsity() {
            // e ≤ 0 with e = positive constant: contradiction by itself.
            return Err(Conflict {
                entries: vec![crate::simplex::FarkasEntry {
                    multiplier: BigRational::one(),
                    tag,
                    kind: crate::simplex::BoundKind::Upper,
                }],
            });
        }
        let e = atom.expr();
        // Homogeneous part + canonical sign.
        let mut homo: Vec<(Var, BigInt)> = e.terms().map(|(v, c)| (v, c.clone())).collect();
        let flipped = homo
            .first()
            .map(|(_, c)| c.is_negative())
            .unwrap_or(false);
        if flipped {
            for (_, c) in &mut homo {
                *c = -&*c;
            }
        }
        let slack = match self.slacks.get(&homo) {
            Some(&s) => s,
            None => {
                let combo: Vec<(usize, BigRational)> = homo
                    .iter()
                    .map(|(v, c)| (self.col_of(*v), BigRational::from(c)))
                    .collect();
                let s = self.simplex.new_slack(&combo);
                self.slacks.insert(homo.clone(), s);
                s
            }
        };
        // e ≤ 0  ⟺  homo_orig ≤ -konst.
        let bound = BigRational::from(-e.constant_term());
        if flipped {
            // -canonical ≤ -konst  ⟺  canonical ≥ konst
            self.simplex.assert_lower(slack, -bound, tag)
        } else {
            self.simplex.assert_upper(slack, bound, tag)
        }
    }

    /// Decides integer feasibility of everything asserted so far.
    pub fn check(&mut self, budget: &Budget) -> TheoryVerdict {
        use linarb_trace::{metrics, Level};
        let mut span = linarb_trace::span(Level::Trace, "smt", "smt.theory_check");
        if !span.active() {
            return self.check_inner(budget);
        }
        let pivots0 = self.simplex.num_pivots();
        let nodes0 = self.branch_nodes;
        let verdict = self.check_inner(budget);
        metrics::counter("smt.simplex_pivots", self.simplex.num_pivots() - pivots0);
        metrics::counter("smt.branch_nodes", self.branch_nodes - nodes0);
        span.record("pivots", self.simplex.num_pivots() - pivots0);
        span.record("branch_nodes", self.branch_nodes - nodes0);
        span.record("verdict", match &verdict {
            TheoryVerdict::Feasible(_) => "feasible",
            TheoryVerdict::Infeasible { .. } => "infeasible",
            TheoryVerdict::Unknown => "unknown",
        });
        verdict
    }

    fn check_inner(&mut self, budget: &Budget) -> TheoryVerdict {
        use linarb_trace::{event, metrics, Level};
        // Diophantine reasoning over the asserted equalities: catches
        // integer-infeasible systems that are rationally feasible
        // (e.g. parity conflicts `2q = x ∧ 2q' = x − 1`), on which
        // branch-and-bound would diverge over unbounded variables.
        if let Some(core) = self.diophantine_conflict() {
            return TheoryVerdict::Infeasible { core, farkas: None };
        }
        // Rational feasibility: a rational conflict is a real core.
        if let Err(conflict) = self.simplex.check(self.max_pivots) {
            if conflict.entries.is_empty() {
                return TheoryVerdict::Unknown;
            }
            return TheoryVerdict::Infeasible { core: conflict.core(), farkas: Some(conflict) };
        }
        // Variables of the *currently asserted* atoms, in first-
        // assertion order. A warm context retains columns interned by
        // since-popped frames; those variables are unconstrained here
        // (their atoms are gone) and their beta values are stale —
        // backtracking restores bounds, not the assignment — so
        // branching on their fractional leftovers would be pure waste,
        // and unbounded waste at that: nothing forces them integral.
        // On a fresh context this order equals interning order, so the
        // offline engine's behavior is unchanged.
        let mut active: Vec<(Var, usize)> = Vec::new();
        let mut seen: std::collections::HashSet<Var> = std::collections::HashSet::new();
        for (a, _) in &self.asserted {
            for (v, _) in a.expr().terms() {
                if seen.insert(v) {
                    if let Some(&col) = self.cols.get(&v) {
                        active.push((v, col));
                    }
                }
            }
        }
        // Branch and bound on fractional structural variables. The
        // frontier is explored breadth-first: on unbounded polyhedra a
        // depth-first "floor" chain can recede forever while the other
        // side holds an integer point one level up.
        let mut queue: std::collections::VecDeque<Simplex> =
            std::collections::VecDeque::from([self.simplex.clone()]);
        let mut nodes = 0u64;
        while let Some(state) = queue.pop_front() {
            nodes += 1;
            self.branch_nodes += 1;
            if nodes > self.max_branch_nodes || budget.exhausted() {
                event!(Level::Debug, "smt", "theory.budget_exhausted", "nodes" => nodes);
                metrics::counter("smt.theory_unknown", 1);
                return TheoryVerdict::Unknown;
            }
            // state is rationally feasible; find a fractional variable.
            let mut fractional: Option<(usize, BigRational)> = None;
            for &(_, col) in &active {
                let val = state.value(col);
                if !val.is_integer() {
                    fractional = Some((col, val));
                    break;
                }
            }
            match fractional {
                None => {
                    // Integer vertex found.
                    let mut m = Model::new();
                    for &(v, col) in &active {
                        let val = state.value(col);
                        debug_assert!(val.is_integer());
                        m.assign(v, val.floor());
                    }
                    return TheoryVerdict::Feasible(m);
                }
                Some((col, val)) => {
                    // Cheap repair: rounding the rational point often
                    // yields an integer model of the asserted atoms.
                    if let Some(m) = self.rounded_model(&state, &active) {
                        return TheoryVerdict::Feasible(m);
                    }
                    let fl = val.floor();
                    // lo branch: col <= floor
                    let mut lo = state.clone();
                    if lo
                        .assert_upper(col, BigRational::from(fl.clone()), INTERNAL_TAG)
                        .is_ok()
                        && lo.check(self.max_pivots).is_ok()
                    {
                        queue.push_back(lo);
                    }
                    // hi branch: col >= floor + 1
                    let mut hi = state;
                    if hi
                        .assert_lower(
                            col,
                            BigRational::from(&fl + &BigInt::one()),
                            INTERNAL_TAG,
                        )
                        .is_ok()
                        && hi.check(self.max_pivots).is_ok()
                    {
                        queue.push_back(hi);
                    }
                }
            }
        }
        // Rationally feasible but no integer point: report with a full
        // core (no rational certificate exists).
        TheoryVerdict::Infeasible { core: Vec::new(), farkas: None }
    }

    /// Integer (Diophantine) reasoning over the asserted *equalities*:
    /// repeatedly substitutes variables with unit coefficients, then
    /// applies the gcd test (`Σaᵢxᵢ = c` with `g = gcd(aᵢ)` requires
    /// `g | c`). Sound but incomplete; returns the union of the tags
    /// of the equalities combined into a violated equation.
    fn diophantine_conflict(&self) -> Option<Vec<Tag>> {
        use linarb_logic::LinExpr;
        // Pair up `e ≤ 0` with `-e ≤ 0` to recover equalities `e = 0`.
        let mut by_expr: HashMap<&LinExpr, Tag> = HashMap::new();
        for (a, tag) in &self.asserted {
            by_expr.entry(a.expr()).or_insert(*tag);
        }
        let mut equations: Vec<(LinExpr, Vec<Tag>)> = Vec::new();
        let mut seen: std::collections::HashSet<LinExpr> = std::collections::HashSet::new();
        for (a, tag) in &self.asserted {
            let e = a.expr();
            let neg = -e;
            if let Some(&other_tag) = by_expr.get(&neg) {
                // canonical orientation: leading coefficient positive
                let leading_neg = e
                    .terms()
                    .next()
                    .map(|(_, c)| c.is_negative())
                    .unwrap_or(false);
                let canon = if leading_neg { neg.clone() } else { e.clone() };
                if seen.insert(canon.clone()) {
                    equations.push((canon, vec![*tag, other_tag]));
                }
            }
        }
        if equations.is_empty() {
            return None;
        }
        // Eliminate unit-coefficient variables.
        for _round in 0..64 {
            // gcd violation?
            for (e, tags) in &equations {
                let g = e.coeff_gcd();
                if !g.is_zero()
                    && !g.is_one()
                    && !e.constant_term().mod_floor(&g).is_zero()
                {
                    let mut core = tags.clone();
                    core.sort_unstable();
                    core.dedup();
                    return Some(core);
                }
                if e.is_constant() && !e.constant_term().is_zero() {
                    let mut core = tags.clone();
                    core.sort_unstable();
                    core.dedup();
                    return Some(core);
                }
            }
            // pick an equation with a ±1 coefficient to substitute
            let mut pick: Option<(usize, Var)> = None;
            'outer: for (i, (e, _)) in equations.iter().enumerate() {
                for (v, c) in e.terms() {
                    if c.is_one() || *c == BigInt::minus_one() {
                        pick = Some((i, v));
                        break 'outer;
                    }
                }
            }
            let (idx, var) = pick?;
            let (e, tags) = equations.swap_remove(idx);
            let coeff = e.coeff(var);
            // e = coeff·var + rest = 0  =>  var = -rest/coeff
            let mut rest = e.clone();
            rest.add_term(var, &-&coeff);
            let solution = if coeff.is_one() { -&rest } else { rest };
            let map: HashMap<Var, LinExpr> = [(var, solution)].into_iter().collect();
            let mut changed = false;
            for (other, other_tags) in &mut equations {
                if !other.coeff(var).is_zero() {
                    *other = other.subst(&map);
                    other_tags.extend(tags.iter().copied());
                    changed = true;
                }
            }
            if !changed && equations.is_empty() {
                return None;
            }
        }
        None
    }

    /// Tries floor- and nearest-rounding of the rational assignment
    /// over the active (currently asserted) variables; returns a model
    /// if either candidate satisfies every asserted atom.
    fn rounded_model(&self, state: &Simplex, active: &[(Var, usize)]) -> Option<Model> {
        let half = BigRational::new(BigInt::one(), BigInt::from(2));
        for nearest in [false, true] {
            let mut m = Model::new();
            for &(v, col) in active {
                let val = state.value(col);
                let rounded = if nearest { (&val + &half).floor() } else { val.floor() };
                m.assign(v, rounded);
            }
            if self.asserted.iter().all(|(a, _)| a.holds(&m)) {
                return Some(m);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::LinExpr;

    fn v(i: u32) -> Var {
        Var::from_index(i)
    }

    fn x() -> LinExpr {
        LinExpr::var(v(0))
    }

    fn y() -> LinExpr {
        LinExpr::var(v(1))
    }

    fn c(k: i64) -> LinExpr {
        LinExpr::constant(int(k))
    }

    fn feasible(t: &mut TheoryLia) -> Model {
        match t.check(&Budget::unlimited()) {
            TheoryVerdict::Feasible(m) => m,
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    fn infeasible_core(t: &mut TheoryLia) -> Vec<Tag> {
        match t.check(&Budget::unlimited()) {
            TheoryVerdict::Infeasible { core, .. } => core,
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn box_model() {
        let mut t = TheoryLia::new();
        t.assert_atom(&Atom::ge(x(), c(2)), 0).unwrap();
        t.assert_atom(&Atom::le(x(), c(2)), 1).unwrap();
        let m = feasible(&mut t);
        assert_eq!(m.value(v(0)), int(2));
    }

    #[test]
    fn shared_slack_for_negation() {
        // x <= 4 and not(x <= 4) i.e. x >= 5: direct bound conflict.
        let mut t = TheoryLia::new();
        let a = Atom::le(x(), c(4));
        t.assert_atom(&a, 0).unwrap();
        let res = t.assert_atom(&a.negate(), 1);
        match res {
            Err(conflict) => assert_eq!(conflict.core(), vec![0, 1]),
            Ok(()) => {
                let core = infeasible_core(&mut t);
                assert_eq!(core, vec![0, 1]);
            }
        }
    }

    #[test]
    fn multi_constraint_core() {
        // x + y <= 1; x >= 1; y >= 1
        let mut t = TheoryLia::new();
        t.assert_atom(&Atom::le(&x() + &y(), c(1)), 0).unwrap();
        t.assert_atom(&Atom::ge(x(), c(1)), 1).unwrap();
        t.assert_atom(&Atom::ge(y(), c(1)), 2).unwrap();
        let core = infeasible_core(&mut t);
        assert_eq!(core, vec![0, 1, 2]);
    }

    #[test]
    fn integrality_via_branching() {
        // 2x + 2y = 5 has rational solutions only after tightening...
        // use 2x + 3y = 5 with x,y >= 0 and x >= 1: x=1,y=1.
        let e = &x().scale(&int(2)) + &y().scale(&int(3));
        let mut t = TheoryLia::new();
        t.assert_atom(&Atom::le(e.clone(), c(5)), 0).unwrap();
        t.assert_atom(&Atom::ge(e.clone(), c(5)), 1).unwrap();
        t.assert_atom(&Atom::ge(x(), c(1)), 2).unwrap();
        t.assert_atom(&Atom::ge(y(), c(0)), 3).unwrap();
        let m = feasible(&mut t);
        let (mx, my) = (m.value(v(0)), m.value(v(1)));
        assert_eq!(&(&mx * &int(2)) + &(&my * &int(3)), int(5));
        assert!(mx >= int(1) && my >= int(0));
    }

    #[test]
    fn integer_infeasible_detected() {
        // 0 <= 3x - 3y - 1 <= 1 has rational solutions (x-y in [1/3, 2/3])
        // but no integer ones.
        let e = &x().scale(&int(3)) - &y().scale(&int(3));
        let mut t = TheoryLia::new();
        // Use non-normalized combination to defeat gcd-tightening:
        // 3x - 3y - 2z = 1 and z = 0 forces x - y = 1/3.
        let z = LinExpr::var(v(2));
        let e2 = &e - &z.scale(&int(2));
        t.assert_atom(&Atom::le(e2.clone(), c(1)), 0).unwrap();
        t.assert_atom(&Atom::ge(e2.clone(), c(1)), 1).unwrap();
        t.assert_atom(&Atom::le(z.clone(), c(0)), 2).unwrap();
        t.assert_atom(&Atom::ge(z, c(0)), 3).unwrap();
        // With x and y unbounded, pure branch-and-bound cannot refute
        // 3(x-y) = 1: it must answer Unknown at the node limit. With
        // bounds on x it becomes a finite search and must be refuted.
        match t.check(&Budget::unlimited()) {
            TheoryVerdict::Infeasible { .. } | TheoryVerdict::Unknown => {}
            other => panic!("expected infeasible/unknown, got {other:?}"),
        }
        let mut t2 = TheoryLia::new();
        let e3 = &(&x().scale(&int(3)) - &y().scale(&int(3))) - &LinExpr::var(v(2)).scale(&int(2));
        t2.assert_atom(&Atom::le(e3.clone(), c(1)), 0).unwrap();
        t2.assert_atom(&Atom::ge(e3.clone(), c(1)), 1).unwrap();
        t2.assert_atom(&Atom::le(LinExpr::var(v(2)), c(0)), 2).unwrap();
        t2.assert_atom(&Atom::ge(LinExpr::var(v(2)), c(0)), 3).unwrap();
        t2.assert_atom(&Atom::ge(x(), c(0)), 4).unwrap();
        t2.assert_atom(&Atom::le(x(), c(3)), 5).unwrap();
        t2.assert_atom(&Atom::ge(y(), c(0)), 6).unwrap();
        t2.assert_atom(&Atom::le(y(), c(3)), 7).unwrap();
        match t2.check(&Budget::unlimited()) {
            TheoryVerdict::Infeasible { .. } => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_direction_still_finds_model() {
        let mut t = TheoryLia::new();
        t.assert_atom(&Atom::ge(&x() - &y(), c(100)), 0).unwrap();
        let m = feasible(&mut t);
        assert!(&m.value(v(0)) - &m.value(v(1)) >= int(100));
    }

    #[test]
    fn trivial_atoms() {
        let mut t = TheoryLia::new();
        t.assert_atom(&Atom::truth(), 0).unwrap();
        assert!(t.assert_atom(&Atom::falsity(), 1).is_err());
    }

    #[test]
    fn many_constraints_consistent() {
        // octagon-ish: |x| <= 10, |y| <= 10, x + y >= 5, x - y <= 2
        let mut t = TheoryLia::new();
        t.assert_atom(&Atom::le(x(), c(10)), 0).unwrap();
        t.assert_atom(&Atom::ge(x(), c(-10)), 1).unwrap();
        t.assert_atom(&Atom::le(y(), c(10)), 2).unwrap();
        t.assert_atom(&Atom::ge(y(), c(-10)), 3).unwrap();
        t.assert_atom(&Atom::ge(&x() + &y(), c(5)), 4).unwrap();
        t.assert_atom(&Atom::le(&x() - &y(), c(2)), 5).unwrap();
        let m = feasible(&mut t);
        let (mx, my) = (m.value(v(0)), m.value(v(1)));
        assert!(&mx + &my >= int(5));
        assert!(&mx - &my <= int(2));
        assert!(mx <= int(10) && mx >= int(-10));
    }

    #[test]
    fn backtrack_retracts_assertions_and_reuses_tableau() {
        let mut t = TheoryLia::new();
        t.assert_atom(&Atom::ge(&x() + &y(), c(4)), 0).unwrap();
        let mark = t.set_backtrack_point();
        t.assert_atom(&Atom::le(x(), c(0)), 1).unwrap();
        t.assert_atom(&Atom::le(y(), c(0)), 2).unwrap();
        let core = infeasible_core(&mut t);
        assert_eq!(core, vec![0, 1, 2]);
        // Slacks interned inside the frame persist across the pop (by
        // design — they are bound-free after it and semantically inert).
        let slacks_interned = t.num_slacks();
        t.backtrack_to(mark);
        assert_eq!(t.num_backtracks(), 1);
        assert_eq!(t.num_slacks(), slacks_interned);
        // Re-asserting a homogeneous part seen before the mark interns
        // nothing new: the x+y slack is reused warm.
        t.assert_atom(&Atom::le(&x() + &y(), c(9)), 3).unwrap();
        assert_eq!(t.num_slacks(), slacks_interned);
        let m = feasible(&mut t);
        let s = &m.value(v(0)) + &m.value(v(1));
        assert!(s >= int(4) && s <= int(9));
    }

    #[test]
    fn backtrack_clears_early_assert_conflict_state() {
        // assert_atom pushes onto `asserted` before it can fail; the
        // mark must clean that up so rounding/diophantine reasoning
        // never sees the retracted atom again.
        let mut t = TheoryLia::new();
        t.assert_atom(&Atom::le(x(), c(4)), 0).unwrap();
        let mark = t.set_backtrack_point();
        assert!(t.assert_atom(&Atom::ge(x(), c(5)), 1).is_err());
        t.backtrack_to(mark);
        t.assert_atom(&Atom::ge(x(), c(4)), 1).unwrap();
        let m = feasible(&mut t);
        assert_eq!(m.value(v(0)), int(4));
    }
}

#[cfg(test)]
mod dio_tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::LinExpr;

    fn v(i: u32) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn parity_conflict_detected_without_branching() {
        // 2q = x  and  2q' = x - 1: rationally feasible, integer-
        // infeasible on unbounded vars; diophantine reasoning must
        // catch it instantly.
        let x = LinExpr::var(v(0));
        let q = LinExpr::var(v(1));
        let qp = LinExpr::var(v(2));
        let mut t = TheoryLia::new();
        let e1 = &q.scale(&int(2)) - &x; // 2q - x = 0
        t.assert_atom(&Atom::le(e1.clone(), LinExpr::zero()), 0).unwrap();
        t.assert_atom(&Atom::ge(e1, LinExpr::zero()), 1).unwrap();
        let e2 = &(&qp.scale(&int(2)) - &x) + &LinExpr::constant(int(1)); // 2q' - x + 1 = 0
        t.assert_atom(&Atom::le(e2.clone(), LinExpr::zero()), 2).unwrap();
        t.assert_atom(&Atom::ge(e2, LinExpr::zero()), 3).unwrap();
        match t.check(&Budget::unlimited()) {
            TheoryVerdict::Infeasible { core, .. } => {
                assert_eq!(core, vec![0, 1, 2, 3]);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn consistent_parities_still_feasible() {
        // 2q = x and 2q' = x - 2 is fine (x even).
        let x = LinExpr::var(v(0));
        let q = LinExpr::var(v(1));
        let qp = LinExpr::var(v(2));
        let mut t = TheoryLia::new();
        let e1 = &q.scale(&int(2)) - &x;
        t.assert_atom(&Atom::le(e1.clone(), LinExpr::zero()), 0).unwrap();
        t.assert_atom(&Atom::ge(e1, LinExpr::zero()), 1).unwrap();
        let e2 = &(&qp.scale(&int(2)) - &x) + &LinExpr::constant(int(2));
        t.assert_atom(&Atom::le(e2.clone(), LinExpr::zero()), 2).unwrap();
        t.assert_atom(&Atom::ge(e2, LinExpr::zero()), 3).unwrap();
        match t.check(&Budget::unlimited()) {
            TheoryVerdict::Feasible(m) => {
                assert!(m.value(v(0)).is_even());
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }
}
