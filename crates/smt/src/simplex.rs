//! Exact general simplex with variable bounds (Dutertre–de Moura).
//!
//! This is the linear-rational-arithmetic engine under the LIA theory
//! solver. Variables are abstract column indices; constraints enter as
//! *bounds* on variables (structural variables or slack variables that
//! stand for linear rows). Infeasibility produces a Farkas certificate
//! naming the bounds involved with positive rational multipliers.
//!
//! Pivot selection follows Bland's rule (smallest index first), which
//! guarantees termination.

use linarb_arith::BigRational;
use std::collections::BTreeMap;

/// Column index of a simplex variable.
pub type ColId = usize;

/// Opaque caller tag identifying the origin of a bound (e.g. the index
/// of an asserted atom). Used to report conflicts/cores.
pub type Tag = usize;

/// Which side of a variable a certificate entry refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundKind {
    /// `x ≤ u`
    Upper,
    /// `x ≥ l`
    Lower,
}

/// One entry of a Farkas infeasibility certificate: `multiplier ×` the
/// bound registered under `tag`.
#[derive(Clone, Debug)]
pub struct FarkasEntry {
    /// Positive rational multiplier.
    pub multiplier: BigRational,
    /// Caller tag of the offending bound.
    pub tag: Tag,
    /// Which side of the bound is involved.
    pub kind: BoundKind,
}

/// An infeasibility certificate: a positive combination of the listed
/// bounds is contradictory (sums to `0 ≤ negative`).
#[derive(Clone, Debug)]
pub struct Conflict {
    /// The certificate entries.
    pub entries: Vec<FarkasEntry>,
}

impl Conflict {
    /// The distinct tags involved (the unsat core).
    pub fn core(&self) -> Vec<Tag> {
        let mut tags: Vec<Tag> = self.entries.iter().map(|e| e.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        tags
    }
}

#[derive(Clone, Debug)]
struct Row {
    basic: ColId,
    /// `basic = Σ coeff · nonbasic`
    coeffs: BTreeMap<ColId, BigRational>,
}

#[derive(Clone, Debug, Default)]
struct Bound {
    value: Option<(BigRational, Tag)>,
}

/// One undo record on the bound trail: the previous value of a bound
/// that [`assert_upper`](Simplex::assert_upper)/
/// [`assert_lower`](Simplex::assert_lower) overwrote.
#[derive(Clone, Debug)]
struct TrailEntry {
    col: ColId,
    kind: BoundKind,
    prev: Option<(BigRational, Tag)>,
}

/// The simplex tableau. Cloneable so branch-and-bound can fork states.
///
/// ```
/// use linarb_arith::{rat, BigRational};
/// use linarb_smt::simplex::Simplex;
///
/// let mut s = Simplex::new();
/// let x = s.new_col();
/// let y = s.new_col();
/// // s1 = x + y
/// let s1 = s.new_slack(&[(x, rat(1, 1)), (y, rat(1, 1))]);
/// s.assert_lower(s1, rat(4, 1), 0).unwrap();
/// s.assert_upper(x, rat(1, 1), 1).unwrap();
/// s.check(10_000).unwrap();
/// assert!(&s.value(x) + &s.value(y) >= rat(4, 1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Simplex {
    rows: Vec<Row>,
    /// col -> row index if basic
    basic_row: Vec<Option<usize>>,
    lower: Vec<Bound>,
    upper: Vec<Bound>,
    beta: Vec<BigRational>,
    pivots: u64,
    /// Undo records for bound overwrites since the first backtrack
    /// point. Recording only starts once a caller takes a point, so
    /// backtrack-free use (e.g. branch-and-bound clones) pays nothing.
    trail: Vec<TrailEntry>,
    recording: bool,
}

impl Simplex {
    /// Creates an empty tableau.
    pub fn new() -> Simplex {
        Simplex::default()
    }

    /// Creates a fresh unbounded column (a structural variable).
    pub fn new_col(&mut self) -> ColId {
        let id = self.beta.len();
        self.beta.push(BigRational::zero());
        self.lower.push(Bound::default());
        self.upper.push(Bound::default());
        self.basic_row.push(None);
        id
    }

    /// Creates a slack column defined as the linear combination
    /// `Σ coeff·col` of existing columns, and makes it basic.
    pub fn new_slack(&mut self, combo: &[(ColId, BigRational)]) -> ColId {
        let s = self.new_col();
        let mut coeffs: BTreeMap<ColId, BigRational> = BTreeMap::new();
        for (col, c) in combo {
            if c.is_zero() {
                continue;
            }
            match self.basic_row[*col] {
                None => {
                    add_coeff(&mut coeffs, *col, c.clone());
                }
                Some(r) => {
                    for (v, cv) in &self.rows[r].coeffs {
                        add_coeff(&mut coeffs, *v, c * cv);
                    }
                }
            }
        }
        let beta: BigRational = coeffs
            .iter()
            .map(|(v, c)| c * &self.beta[*v])
            .sum();
        self.beta[s] = beta;
        self.basic_row[s] = Some(self.rows.len());
        self.rows.push(Row { basic: s, coeffs });
        s
    }

    /// Current value of a column (meaningful after a successful
    /// [`check`](Self::check)).
    pub fn value(&self, col: ColId) -> BigRational {
        self.beta[col].clone()
    }

    /// Total pivots performed (statistics).
    pub fn num_pivots(&self) -> u64 {
        self.pivots
    }

    /// Re-seeds the pivot counter when a pool owner rebuilds the
    /// tableau, keeping the lifetime total monotone.
    pub(crate) fn restore_pivots(&mut self, pivots: u64) {
        self.pivots = pivots;
    }

    /// Number of columns in the tableau (structural + slack).
    pub fn num_cols(&self) -> usize {
        self.beta.len()
    }

    /// Takes a backtrack point: the returned token restores the
    /// current bound set when passed to
    /// [`backtrack_to`](Self::backtrack_to). Also enables trail
    /// recording from here on.
    pub fn set_backtrack_point(&mut self) -> usize {
        self.recording = true;
        self.trail.len()
    }

    /// Undoes every bound assertion made since `point` (a token from
    /// [`set_backtrack_point`](Self::set_backtrack_point)), in reverse
    /// order.
    ///
    /// The basis and the assignment `beta` are deliberately *not*
    /// restored: tableau rows and the beta/row consistency invariant
    /// are bound-independent, so leaving them in place is sound and is
    /// exactly what makes the next [`check`](Self::check) a warm start
    /// — it resumes from the last feasible vertex instead of
    /// re-pivoting from scratch. Slack rows likewise persist; a slack
    /// whose bounds have all been retracted no longer constrains
    /// anything.
    pub fn backtrack_to(&mut self, point: usize) {
        while self.trail.len() > point {
            let e = self.trail.pop().expect("trail entry");
            match e.kind {
                BoundKind::Upper => self.upper[e.col].value = e.prev,
                BoundKind::Lower => self.lower[e.col].value = e.prev,
            }
        }
    }

    /// Asserts `col ≤ bound`. Tighter bounds replace looser ones.
    ///
    /// # Errors
    ///
    /// Returns a [`Conflict`] if the bound contradicts an existing
    /// lower bound.
    pub fn assert_upper(
        &mut self,
        col: ColId,
        bound: BigRational,
        tag: Tag,
    ) -> Result<(), Conflict> {
        if let Some((u, _)) = &self.upper[col].value {
            if *u <= bound {
                return Ok(());
            }
        }
        if let Some((l, ltag)) = &self.lower[col].value {
            if *l > bound {
                return Err(Conflict {
                    entries: vec![
                        FarkasEntry {
                            multiplier: BigRational::one(),
                            tag,
                            kind: BoundKind::Upper,
                        },
                        FarkasEntry {
                            multiplier: BigRational::one(),
                            tag: *ltag,
                            kind: BoundKind::Lower,
                        },
                    ],
                });
            }
        }
        if self.recording {
            self.trail.push(TrailEntry {
                col,
                kind: BoundKind::Upper,
                prev: self.upper[col].value.clone(),
            });
        }
        self.upper[col].value = Some((bound.clone(), tag));
        if self.basic_row[col].is_none() && self.beta[col] > bound {
            self.update_nonbasic(col, bound);
        }
        Ok(())
    }

    /// Asserts `col ≥ bound`. Tighter bounds replace looser ones.
    ///
    /// # Errors
    ///
    /// Returns a [`Conflict`] if the bound contradicts an existing
    /// upper bound.
    pub fn assert_lower(
        &mut self,
        col: ColId,
        bound: BigRational,
        tag: Tag,
    ) -> Result<(), Conflict> {
        if let Some((l, _)) = &self.lower[col].value {
            if *l >= bound {
                return Ok(());
            }
        }
        if let Some((u, utag)) = &self.upper[col].value {
            if *u < bound {
                return Err(Conflict {
                    entries: vec![
                        FarkasEntry {
                            multiplier: BigRational::one(),
                            tag,
                            kind: BoundKind::Lower,
                        },
                        FarkasEntry {
                            multiplier: BigRational::one(),
                            tag: *utag,
                            kind: BoundKind::Upper,
                        },
                    ],
                });
            }
        }
        if self.recording {
            self.trail.push(TrailEntry {
                col,
                kind: BoundKind::Lower,
                prev: self.lower[col].value.clone(),
            });
        }
        self.lower[col].value = Some((bound.clone(), tag));
        if self.basic_row[col].is_none() && self.beta[col] < bound {
            self.update_nonbasic(col, bound);
        }
        Ok(())
    }

    fn update_nonbasic(&mut self, col: ColId, v: BigRational) {
        let delta = &v - &self.beta[col];
        self.beta[col] = v;
        for row in &self.rows {
            if let Some(c) = row.coeffs.get(&col) {
                let b = row.basic;
                self.beta[b] = &self.beta[b] + &(c * &delta);
            }
        }
    }

    /// Restores bound-consistency by pivoting. On success every column
    /// respects its bounds; values are read via [`value`](Self::value).
    ///
    /// # Errors
    ///
    /// Returns a Farkas [`Conflict`] if the constraints are infeasible
    /// over the rationals, or a pseudo-conflict with an empty entry
    /// list if `max_pivots` is exceeded (callers treat it as unknown —
    /// with Bland's rule this cannot happen, but the guard keeps the
    /// engine total).
    pub fn check(&mut self, max_pivots: u64) -> Result<(), Conflict> {
        let start = self.pivots;
        loop {
            if self.pivots - start > max_pivots {
                return Err(Conflict { entries: Vec::new() });
            }
            // Bland: smallest basic variable violating its bounds.
            let mut violated: Option<(ColId, bool)> = None; // (col, below_lower)
            for row in &self.rows {
                let b = row.basic;
                if let Some((l, _)) = &self.lower[b].value {
                    if self.beta[b] < *l {
                        if violated.map_or(true, |(v, _)| b < v) {
                            violated = Some((b, true));
                        }
                        continue;
                    }
                }
                if let Some((u, _)) = &self.upper[b].value {
                    if self.beta[b] > *u {
                        if violated.map_or(true, |(v, _)| b < v) {
                            violated = Some((b, false));
                        }
                    }
                }
            }
            let (xi, below) = match violated {
                None => return Ok(()),
                Some(v) => v,
            };
            let row_idx = self.basic_row[xi].expect("violated var is basic");
            // Find entering variable (Bland: smallest col index).
            let mut enter: Option<ColId> = None;
            for (&xj, a) in &self.rows[row_idx].coeffs {
                let can_move = if below == a.is_positive() {
                    // increase xj (below & a>0) or (above & a<0 → still increase)
                    match &self.upper[xj].value {
                        Some((u, _)) => self.beta[xj] < *u,
                        None => true,
                    }
                } else {
                    match &self.lower[xj].value {
                        Some((l, _)) => self.beta[xj] > *l,
                        None => true,
                    }
                };
                if can_move {
                    enter = Some(xj);
                    break; // BTreeMap iterates in increasing col order
                }
            }
            let xj = match enter {
                Some(x) => x,
                None => {
                    // Infeasible: build the Farkas certificate from the row.
                    let mut entries = Vec::new();
                    let (own_kind, own_tag) = if below {
                        let (_, t) = self.lower[xi].value.as_ref().expect("violated");
                        (BoundKind::Lower, *t)
                    } else {
                        let (_, t) = self.upper[xi].value.as_ref().expect("violated");
                        (BoundKind::Upper, *t)
                    };
                    entries.push(FarkasEntry {
                        multiplier: BigRational::one(),
                        tag: own_tag,
                        kind: own_kind,
                    });
                    for (&v, a) in &self.rows[row_idx].coeffs {
                        // xi below lower: each a>0 var is at upper, a<0 at lower.
                        // xi above upper: mirrored.
                        let at_upper = below == a.is_positive();
                        let (kind, tag) = if at_upper {
                            let (_, t) =
                                self.upper[v].value.as_ref().expect("blocked at upper");
                            (BoundKind::Upper, *t)
                        } else {
                            let (_, t) =
                                self.lower[v].value.as_ref().expect("blocked at lower");
                            (BoundKind::Lower, *t)
                        };
                        entries.push(FarkasEntry { multiplier: a.abs(), tag, kind });
                    }
                    return Err(Conflict { entries });
                }
            };
            let target = if below {
                self.lower[xi].value.as_ref().expect("violated").0.clone()
            } else {
                self.upper[xi].value.as_ref().expect("violated").0.clone()
            };
            self.pivot_and_update(row_idx, xi, xj, target);
        }
    }

    fn pivot_and_update(&mut self, row_idx: usize, xi: ColId, xj: ColId, v: BigRational) {
        self.pivots += 1;
        let a = self.rows[row_idx].coeffs[&xj].clone();
        let theta = &(&v - &self.beta[xi]) / &a;
        self.beta[xi] = v;
        self.beta[xj] = &self.beta[xj] + &theta;
        for (k, row) in self.rows.iter().enumerate() {
            if k == row_idx {
                continue;
            }
            if let Some(c) = row.coeffs.get(&xj) {
                let b = row.basic;
                self.beta[b] = &self.beta[b] + &(c * &theta);
            }
        }
        // Rewrite pivot row: xi = Σ a_k x_k  with pivot var xj:
        //   xj = (1/a)·xi − Σ_{k≠j} (a_k/a)·x_k
        let mut old = std::mem::take(&mut self.rows[row_idx].coeffs);
        let aj = old.remove(&xj).expect("pivot coeff");
        debug_assert_eq!(aj, a);
        let inv = a.recip();
        let mut new_coeffs: BTreeMap<ColId, BigRational> = BTreeMap::new();
        new_coeffs.insert(xi, inv.clone());
        for (k, c) in &old {
            new_coeffs.insert(*k, -&(c * &inv));
        }
        self.rows[row_idx].basic = xj;
        self.rows[row_idx].coeffs = new_coeffs;
        self.basic_row[xj] = Some(row_idx);
        self.basic_row[xi] = None;
        // Substitute xj into all other rows.
        let pivot_coeffs = self.rows[row_idx].coeffs.clone();
        for k in 0..self.rows.len() {
            if k == row_idx {
                continue;
            }
            if let Some(c) = self.rows[k].coeffs.remove(&xj) {
                for (v2, cv) in &pivot_coeffs {
                    let add = &c * cv;
                    add_coeff(&mut self.rows[k].coeffs, *v2, add);
                }
            }
        }
    }
}

fn add_coeff(map: &mut BTreeMap<ColId, BigRational>, col: ColId, c: BigRational) {
    if c.is_zero() {
        return;
    }
    use std::collections::btree_map::Entry;
    match map.entry(col) {
        Entry::Vacant(e) => {
            e.insert(c);
        }
        Entry::Occupied(mut e) => {
            let sum = &*e.get() + &c;
            if sum.is_zero() {
                e.remove();
            } else {
                *e.get_mut() = sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::rat;

    const MAX: u64 = 100_000;

    #[test]
    fn feasible_box() {
        let mut s = Simplex::new();
        let x = s.new_col();
        let y = s.new_col();
        s.assert_lower(x, rat(1, 1), 0).unwrap();
        s.assert_upper(x, rat(3, 1), 1).unwrap();
        s.assert_lower(y, rat(-2, 1), 2).unwrap();
        s.assert_upper(y, rat(2, 1), 3).unwrap();
        s.check(MAX).unwrap();
        assert!(s.value(x) >= rat(1, 1) && s.value(x) <= rat(3, 1));
        assert!(s.value(y) >= rat(-2, 1) && s.value(y) <= rat(2, 1));
    }

    #[test]
    fn direct_bound_conflict() {
        let mut s = Simplex::new();
        let x = s.new_col();
        s.assert_lower(x, rat(5, 1), 7).unwrap();
        let err = s.assert_upper(x, rat(4, 1), 9).unwrap_err();
        let core = err.core();
        assert_eq!(core, vec![7, 9]);
    }

    #[test]
    fn row_propagation() {
        // x + y >= 4, x <= 1  ==>  y >= 3
        let mut s = Simplex::new();
        let x = s.new_col();
        let y = s.new_col();
        let sum = s.new_slack(&[(x, rat(1, 1)), (y, rat(1, 1))]);
        s.assert_lower(sum, rat(4, 1), 0).unwrap();
        s.assert_upper(x, rat(1, 1), 1).unwrap();
        s.check(MAX).unwrap();
        assert!(&s.value(x) + &s.value(y) >= rat(4, 1));
        assert!(s.value(x) <= rat(1, 1));
    }

    #[test]
    fn infeasible_system_with_certificate() {
        // x + y <= 1, x >= 1, y >= 1  infeasible
        let mut s = Simplex::new();
        let x = s.new_col();
        let y = s.new_col();
        let sum = s.new_slack(&[(x, rat(1, 1)), (y, rat(1, 1))]);
        s.assert_upper(sum, rat(1, 1), 10).unwrap();
        s.assert_lower(x, rat(1, 1), 11).unwrap();
        s.assert_lower(y, rat(1, 1), 12).unwrap();
        let conflict = s.check(MAX).unwrap_err();
        let core = conflict.core();
        assert_eq!(core, vec![10, 11, 12]);
        // Multipliers must all be positive.
        assert!(conflict.entries.iter().all(|e| e.multiplier.is_positive()));
    }

    #[test]
    fn chained_rows() {
        // a = x + y; b = x - y; a <= 2; b <= 0; x >= 1  => y in [1, ..]
        let mut s = Simplex::new();
        let x = s.new_col();
        let y = s.new_col();
        let a = s.new_slack(&[(x, rat(1, 1)), (y, rat(1, 1))]);
        let b = s.new_slack(&[(x, rat(1, 1)), (y, rat(-1, 1))]);
        s.assert_upper(a, rat(2, 1), 0).unwrap();
        s.assert_upper(b, rat(0, 1), 1).unwrap();
        s.assert_lower(x, rat(1, 1), 2).unwrap();
        s.check(MAX).unwrap();
        let (vx, vy) = (s.value(x), s.value(y));
        assert!(&vx + &vy <= rat(2, 1));
        assert!(&vx - &vy <= rat(0, 1));
        assert!(vx >= rat(1, 1));
    }

    #[test]
    fn slack_over_basic_vars() {
        // Force pivoting so a later slack is built over basic vars.
        let mut s = Simplex::new();
        let x = s.new_col();
        let y = s.new_col();
        let a = s.new_slack(&[(x, rat(2, 1)), (y, rat(1, 1))]);
        s.assert_lower(a, rat(10, 1), 0).unwrap();
        s.check(MAX).unwrap();
        // now define b = x + y after pivots
        let b = s.new_slack(&[(x, rat(1, 1)), (y, rat(1, 1))]);
        s.assert_upper(b, rat(3, 1), 1).unwrap();
        s.check(MAX).unwrap();
        let (vx, vy) = (s.value(x), s.value(y));
        assert!(&(&vx + &vx) + &vy >= rat(10, 1));
        assert!(&vx + &vy <= rat(3, 1));
    }

    #[test]
    fn equality_via_two_bounds() {
        // x + 2y = 7 and x - y = 1  =>  x = 3, y = 2
        let mut s = Simplex::new();
        let x = s.new_col();
        let y = s.new_col();
        let e1 = s.new_slack(&[(x, rat(1, 1)), (y, rat(2, 1))]);
        let e2 = s.new_slack(&[(x, rat(1, 1)), (y, rat(-1, 1))]);
        s.assert_lower(e1, rat(7, 1), 0).unwrap();
        s.assert_upper(e1, rat(7, 1), 1).unwrap();
        s.assert_lower(e2, rat(1, 1), 2).unwrap();
        s.assert_upper(e2, rat(1, 1), 3).unwrap();
        s.check(MAX).unwrap();
        assert_eq!(s.value(x), rat(3, 1));
        assert_eq!(s.value(y), rat(2, 1));
    }

    #[test]
    fn redundant_weaker_bounds_ignored() {
        let mut s = Simplex::new();
        let x = s.new_col();
        s.assert_upper(x, rat(5, 1), 0).unwrap();
        s.assert_upper(x, rat(9, 1), 1).unwrap(); // weaker, ignored
        s.assert_lower(x, rat(6, 1), 2).unwrap_err(); // conflicts with 5
    }

    #[test]
    fn backtrack_restores_bounds_and_warm_starts() {
        // Assert a box, take a point, tighten into infeasibility, pop:
        // the original box must be feasible again, and the check after
        // the pop starts from the previous vertex (warm basis).
        let mut s = Simplex::new();
        let x = s.new_col();
        let y = s.new_col();
        let sum = s.new_slack(&[(x, rat(1, 1)), (y, rat(1, 1))]);
        s.assert_lower(sum, rat(4, 1), 0).unwrap();
        s.assert_upper(x, rat(3, 1), 1).unwrap();
        s.check(MAX).unwrap();
        let point = s.set_backtrack_point();
        s.assert_upper(y, rat(0, 1), 2).unwrap();
        s.assert_upper(x, rat(1, 1), 3).unwrap();
        let conflict = s.check(MAX).unwrap_err();
        assert_eq!(conflict.core(), vec![0, 2, 3]);
        s.backtrack_to(point);
        s.check(MAX).unwrap();
        assert!(&s.value(x) + &s.value(y) >= rat(4, 1));
        assert!(s.value(x) <= rat(3, 1));
        // The retracted y <= 0 is gone: y >= 2 would contradict it,
        // but now asserts cleanly and the system stays feasible.
        s.assert_lower(y, rat(2, 1), 4).unwrap();
        s.check(MAX).unwrap();
        assert!(s.value(y) >= rat(2, 1));
    }

    #[test]
    fn backtrack_restores_overwritten_tighter_bounds() {
        // Overwriting a bound twice inside one frame must restore the
        // original value (not the intermediate one) on pop.
        let mut s = Simplex::new();
        let x = s.new_col();
        s.assert_upper(x, rat(10, 1), 0).unwrap();
        let point = s.set_backtrack_point();
        s.assert_upper(x, rat(5, 1), 1).unwrap();
        s.assert_upper(x, rat(2, 1), 2).unwrap();
        // Looser-than-current assertions are no-ops and must not
        // corrupt the trail.
        s.assert_upper(x, rat(7, 1), 3).unwrap();
        s.backtrack_to(point);
        // Back to x <= 10: lower bound of 8 is now consistent.
        s.assert_lower(x, rat(8, 1), 4).unwrap();
        s.check(MAX).unwrap();
        assert!(s.value(x) >= rat(8, 1) && s.value(x) <= rat(10, 1));
    }

    #[test]
    fn nested_backtrack_points_pop_in_order() {
        let mut s = Simplex::new();
        let x = s.new_col();
        let p0 = s.set_backtrack_point();
        s.assert_lower(x, rat(1, 1), 0).unwrap();
        let p1 = s.set_backtrack_point();
        s.assert_lower(x, rat(6, 1), 1).unwrap();
        assert!(s.assert_upper(x, rat(4, 1), 2).is_err());
        s.backtrack_to(p1);
        s.assert_upper(x, rat(4, 1), 2).unwrap();
        s.check(MAX).unwrap();
        assert!(s.value(x) >= rat(1, 1) && s.value(x) <= rat(4, 1));
        s.backtrack_to(p0);
        // All bounds retracted: x unconstrained again.
        s.assert_upper(x, rat(-100, 1), 3).unwrap();
        s.check(MAX).unwrap();
    }

    #[test]
    fn farkas_certificate_is_valid_combination() {
        // 2x + 3y <= 6 ; x >= 3 ; y >= 1  infeasible:
        // 1*(2x+3y>=?) ... validate: sum of multipliers * inequalities
        // yields contradiction. We check: m0*(upper) + m1*(lower as
        // -x<=-3) + m2*(-y<=-1) cancels variables.
        let mut s = Simplex::new();
        let x = s.new_col();
        let y = s.new_col();
        let e = s.new_slack(&[(x, rat(2, 1)), (y, rat(3, 1))]);
        s.assert_upper(e, rat(6, 1), 0).unwrap();
        s.assert_lower(x, rat(3, 1), 1).unwrap();
        s.assert_lower(y, rat(1, 1), 2).unwrap();
        let c = s.check(MAX).unwrap_err();
        // Reconstruct the combination over (x, y):
        // Upper on e contributes m*(2,3); Lower on x contributes m*(-1,0); etc.
        let mut cx = rat(0, 1);
        let mut cy = rat(0, 1);
        let mut rhs = rat(0, 1);
        for entry in &c.entries {
            let (vecx, vecy, b) = match (entry.tag, entry.kind) {
                (0, BoundKind::Upper) => (rat(2, 1), rat(3, 1), rat(6, 1)),
                (1, BoundKind::Lower) => (rat(-1, 1), rat(0, 1), rat(-3, 1)),
                (2, BoundKind::Lower) => (rat(0, 1), rat(-1, 1), rat(-1, 1)),
                other => panic!("unexpected certificate entry {other:?}"),
            };
            cx = &cx + &(&entry.multiplier * &vecx);
            cy = &cy + &(&entry.multiplier * &vecy);
            rhs = &rhs + &(&entry.multiplier * &b);
        }
        assert!(cx.is_zero() && cy.is_zero(), "coefficients must cancel");
        assert!(rhs.is_negative(), "0 <= negative required, got {rhs}");
    }
}
