//! Tseitin transformation: formulas to CNF over atom variables.

use linarb_logic::{Atom, Formula};
use linarb_sat::{BVar, Lit, SatSolver};
use std::collections::HashMap;

/// Encodes [`Formula`]s into a [`SatSolver`], maintaining the mapping
/// between linear atoms and boolean variables.
///
/// Atoms are canonicalized by polarity (leading coefficient positive)
/// so an atom and its integer negation share one boolean variable.
///
/// Subformulas are hash-consed: structurally equal `And`/`Or` (and
/// `True`/`False`) nodes share one gate variable, so re-encoding a
/// formula fragment — the common case when an incremental context
/// re-asserts a predicate interpretation that only partially changed —
/// reuses the existing gates and their clauses instead of growing the
/// solver.
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    /// The underlying SAT solver.
    pub sat: SatSolver,
    atom_vars: HashMap<Atom, BVar>,
    /// Interning order, which is also variable-index order (atom
    /// variables are allocated monotonically). Lets [`atoms`](Self::atoms)
    /// iterate in index order without sorting — it runs on every
    /// DPLL(T) round.
    atom_order: Vec<(Atom, BVar)>,
    formula_lits: HashMap<Formula, Lit>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder {
            sat: SatSolver::new(),
            atom_vars: HashMap::new(),
            atom_order: Vec::new(),
            formula_lits: HashMap::new(),
        }
    }

    /// The literal representing `atom` (allocating a variable for its
    /// canonical polarity on first use).
    pub fn atom_lit(&mut self, atom: &Atom) -> Lit {
        let leading_negative = atom
            .expr()
            .terms()
            .next()
            .map(|(_, c)| c.is_negative())
            .unwrap_or(false);
        let (canonical, flipped) = if leading_negative {
            (atom.negate(), true)
        } else {
            (atom.clone(), false)
        };
        let var = match self.atom_vars.get(&canonical) {
            Some(&v) => v,
            None => {
                let v = self.sat.new_var();
                self.atom_order.push((canonical.clone(), v));
                self.atom_vars.insert(canonical, v);
                v
            }
        };
        var.lit(!flipped)
    }

    /// Encodes `f` and returns a literal equivalent to it; the caller
    /// typically asserts it with a unit clause. Structurally equal
    /// subformulas return the same literal (hash-consing).
    pub fn encode(&mut self, f: &Formula) -> Lit {
        // Atoms and negations need no gate; only gate-allocating
        // shapes go through the cache.
        match f {
            Formula::Atom(a) => return self.atom_lit(a),
            Formula::Mod(_) => {
                panic!("Mod atoms must be lowered before encoding (see check_sat)")
            }
            Formula::Not(g) => return self.encode(g).negated(),
            _ => {}
        }
        if let Some(&l) = self.formula_lits.get(f) {
            return l;
        }
        let out = match f {
            Formula::True => {
                let v = self.sat.new_var();
                self.sat.add_clause(&[v.positive()]);
                v.positive()
            }
            Formula::False => {
                let v = self.sat.new_var();
                self.sat.add_clause(&[v.positive()]);
                v.negative()
            }
            Formula::And(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|g| self.encode(g)).collect();
                let out = self.sat.new_var().positive();
                // out -> each lit
                for &l in &lits {
                    self.sat.add_clause(&[out.negated(), l]);
                }
                // all lits -> out
                let mut clause: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
                clause.push(out);
                self.sat.add_clause(&clause);
                out
            }
            Formula::Or(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|g| self.encode(g)).collect();
                let out = self.sat.new_var().positive();
                // each lit -> out
                for &l in &lits {
                    self.sat.add_clause(&[l.negated(), out]);
                }
                // out -> some lit
                let mut clause: Vec<Lit> = lits.clone();
                clause.push(out.negated());
                self.sat.add_clause(&clause);
                out
            }
            Formula::Atom(_) | Formula::Mod(_) | Formula::Not(_) => unreachable!(),
        };
        self.formula_lits.insert(f.clone(), out);
        out
    }

    /// Iterates over the registered (canonical) atoms and their
    /// boolean variables, in variable-index order. The order is load-
    /// bearing: it fixes the sequence of theory assertions, and with it
    /// the theory's conflict cores and models — iterating the hash map
    /// directly would make whole solver trajectories differ from run
    /// to run.
    pub fn atoms(&self) -> impl Iterator<Item = (&Atom, BVar)> + '_ {
        self.atom_order.iter().map(|(a, v)| (a, *v))
    }

    /// Number of distinct canonical atoms registered.
    pub fn num_atoms(&self) -> usize {
        self.atom_vars.len()
    }

    /// Number of hash-consed gate subformulas registered.
    pub fn num_subformulas(&self) -> usize {
        self.formula_lits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_arith::int;
    use linarb_logic::{LinExpr, Var};
    use linarb_sat::SatResult;

    fn le(i: u32, k: i64) -> Formula {
        Formula::from(Atom::le(
            LinExpr::var(Var::from_index(i)),
            LinExpr::constant(int(k)),
        ))
    }

    #[test]
    fn atom_and_negation_share_variable() {
        let mut enc = Encoder::new();
        let a = Atom::le(LinExpr::var(Var::from_index(0)), LinExpr::constant(int(4)));
        let la = enc.atom_lit(&a);
        let ln = enc.atom_lit(&a.negate());
        assert_eq!(la.var(), ln.var());
        assert_eq!(la, ln.negated());
        assert_eq!(enc.num_atoms(), 1);
    }

    #[test]
    fn encode_and_or_is_satisfiable_consistently() {
        // (a /\ b) \/ ~a : satisfiable; assert root and solve.
        let mut enc = Encoder::new();
        let f = Formula::or(vec![
            Formula::and(vec![le(0, 1), le(1, 1)]),
            Formula::not(le(0, 1)),
        ]);
        let root = enc.encode(&f);
        enc.sat.add_clause(&[root]);
        assert_eq!(enc.sat.solve(), SatResult::Sat);
    }

    #[test]
    fn reencoding_shares_gates_and_variables() {
        let mut enc = Encoder::new();
        let f = Formula::or(vec![
            Formula::and(vec![le(0, 1), le(1, 1)]),
            Formula::not(le(0, 1)),
        ]);
        let l1 = enc.encode(&f);
        let vars = enc.sat.num_vars();
        let gates = enc.num_subformulas();
        // structurally identical formula: same literal, nothing new
        let l2 = enc.encode(&f.clone());
        assert_eq!(l1, l2);
        assert_eq!(enc.sat.num_vars(), vars);
        assert_eq!(enc.num_subformulas(), gates);
        // a formula sharing the And-subtree reuses its gate
        let g = Formula::or(vec![
            Formula::and(vec![le(0, 1), le(1, 1)]),
            le(2, 5),
        ]);
        let before = enc.num_subformulas();
        enc.encode(&g);
        assert_eq!(enc.num_subformulas(), before + 1, "only the new Or gate");
    }

    #[test]
    fn negation_needs_no_gate() {
        let mut enc = Encoder::new();
        let a = le(0, 3);
        let l = enc.encode(&a);
        let n = enc.encode(&Formula::not(a));
        assert_eq!(n, l.negated());
        assert_eq!(enc.num_subformulas(), 0);
    }

    #[test]
    fn encode_contradiction_unsat() {
        // a /\ ~a with the shared-variable canonicalization
        let mut enc = Encoder::new();
        let a = le(0, 4);
        let f = Formula::and(vec![a.clone(), Formula::not(a)]);
        let root = enc.encode(&f);
        enc.sat.add_clause(&[root]);
        assert_eq!(enc.sat.solve(), SatResult::Unsat);
    }
}
