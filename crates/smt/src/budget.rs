//! Solve budgets: wall-clock deadlines and search-effort caps threaded
//! through every engine.
//!
//! The evaluation harness imposes the paper's per-benchmark timeouts by
//! handing each solver a [`Budget`]; engines poll
//! [`Budget::exhausted`] at loop heads and surface
//! `Unknown`/`Timeout` results instead of being killed. The budget also
//! carries the CDCL conflict cap for a single SAT search, replacing the
//! solver's former hard-coded constant.

use std::time::{Duration, Instant};

/// The CDCL conflict cap used when a budget doesn't override it.
pub(crate) const DEFAULT_CONFLICT_LIMIT: u64 = 500_000;

/// A wall-clock + search-effort budget for a solving task.
///
/// ```
/// use linarb_smt::Budget;
/// use std::time::Duration;
///
/// let b = Budget::unlimited();
/// assert!(!b.exhausted());
///
/// let t = Budget::timeout(Duration::from_millis(0));
/// assert!(t.exhausted());
///
/// let capped = Budget::unlimited().with_conflict_limit(Some(1_000));
/// assert_eq!(capped.conflict_limit(), Some(1_000));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    conflict_limit: Option<u64>,
}

impl Budget {
    /// A budget that never expires (but still applies the default
    /// CDCL conflict cap as a runaway guard).
    pub fn unlimited() -> Budget {
        Budget { deadline: None, conflict_limit: Some(DEFAULT_CONFLICT_LIMIT) }
    }

    /// A budget expiring `d` from now.
    pub fn timeout(d: Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + d),
            conflict_limit: Some(DEFAULT_CONFLICT_LIMIT),
        }
    }

    /// A budget expiring at the given instant.
    pub fn until(deadline: Instant) -> Budget {
        Budget {
            deadline: Some(deadline),
            conflict_limit: Some(DEFAULT_CONFLICT_LIMIT),
        }
    }

    /// Overrides the per-search CDCL conflict cap. `None` removes the
    /// cap entirely: a SAT search then runs until it answers or the
    /// wall-clock deadline trips.
    pub fn with_conflict_limit(mut self, limit: Option<u64>) -> Budget {
        self.conflict_limit = limit;
        self
    }

    /// The conflict cap a single CDCL search may spend before
    /// reporting `Unknown`.
    pub fn conflict_limit(&self) -> Option<u64> {
        self.conflict_limit
    }

    /// Returns `true` once the deadline has passed.
    pub fn exhausted(&self) -> bool {
        match self.deadline {
            None => false,
            Some(d) => Instant::now() >= d,
        }
    }

    /// Time left, or `None` for unlimited budgets.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), None);
        assert_eq!(b.conflict_limit(), Some(DEFAULT_CONFLICT_LIMIT));
    }

    #[test]
    fn conflict_limit_override() {
        let b = Budget::unlimited().with_conflict_limit(Some(7));
        assert_eq!(b.conflict_limit(), Some(7));
        let un = Budget::timeout(Duration::from_secs(1)).with_conflict_limit(None);
        assert_eq!(un.conflict_limit(), None);
    }

    #[test]
    fn timeout_expires() {
        let b = Budget::timeout(Duration::from_millis(0));
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        let later = Budget::timeout(Duration::from_secs(3600));
        assert!(!later.exhausted());
        assert!(later.remaining().unwrap() > Duration::from_secs(3000));
    }
}
