//! Solve budgets: wall-clock deadlines and search-effort caps threaded
//! through every engine.
//!
//! The evaluation harness imposes the paper's per-benchmark timeouts by
//! handing each solver a [`Budget`]; engines poll
//! [`Budget::exhausted`] at loop heads and surface
//! `Unknown`/`Timeout` results instead of being killed. The budget also
//! carries the CDCL conflict cap for a single SAT search, replacing the
//! solver's former hard-coded constant.
//!
//! # Global conflict budgets and parallelism
//!
//! The per-search conflict cap alone is wrong under parallel clause
//! checking: N concurrent oracle checks would each get the full cap,
//! multiplying the effective budget by N. A budget can therefore also
//! carry a **shared** conflict pool ([`Budget::with_global_conflict_limit`]):
//! clones of the budget (one per worker) all draw down the same atomic
//! counter, engines charge the conflicts each SAT search actually spent
//! ([`Budget::charge_conflicts`]), and cap the next search at whatever
//! remains ([`Budget::effective_conflict_limit`]). When the pool runs
//! dry, [`Budget::exhausted`] trips and every worker winds down.
//!
//! Note that *when* a shared pool trips is inherently timing-dependent
//! (it depends on how conflicts interleave across workers), so
//! deterministic runs — tests, differential comparisons — should use
//! per-search caps only. [`Budget::unlimited`] and friends never attach
//! a pool; it is strictly opt-in.
//!
//! # Cooperative cancellation
//!
//! The portfolio driver races several engines under one budget and
//! needs to stop the losers the moment a winner is certified. A budget
//! can therefore carry a shared [`CancelToken`]
//! ([`Budget::with_cancel_token`]): flipping the token makes
//! [`Budget::exhausted`] (and its alias [`Budget::should_stop`]) return
//! `true` on every clone, so each engine winds down at its next poll
//! site — the same poll sites that already observe deadlines and
//! drained conflict pools. Cancellation is level-triggered and
//! irreversible for the life of the token.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The CDCL conflict cap used when a budget doesn't override it.
pub(crate) const DEFAULT_CONFLICT_LIMIT: u64 = 500_000;

/// A conflict allowance shared by every clone of a budget.
#[derive(Debug)]
struct ConflictPool {
    limit: u64,
    used: AtomicU64,
}

/// A shared cancellation flag for cooperative early termination.
///
/// Cheap to clone (one `Arc`); once [`cancel`](CancelToken::cancel) is
/// called every budget carrying this token reports
/// [`exhausted`](Budget::exhausted), and every engine polling it winds
/// down. Used by the portfolio driver to stop losing engines promptly.
///
/// ```
/// use linarb_smt::{Budget, CancelToken};
/// let token = CancelToken::new();
/// let b = Budget::unlimited().with_cancel_token(token.clone());
/// assert!(!b.should_stop());
/// token.cancel();
/// assert!(b.should_stop());
/// assert!(b.exhausted());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flips the flag; every budget sharing this token is now
    /// exhausted. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has [`cancel`](CancelToken::cancel) been called?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A wall-clock + search-effort budget for a solving task.
///
/// Cloning a budget is cheap and shares the global conflict pool (if
/// any); the deadline and per-search cap are plain values.
///
/// ```
/// use linarb_smt::Budget;
/// use std::time::Duration;
///
/// let b = Budget::unlimited();
/// assert!(!b.exhausted());
///
/// let t = Budget::timeout(Duration::from_millis(0));
/// assert!(t.exhausted());
///
/// let capped = Budget::unlimited().with_conflict_limit(Some(1_000));
/// assert_eq!(capped.conflict_limit(), Some(1_000));
///
/// // A shared pool is drawn down by every clone.
/// let shared = Budget::unlimited().with_global_conflict_limit(100);
/// let worker = shared.clone();
/// worker.charge_conflicts(100);
/// assert!(shared.exhausted());
/// ```
#[derive(Clone, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    conflict_limit: Option<u64>,
    pool: Option<Arc<ConflictPool>>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget that never expires (but still applies the default
    /// CDCL conflict cap as a runaway guard).
    pub fn unlimited() -> Budget {
        Budget {
            deadline: None,
            conflict_limit: Some(DEFAULT_CONFLICT_LIMIT),
            pool: None,
            cancel: None,
        }
    }

    /// A budget expiring `d` from now.
    pub fn timeout(d: Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + d),
            conflict_limit: Some(DEFAULT_CONFLICT_LIMIT),
            pool: None,
            cancel: None,
        }
    }

    /// A budget expiring at the given instant.
    pub fn until(deadline: Instant) -> Budget {
        Budget {
            deadline: Some(deadline),
            conflict_limit: Some(DEFAULT_CONFLICT_LIMIT),
            pool: None,
            cancel: None,
        }
    }

    /// Overrides the per-search CDCL conflict cap. `None` removes the
    /// cap entirely: a SAT search then runs until it answers or the
    /// wall-clock deadline trips.
    pub fn with_conflict_limit(mut self, limit: Option<u64>) -> Budget {
        self.conflict_limit = limit;
        self
    }

    /// Attaches a **shared** conflict allowance: all clones of this
    /// budget (e.g. one per parallel worker) draw down the same
    /// counter, so the total conflicts spent across concurrent checks
    /// is bounded by `limit` — not `limit × workers`. Replaces any
    /// previously attached pool with a fresh one.
    pub fn with_global_conflict_limit(mut self, limit: u64) -> Budget {
        self.pool = Some(Arc::new(ConflictPool { limit, used: AtomicU64::new(0) }));
        self
    }

    /// Attaches a shared [`CancelToken`]: once the token is cancelled
    /// (typically by a racing engine that produced a certified
    /// verdict), this budget and every clone of it report
    /// [`exhausted`](Budget::exhausted). Replaces any previously
    /// attached token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// A copy of this budget with the cancellation token stripped.
    /// The portfolio driver certificate-checks a winner *after*
    /// cancelling the losers; the check must keep running under the
    /// original deadline even though the shared token has flipped.
    pub fn without_cancel(&self) -> Budget {
        let mut b = self.clone();
        b.cancel = None;
        b
    }

    /// Was this budget cancelled through its token? (`false` without
    /// one; deadline and conflict-pool exhaustion are *not* reported
    /// here — use [`exhausted`](Budget::exhausted) for the union.)
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The per-search conflict cap (ignores the shared pool).
    pub fn conflict_limit(&self) -> Option<u64> {
        self.conflict_limit
    }

    /// The cap the *next* SAT search should run under: the per-search
    /// cap clamped to what's left in the shared pool. Engines should
    /// re-read this before every search, since concurrent workers may
    /// have drained the pool in the meantime.
    pub fn effective_conflict_limit(&self) -> Option<u64> {
        match (self.conflict_limit, self.global_conflicts_remaining()) {
            (Some(per), Some(rem)) => Some(per.min(rem)),
            (per, rem) => per.or(rem),
        }
    }

    /// Records `n` conflicts spent against the shared pool (no-op
    /// without one).
    pub fn charge_conflicts(&self, n: u64) {
        if let Some(pool) = &self.pool {
            pool.used.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Conflicts left in the shared pool, or `None` when no pool is
    /// attached.
    pub fn global_conflicts_remaining(&self) -> Option<u64> {
        self.pool
            .as_ref()
            .map(|p| p.limit.saturating_sub(p.used.load(Ordering::Relaxed)))
    }

    /// Total conflicts charged to the shared pool so far (0 without
    /// one).
    pub fn global_conflicts_used(&self) -> u64 {
        self.pool.as_ref().map(|p| p.used.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Returns `true` once the deadline has passed, the shared
    /// conflict pool has run dry, or the cancellation token (if any)
    /// has been flipped.
    pub fn exhausted(&self) -> bool {
        if self.cancelled() {
            return true;
        }
        if self.global_conflicts_remaining() == Some(0) {
            return true;
        }
        match self.deadline {
            None => false,
            Some(d) => Instant::now() >= d,
        }
    }

    /// Alias for [`exhausted`](Budget::exhausted), named for inner-loop
    /// poll sites: engines call `budget.should_stop()` at every
    /// unbounded loop head so portfolio cancellation is prompt.
    #[inline]
    pub fn should_stop(&self) -> bool {
        self.exhausted()
    }

    /// Time left, or `None` for unlimited budgets.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), None);
        assert_eq!(b.conflict_limit(), Some(DEFAULT_CONFLICT_LIMIT));
        assert_eq!(b.global_conflicts_remaining(), None);
        assert_eq!(b.effective_conflict_limit(), Some(DEFAULT_CONFLICT_LIMIT));
    }

    #[test]
    fn conflict_limit_override() {
        let b = Budget::unlimited().with_conflict_limit(Some(7));
        assert_eq!(b.conflict_limit(), Some(7));
        let un = Budget::timeout(Duration::from_secs(1)).with_conflict_limit(None);
        assert_eq!(un.conflict_limit(), None);
    }

    #[test]
    fn timeout_expires() {
        let b = Budget::timeout(Duration::from_millis(0));
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        let later = Budget::timeout(Duration::from_secs(3600));
        assert!(!later.exhausted());
        assert!(later.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn shared_pool_is_drawn_down_by_clones() {
        let b = Budget::unlimited()
            .with_conflict_limit(Some(100))
            .with_global_conflict_limit(150);
        let w1 = b.clone();
        let w2 = b.clone();
        // Per-search cap wins while the pool is fuller than it.
        assert_eq!(b.effective_conflict_limit(), Some(100));
        w1.charge_conflicts(90);
        // 60 left globally: the next search is clamped below its
        // per-search cap.
        assert_eq!(w2.effective_conflict_limit(), Some(60));
        assert!(!b.exhausted());
        w2.charge_conflicts(60);
        assert_eq!(b.global_conflicts_used(), 150);
        assert_eq!(b.effective_conflict_limit(), Some(0));
        assert!(b.exhausted(), "a drained pool exhausts every clone");
        assert!(w1.exhausted());
    }

    #[test]
    fn pool_overdraw_saturates() {
        let b = Budget::unlimited().with_global_conflict_limit(10);
        b.charge_conflicts(25);
        assert_eq!(b.global_conflicts_remaining(), Some(0));
        assert_eq!(b.global_conflicts_used(), 25);
        assert!(b.exhausted());
    }

    #[test]
    fn budget_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Budget>();
        assert_send_sync::<CancelToken>();
    }

    #[test]
    fn cancel_token_trips_every_clone() {
        let token = CancelToken::new();
        let a = Budget::unlimited().with_cancel_token(token.clone());
        let b = a.clone();
        assert!(!a.exhausted() && !b.should_stop() && !a.cancelled());
        token.cancel();
        assert!(a.cancelled() && b.cancelled());
        assert!(a.exhausted() && b.exhausted());
        assert!(a.should_stop() && b.should_stop());
        // idempotent
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancellation_is_independent_of_other_limits() {
        let token = CancelToken::new();
        let b = Budget::timeout(Duration::from_secs(3600))
            .with_global_conflict_limit(1_000)
            .with_cancel_token(token.clone());
        assert!(!b.exhausted());
        token.cancel();
        assert!(b.exhausted(), "cancel wins even with time and conflicts left");
        assert_eq!(b.global_conflicts_remaining(), Some(1_000));
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }
}
