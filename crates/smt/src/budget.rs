//! Solve budgets: wall-clock deadlines and search-effort caps threaded
//! through every engine.
//!
//! The evaluation harness imposes the paper's per-benchmark timeouts by
//! handing each solver a [`Budget`]; engines poll
//! [`Budget::exhausted`] at loop heads and surface
//! `Unknown`/`Timeout` results instead of being killed. The budget also
//! carries the CDCL conflict cap for a single SAT search, replacing the
//! solver's former hard-coded constant.
//!
//! # Global conflict budgets and parallelism
//!
//! The per-search conflict cap alone is wrong under parallel clause
//! checking: N concurrent oracle checks would each get the full cap,
//! multiplying the effective budget by N. A budget can therefore also
//! carry a **shared** conflict pool ([`Budget::with_global_conflict_limit`]):
//! clones of the budget (one per worker) all draw down the same atomic
//! counter, engines charge the conflicts each SAT search actually spent
//! ([`Budget::charge_conflicts`]), and cap the next search at whatever
//! remains ([`Budget::effective_conflict_limit`]). When the pool runs
//! dry, [`Budget::exhausted`] trips and every worker winds down.
//!
//! Note that *when* a shared pool trips is inherently timing-dependent
//! (it depends on how conflicts interleave across workers), so
//! deterministic runs — tests, differential comparisons — should use
//! per-search caps only. [`Budget::unlimited`] and friends never attach
//! a pool; it is strictly opt-in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The CDCL conflict cap used when a budget doesn't override it.
pub(crate) const DEFAULT_CONFLICT_LIMIT: u64 = 500_000;

/// A conflict allowance shared by every clone of a budget.
#[derive(Debug)]
struct ConflictPool {
    limit: u64,
    used: AtomicU64,
}

/// A wall-clock + search-effort budget for a solving task.
///
/// Cloning a budget is cheap and shares the global conflict pool (if
/// any); the deadline and per-search cap are plain values.
///
/// ```
/// use linarb_smt::Budget;
/// use std::time::Duration;
///
/// let b = Budget::unlimited();
/// assert!(!b.exhausted());
///
/// let t = Budget::timeout(Duration::from_millis(0));
/// assert!(t.exhausted());
///
/// let capped = Budget::unlimited().with_conflict_limit(Some(1_000));
/// assert_eq!(capped.conflict_limit(), Some(1_000));
///
/// // A shared pool is drawn down by every clone.
/// let shared = Budget::unlimited().with_global_conflict_limit(100);
/// let worker = shared.clone();
/// worker.charge_conflicts(100);
/// assert!(shared.exhausted());
/// ```
#[derive(Clone, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    conflict_limit: Option<u64>,
    pool: Option<Arc<ConflictPool>>,
}

impl Budget {
    /// A budget that never expires (but still applies the default
    /// CDCL conflict cap as a runaway guard).
    pub fn unlimited() -> Budget {
        Budget {
            deadline: None,
            conflict_limit: Some(DEFAULT_CONFLICT_LIMIT),
            pool: None,
        }
    }

    /// A budget expiring `d` from now.
    pub fn timeout(d: Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + d),
            conflict_limit: Some(DEFAULT_CONFLICT_LIMIT),
            pool: None,
        }
    }

    /// A budget expiring at the given instant.
    pub fn until(deadline: Instant) -> Budget {
        Budget {
            deadline: Some(deadline),
            conflict_limit: Some(DEFAULT_CONFLICT_LIMIT),
            pool: None,
        }
    }

    /// Overrides the per-search CDCL conflict cap. `None` removes the
    /// cap entirely: a SAT search then runs until it answers or the
    /// wall-clock deadline trips.
    pub fn with_conflict_limit(mut self, limit: Option<u64>) -> Budget {
        self.conflict_limit = limit;
        self
    }

    /// Attaches a **shared** conflict allowance: all clones of this
    /// budget (e.g. one per parallel worker) draw down the same
    /// counter, so the total conflicts spent across concurrent checks
    /// is bounded by `limit` — not `limit × workers`. Replaces any
    /// previously attached pool with a fresh one.
    pub fn with_global_conflict_limit(mut self, limit: u64) -> Budget {
        self.pool = Some(Arc::new(ConflictPool { limit, used: AtomicU64::new(0) }));
        self
    }

    /// The per-search conflict cap (ignores the shared pool).
    pub fn conflict_limit(&self) -> Option<u64> {
        self.conflict_limit
    }

    /// The cap the *next* SAT search should run under: the per-search
    /// cap clamped to what's left in the shared pool. Engines should
    /// re-read this before every search, since concurrent workers may
    /// have drained the pool in the meantime.
    pub fn effective_conflict_limit(&self) -> Option<u64> {
        match (self.conflict_limit, self.global_conflicts_remaining()) {
            (Some(per), Some(rem)) => Some(per.min(rem)),
            (per, rem) => per.or(rem),
        }
    }

    /// Records `n` conflicts spent against the shared pool (no-op
    /// without one).
    pub fn charge_conflicts(&self, n: u64) {
        if let Some(pool) = &self.pool {
            pool.used.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Conflicts left in the shared pool, or `None` when no pool is
    /// attached.
    pub fn global_conflicts_remaining(&self) -> Option<u64> {
        self.pool
            .as_ref()
            .map(|p| p.limit.saturating_sub(p.used.load(Ordering::Relaxed)))
    }

    /// Total conflicts charged to the shared pool so far (0 without
    /// one).
    pub fn global_conflicts_used(&self) -> u64 {
        self.pool.as_ref().map(|p| p.used.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Returns `true` once the deadline has passed or the shared
    /// conflict pool has run dry.
    pub fn exhausted(&self) -> bool {
        if self.global_conflicts_remaining() == Some(0) {
            return true;
        }
        match self.deadline {
            None => false,
            Some(d) => Instant::now() >= d,
        }
    }

    /// Time left, or `None` for unlimited budgets.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), None);
        assert_eq!(b.conflict_limit(), Some(DEFAULT_CONFLICT_LIMIT));
        assert_eq!(b.global_conflicts_remaining(), None);
        assert_eq!(b.effective_conflict_limit(), Some(DEFAULT_CONFLICT_LIMIT));
    }

    #[test]
    fn conflict_limit_override() {
        let b = Budget::unlimited().with_conflict_limit(Some(7));
        assert_eq!(b.conflict_limit(), Some(7));
        let un = Budget::timeout(Duration::from_secs(1)).with_conflict_limit(None);
        assert_eq!(un.conflict_limit(), None);
    }

    #[test]
    fn timeout_expires() {
        let b = Budget::timeout(Duration::from_millis(0));
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        let later = Budget::timeout(Duration::from_secs(3600));
        assert!(!later.exhausted());
        assert!(later.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn shared_pool_is_drawn_down_by_clones() {
        let b = Budget::unlimited()
            .with_conflict_limit(Some(100))
            .with_global_conflict_limit(150);
        let w1 = b.clone();
        let w2 = b.clone();
        // Per-search cap wins while the pool is fuller than it.
        assert_eq!(b.effective_conflict_limit(), Some(100));
        w1.charge_conflicts(90);
        // 60 left globally: the next search is clamped below its
        // per-search cap.
        assert_eq!(w2.effective_conflict_limit(), Some(60));
        assert!(!b.exhausted());
        w2.charge_conflicts(60);
        assert_eq!(b.global_conflicts_used(), 150);
        assert_eq!(b.effective_conflict_limit(), Some(0));
        assert!(b.exhausted(), "a drained pool exhausts every clone");
        assert!(w1.exhausted());
    }

    #[test]
    fn pool_overdraw_saturates() {
        let b = Budget::unlimited().with_global_conflict_limit(10);
        b.charge_conflicts(25);
        assert_eq!(b.global_conflicts_remaining(), Some(0));
        assert_eq!(b.global_conflicts_used(), 25);
        assert!(b.exhausted());
    }

    #[test]
    fn budget_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Budget>();
    }
}
