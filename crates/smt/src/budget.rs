//! Solve budgets: wall-clock deadlines threaded through every engine.
//!
//! The evaluation harness imposes the paper's per-benchmark timeouts by
//! handing each solver a [`Budget`]; engines poll
//! [`Budget::exhausted`] at loop heads and surface
//! `Unknown`/`Timeout` results instead of being killed.

use std::time::{Duration, Instant};

/// A wall-clock budget for a solving task.
///
/// ```
/// use linarb_smt::Budget;
/// use std::time::Duration;
///
/// let b = Budget::unlimited();
/// assert!(!b.exhausted());
///
/// let t = Budget::timeout(Duration::from_millis(0));
/// assert!(t.exhausted());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
}

impl Budget {
    /// A budget that never expires.
    pub fn unlimited() -> Budget {
        Budget { deadline: None }
    }

    /// A budget expiring `d` from now.
    pub fn timeout(d: Duration) -> Budget {
        Budget { deadline: Some(Instant::now() + d) }
    }

    /// A budget expiring at the given instant.
    pub fn until(deadline: Instant) -> Budget {
        Budget { deadline: Some(deadline) }
    }

    /// Returns `true` once the deadline has passed.
    pub fn exhausted(&self) -> bool {
        match self.deadline {
            None => false,
            Some(d) => Instant::now() >= d,
        }
    }

    /// Time left, or `None` for unlimited budgets.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn timeout_expires() {
        let b = Budget::timeout(Duration::from_millis(0));
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        let later = Budget::timeout(Duration::from_secs(3600));
        assert!(!later.exhausted());
        assert!(later.remaining().unwrap() > Duration::from_secs(3000));
    }
}
