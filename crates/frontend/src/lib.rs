//! Mini-C frontend for the linarb CHC solver — the stand-in for the
//! paper's SeaHorn/LLVM pipeline.
//!
//! The crate provides a small C-like language ([`parse_program`]) and
//! verification-condition generation into Constrained Horn Clauses
//! ([`generate_chc`]), with the same clause shapes SeaHorn emits for
//! the paper's benchmarks: loop-head invariant predicates, function
//! summary predicates (non-linear CHCs for multi-call recursion like
//! `fibo`), and goal clauses per `assert`.
//!
//! # Examples
//!
//! ```
//! use linarb_frontend::{parse_program, generate_chc};
//!
//! let prog = parse_program(r#"
//!     void main() {
//!         int x = 1; int y = 0;
//!         while (*) { x = x + y; y = y + 1; }
//!         assert(x >= y);
//!     }
//! "#)?;
//! let sys = generate_chc(&prog)?;
//! assert!(sys.is_recursive());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod ast;
pub mod canon;
mod interp;
mod parser;
mod vcgen;

pub use ast::{CmpOp, Cond, Expr, Function, Program, Stmt};
pub use canon::{canonicalize, Canon};
pub use interp::{execute, ExecOutcome, NondetScript};
pub use parser::{parse_program, ParseError};
pub use vcgen::{generate_chc, generate_chc_with, VcConfig, VcError};

/// Parses and compiles a mini-C source to CHCs in one step.
///
/// # Errors
///
/// Returns a boxed [`ParseError`] or [`VcError`].
pub fn compile(src: &str) -> Result<linarb_logic::ChcSystem, Box<dyn std::error::Error>> {
    let prog = parse_program(src)?;
    Ok(generate_chc(&prog)?)
}
