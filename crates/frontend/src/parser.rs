//! Lexer and recursive-descent parser for mini-C.

use crate::ast::{CmpOp, Cond, Expr, Function, Program, Stmt};
use std::fmt;

/// A mini-C parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the offending token.
    pub line: usize,
    msg: String,
}

impl ParseError {
    fn new(line: usize, msg: impl Into<String>) -> ParseError {
        ParseError { line, msg: msg.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Punct(&'static str),
}

struct Lexer {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

const PUNCTS: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "->", "(", ")", "{", "}", ";", ",", "=", "<", ">", "+",
    "-", "*", "/", "%", "!",
];

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: i64 = src[start..i]
                .parse()
                .map_err(|_| ParseError::new(line, "integer literal overflow"))?;
            out.push((Tok::Num(n), line));
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push((Tok::Ident(src[start..i].to_string()), line));
            continue;
        }
        let mut matched = false;
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push((Tok::Punct(p), line));
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(ParseError::new(line, format!("unexpected character `{c}`")));
        }
    }
    Ok(out)
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, p: &'static str) -> bool {
        if self.peek() == Some(&Tok::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.eat(p) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.line(),
                format!("expected `{p}`, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError::new(self.line(), format!("expected identifier, found {other:?}"))),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

/// Parses a mini-C program.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line on malformed input.
///
/// ```
/// let src = r#"
///     void main() {
///         int x = 1; int y = 0;
///         while (*) { x = x + y; y = y + 1; }
///         assert(x >= y);
///     }
/// "#;
/// let prog = linarb_frontend::parse_program(src)?;
/// assert_eq!(prog.functions.len(), 1);
/// # Ok::<(), linarb_frontend::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut lx = Lexer { toks, pos: 0 };
    let mut functions = Vec::new();
    while lx.peek().is_some() {
        functions.push(parse_function(&mut lx)?);
    }
    Ok(Program { functions, source_lines: src.lines().filter(|l| !l.trim().is_empty()).count() })
}

fn parse_function(lx: &mut Lexer) -> Result<Function, ParseError> {
    let returns_value = if lx.eat_kw("int") {
        true
    } else if lx.eat_kw("void") {
        false
    } else {
        return Err(ParseError::new(lx.line(), "expected `int` or `void` function"));
    };
    let name = lx.expect_ident()?;
    lx.expect("(")?;
    let mut params = Vec::new();
    if !lx.eat(")") {
        loop {
            if !lx.eat_kw("int") {
                return Err(ParseError::new(lx.line(), "expected `int` parameter"));
            }
            params.push(lx.expect_ident()?);
            if lx.eat(")") {
                break;
            }
            lx.expect(",")?;
        }
    }
    let body = parse_block(lx)?;
    Ok(Function { name, params, returns_value, body })
}

fn parse_block(lx: &mut Lexer) -> Result<Vec<Stmt>, ParseError> {
    lx.expect("{")?;
    let mut stmts = Vec::new();
    while !lx.eat("}") {
        if lx.peek().is_none() {
            return Err(ParseError::new(lx.line(), "unterminated block"));
        }
        stmts.push(parse_stmt(lx)?);
    }
    Ok(stmts)
}

fn parse_stmt(lx: &mut Lexer) -> Result<Stmt, ParseError> {
    if lx.eat_kw("int") {
        let name = lx.expect_ident()?;
        let init = if lx.eat("=") { Some(parse_expr(lx)?) } else { None };
        lx.expect(";")?;
        return Ok(Stmt::Decl(name, init));
    }
    if lx.eat_kw("if") {
        lx.expect("(")?;
        let cond = parse_cond(lx)?;
        lx.expect(")")?;
        let then = parse_block_or_stmt(lx)?;
        let els = if lx.eat_kw("else") { parse_block_or_stmt(lx)? } else { Vec::new() };
        return Ok(Stmt::If(cond, then, els));
    }
    if lx.eat_kw("while") {
        lx.expect("(")?;
        let cond = parse_cond(lx)?;
        lx.expect(")")?;
        let body = parse_block_or_stmt(lx)?;
        return Ok(Stmt::While(cond, body));
    }
    if lx.eat_kw("assert") {
        lx.expect("(")?;
        let cond = parse_cond(lx)?;
        lx.expect(")")?;
        lx.expect(";")?;
        return Ok(Stmt::Assert(cond));
    }
    if lx.eat_kw("assume") {
        lx.expect("(")?;
        let cond = parse_cond(lx)?;
        lx.expect(")")?;
        lx.expect(";")?;
        return Ok(Stmt::Assume(cond));
    }
    if lx.eat_kw("return") {
        if lx.eat(";") {
            return Ok(Stmt::Return(None));
        }
        let e = parse_expr(lx)?;
        lx.expect(";")?;
        return Ok(Stmt::Return(Some(e)));
    }
    // assignment or expression statement
    if let Some(Tok::Ident(name)) = lx.peek().cloned() {
        if lx.toks.get(lx.pos + 1).map(|(t, _)| t) == Some(&Tok::Punct("=")) {
            lx.pos += 2;
            let e = parse_expr(lx)?;
            lx.expect(";")?;
            return Ok(Stmt::Assign(name, e));
        }
    }
    let e = parse_expr(lx)?;
    lx.expect(";")?;
    Ok(Stmt::Expr(e))
}

fn parse_block_or_stmt(lx: &mut Lexer) -> Result<Vec<Stmt>, ParseError> {
    if lx.peek() == Some(&Tok::Punct("{")) {
        parse_block(lx)
    } else {
        Ok(vec![parse_stmt(lx)?])
    }
}

// Conditions: || over && over unary over comparison.
fn parse_cond(lx: &mut Lexer) -> Result<Cond, ParseError> {
    let mut lhs = parse_cond_and(lx)?;
    while lx.eat("||") {
        let rhs = parse_cond_and(lx)?;
        lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_cond_and(lx: &mut Lexer) -> Result<Cond, ParseError> {
    let mut lhs = parse_cond_unary(lx)?;
    while lx.eat("&&") {
        let rhs = parse_cond_unary(lx)?;
        lhs = Cond::And(Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_cond_unary(lx: &mut Lexer) -> Result<Cond, ParseError> {
    if lx.eat("!") {
        return Ok(Cond::Not(Box::new(parse_cond_unary(lx)?)));
    }
    // `(` could open a nested condition or an arithmetic expression;
    // try condition first by scanning for a comparison at depth 0.
    if lx.peek() == Some(&Tok::Punct("(")) && cond_ahead(lx) {
        lx.expect("(")?;
        let c = parse_cond(lx)?;
        lx.expect(")")?;
        return Ok(c);
    }
    if lx.eat_kw("true") {
        return Ok(Cond::Const(true));
    }
    if lx.eat_kw("false") {
        return Ok(Cond::Const(false));
    }
    // `*` alone = nondeterministic condition
    if lx.peek() == Some(&Tok::Punct("*")) {
        lx.pos += 1;
        return Ok(Cond::Nondet);
    }
    let lhs = parse_expr(lx)?;
    let op = match lx.next() {
        Some(Tok::Punct("==")) => CmpOp::Eq,
        Some(Tok::Punct("!=")) => CmpOp::Ne,
        Some(Tok::Punct("<")) => CmpOp::Lt,
        Some(Tok::Punct("<=")) => CmpOp::Le,
        Some(Tok::Punct(">")) => CmpOp::Gt,
        Some(Tok::Punct(">=")) => CmpOp::Ge,
        other => {
            return Err(ParseError::new(
                lx.line(),
                format!("expected comparison operator, found {other:?}"),
            ))
        }
    };
    let rhs = parse_expr(lx)?;
    Ok(Cond::Cmp(op, lhs, rhs))
}

/// Lookahead: does the parenthesized group at the cursor contain a
/// top-level-or-nested boolean operator (making it a condition rather
/// than an arithmetic sub-expression)?
fn cond_ahead(lx: &Lexer) -> bool {
    let mut depth = 0usize;
    for (t, _) in &lx.toks[lx.pos..] {
        match t {
            Tok::Punct("(") => depth += 1,
            Tok::Punct(")") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return false;
                }
            }
            Tok::Punct("==" | "!=" | "<" | "<=" | ">" | ">=" | "&&" | "||" | "!") => {
                return true
            }
            _ => {}
        }
    }
    false
}

// Expressions: + - over * / % over unary over atoms.
fn parse_expr(lx: &mut Lexer) -> Result<Expr, ParseError> {
    let mut lhs = parse_term(lx)?;
    loop {
        if lx.eat("+") {
            let rhs = parse_term(lx)?;
            lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
        } else if lx.eat("-") {
            let rhs = parse_term(lx)?;
            lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_term(lx: &mut Lexer) -> Result<Expr, ParseError> {
    let mut lhs = parse_unary(lx)?;
    loop {
        if lx.eat("*") {
            let rhs = parse_unary(lx)?;
            lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
        } else if lx.eat("/") {
            let rhs = parse_unary(lx)?;
            lhs = Expr::Div(Box::new(lhs), Box::new(rhs));
        } else if lx.eat("%") {
            let rhs = parse_unary(lx)?;
            lhs = Expr::Mod(Box::new(lhs), Box::new(rhs));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_unary(lx: &mut Lexer) -> Result<Expr, ParseError> {
    if lx.eat("-") {
        return Ok(Expr::Neg(Box::new(parse_unary(lx)?)));
    }
    match lx.next() {
        Some(Tok::Num(n)) => Ok(Expr::Lit(n)),
        Some(Tok::Punct("*")) => Ok(Expr::Nondet),
        Some(Tok::Punct("(")) => {
            let e = parse_expr(lx)?;
            lx.expect(")")?;
            Ok(e)
        }
        Some(Tok::Ident(name)) => {
            if name == "nondet" {
                lx.expect("(")?;
                lx.expect(")")?;
                return Ok(Expr::Nondet);
            }
            if lx.peek() == Some(&Tok::Punct("(")) {
                lx.pos += 1;
                let mut args = Vec::new();
                if !lx.eat(")") {
                    loop {
                        args.push(parse_expr(lx)?);
                        if lx.eat(")") {
                            break;
                        }
                        lx.expect(",")?;
                    }
                }
                return Ok(Expr::Call(name, args));
            }
            Ok(Expr::Var(name))
        }
        other => Err(ParseError::new(lx.line(), format!("expected expression, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig1_program() {
        let src = r#"
            void main() {
                int x = 1; int y = 0;
                while (*) { x = x + y; y = y + 1; }
                assert(x >= y);
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.functions.len(), 1);
        let main = p.function("main").unwrap();
        assert!(!main.returns_value);
        assert_eq!(main.body.len(), 4);
        assert!(matches!(main.body[2], Stmt::While(Cond::Nondet, _)));
    }

    #[test]
    fn parses_fibo() {
        let src = r#"
            int fibo(int x) {
                if (x < 1) { return 0; }
                else if (x == 1) { return 1; }
                else { return fibo(x - 1) + fibo(x - 2); }
            }
            void main() {
                int n = nondet();
                assert(fibo(n) >= n - 1);
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.functions.len(), 2);
        let f = p.function("fibo").unwrap();
        assert!(f.returns_value);
        assert_eq!(f.params, vec!["x"]);
    }

    #[test]
    fn parses_mod_and_boolean_conditions() {
        let src = r#"
            void main() {
                int i = 0; int x = 0; int y = 0; int n = *;
                while (i < n) {
                    i = i + 1; x = x + 1;
                    if (i % 2 == 0) { y = y + 1; }
                }
                assert(i % 2 != 0 || x == 2 * y);
            }
        "#;
        let p = parse_program(src).unwrap();
        let main = p.function("main").unwrap();
        assert!(matches!(main.body.last(), Some(Stmt::Assert(Cond::Or(_, _)))));
    }

    #[test]
    fn parses_nested_parenthesized_conditions() {
        let src = r#"
            void main() {
                int x = 0; int y = 1;
                if ((x < y && y > 0) || !(x == 0)) { x = (x + 1) * 2; }
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn error_carries_line() {
        let src = "void main() {\n  int x = ;\n}";
        let e = parse_program(src).unwrap_err();
        assert!(e.line >= 2, "line {} should point at or after the bad token", e.line);
    }

    #[test]
    fn rejects_unknown_chars() {
        assert!(parse_program("void main() { int x = 1 @ 2; }").is_err());
    }

    #[test]
    fn comments_ignored() {
        let src = r#"
            // line comment
            void main() {
                /* block
                   comment */
                int x = 1;
                assert(x == 1);
            }
        "#;
        assert!(parse_program(src).is_ok());
    }
}
