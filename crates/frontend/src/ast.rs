//! Abstract syntax of mini-C.
//!
//! Mini-C covers the constructs exercised by the paper's benchmarks:
//! integer variables, nondeterminism (`nondet()` / `*`), full control
//! flow (`if`/`else`, `while`), `assert`/`assume`, and (mutually)
//! recursive integer functions with multiple call sites per
//! expression. Multiplication, division and modulus are restricted to
//! constant operands so that verification conditions stay in linear
//! integer arithmetic.

use std::fmt;

/// A complete program: a set of functions, one of which is `main`.
#[derive(Clone, Debug)]
pub struct Program {
    /// All function definitions, `main` included.
    pub functions: Vec<Function>,
    /// Number of source lines (the paper's `#L` statistic).
    pub source_lines: usize,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names (all `int`).
    pub params: Vec<String>,
    /// `true` if the function returns an `int` (otherwise `void`).
    pub returns_value: bool,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `int x;` or `int x = e;`
    Decl(String, Option<Expr>),
    /// `x = e;`
    Assign(String, Expr),
    /// `if (c) { .. } else { .. }` (else optional)
    If(Cond, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { .. }`
    While(Cond, Vec<Stmt>),
    /// `assert(c);`
    Assert(Cond),
    /// `assume(c);`
    Assume(Cond),
    /// `return e;` (or bare `return;` in void functions)
    Return(Option<Expr>),
    /// `e;` — expression statement (for side-effecting calls)
    Expr(Expr),
}

/// Conditions: boolean combinations of comparisons, or pure
/// nondeterminism (`*`).
#[derive(Clone, Debug)]
pub enum Cond {
    /// Nondeterministic choice.
    Nondet,
    /// `e1 op e2`
    Cmp(CmpOp, Expr, Expr),
    /// `c1 && c2`
    And(Box<Cond>, Box<Cond>),
    /// `c1 || c2`
    Or(Box<Cond>, Box<Cond>),
    /// `!c`
    Not(Box<Cond>),
    /// `true` / `false`
    Const(bool),
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Integer expressions.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Lit(i64),
    /// Variable reference.
    Var(String),
    /// `nondet()` / `*`
    Nondet,
    /// `e1 + e2`
    Add(Box<Expr>, Box<Expr>),
    /// `e1 - e2`
    Sub(Box<Expr>, Box<Expr>),
    /// Unary `-e`
    Neg(Box<Expr>),
    /// `e1 * e2` (at least one side must be constant)
    Mul(Box<Expr>, Box<Expr>),
    /// `e / k` for a positive constant `k` (floor semantics)
    Div(Box<Expr>, Box<Expr>),
    /// `e % k` for a positive constant `k` (result in `[0, k)`)
    Mod(Box<Expr>, Box<Expr>),
    /// Function call `f(e, …)`
    Call(String, Vec<Expr>),
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}
