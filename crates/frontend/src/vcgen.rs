//! Verification-condition generation: mini-C → Constrained Horn
//! Clauses.
//!
//! The encoding follows SeaHorn's scheme:
//!
//! * one **summary predicate** `f(args…, ret)` per `int` function,
//!   over-approximating its input/output relation (so recursive
//!   functions become recursive CHCs, possibly non-linear — `fibo`
//!   produces two body occurrences);
//! * one **loop predicate** per `while` head over the variables in
//!   scope (the classic cut-point encoding);
//! * `assert` statements become **query clauses** whose head is the
//!   asserted formula;
//! * `%`/`/` by positive constants are lowered to fresh
//!   quotient/remainder variables with defining constraints;
//! * path-sensitive symbolic execution with **join predicates** when
//!   the number of simultaneous paths exceeds a bound, so large
//!   branchy programs stay polynomial.

use crate::ast::{CmpOp, Cond, Expr, Function, Program, Stmt};
use linarb_arith::BigInt;
use linarb_logic::{Atom, ChcSystem, Formula, LinExpr, PredApp, PredId, Var};
use std::collections::HashMap;
use std::fmt;

/// VC generation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcError {
    msg: String,
}

impl VcError {
    fn new(msg: impl Into<String>) -> VcError {
        VcError { msg: msg.into() }
    }
}

impl fmt::Display for VcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC generation error: {}", self.msg)
    }
}

impl std::error::Error for VcError {}

/// Options for VC generation.
#[derive(Clone, Copy, Debug)]
pub struct VcConfig {
    /// Maximum simultaneous symbolic paths before a join predicate is
    /// introduced.
    pub max_paths: usize,
}

impl Default for VcConfig {
    fn default() -> Self {
        VcConfig { max_paths: 8 }
    }
}

/// Generates the CHC system of a program with default options.
///
/// # Errors
///
/// Returns [`VcError`] for non-linear arithmetic, calls to undefined
/// or `void` functions in expression position, use of undeclared
/// variables, and `int` functions that can fall off the end without
/// returning.
pub fn generate_chc(prog: &Program) -> Result<ChcSystem, VcError> {
    generate_chc_with(prog, VcConfig::default())
}

/// Generates the CHC system of a program.
///
/// # Errors
///
/// See [`generate_chc`].
pub fn generate_chc_with(prog: &Program, config: VcConfig) -> Result<ChcSystem, VcError> {
    let mut g = VcGen {
        prog,
        sys: ChcSystem::new(),
        summaries: HashMap::new(),
        config,
        counter: 0,
    };
    // Declare summaries first so mutual recursion works.
    for f in &prog.functions {
        if f.returns_value {
            let pred = g.sys.declare_pred(&f.name, f.params.len() + 1);
            g.summaries.insert(f.name.clone(), pred);
        }
    }
    for f in &prog.functions {
        g.emit_function(f)?;
    }
    Ok(g.sys)
}

#[derive(Clone)]
struct Flow {
    env: HashMap<String, LinExpr>,
    scope: Vec<String>,
    preds: Vec<PredApp>,
    constraints: Vec<Formula>,
}

impl Flow {
    fn constraint(&self) -> Formula {
        Formula::and(self.constraints.clone())
    }

    fn scope_values(&self) -> Vec<LinExpr> {
        self.scope
            .iter()
            .map(|v| self.env[v].clone())
            .collect()
    }
}

struct VcGen<'a> {
    prog: &'a Program,
    sys: ChcSystem,
    summaries: HashMap<String, PredId>,
    config: VcConfig,
    counter: usize,
}

type Returns = Vec<(Flow, Option<LinExpr>)>;

impl VcGen<'_> {
    fn fresh(&mut self, hint: &str) -> Var {
        self.counter += 1;
        let name = format!("{hint}!{}", self.counter);
        self.sys.fresh_var(&name)
    }

    fn emit_function(&mut self, f: &Function) -> Result<(), VcError> {
        let mut env = HashMap::new();
        let mut scope = Vec::new();
        let mut entry_args = Vec::new();
        for p in &f.params {
            let v = self.fresh(&format!("{}::{}", f.name, p));
            env.insert(p.clone(), LinExpr::var(v));
            scope.push(p.clone());
            entry_args.push(LinExpr::var(v));
        }
        let flow = Flow { env, scope, preds: Vec::new(), constraints: Vec::new() };
        let (fallthrough, returns) = self.exec_block(f, &f.body, vec![flow])?;
        if f.returns_value {
            if !fallthrough.is_empty() {
                return Err(VcError::new(format!(
                    "function `{}` may fall through without returning",
                    f.name
                )));
            }
            let pred = self.summaries[&f.name];
            for (flow, val) in returns {
                let val = val.ok_or_else(|| {
                    VcError::new(format!("bare `return;` in int function `{}`", f.name))
                })?;
                let mut args = entry_args.clone();
                args.push(val);
                self.sys.rule(flow.preds.clone(), flow.constraint(), pred, args);
            }
        }
        Ok(())
    }

    fn exec_block(
        &mut self,
        f: &Function,
        stmts: &[Stmt],
        mut flows: Vec<Flow>,
    ) -> Result<(Vec<Flow>, Returns), VcError> {
        let scope_depth: Vec<usize> = flows.iter().map(|fl| fl.scope.len()).collect();
        let mut returns = Returns::new();
        for s in stmts {
            let mut next = Vec::new();
            for flow in flows {
                let (fs, mut rs) = self.exec_stmt(f, s, flow)?;
                next.extend(fs);
                returns.append(&mut rs);
            }
            flows = next;
            if flows.len() > self.config.max_paths {
                flows = vec![self.join(f, flows)?];
            }
            if flows.is_empty() {
                break;
            }
        }
        // restore block scoping
        let depth = scope_depth.first().copied().unwrap_or(0);
        for fl in &mut flows {
            fl.scope.truncate(depth);
        }
        Ok((flows, returns))
    }

    /// Merges several paths through a fresh join predicate.
    fn join(&mut self, f: &Function, flows: Vec<Flow>) -> Result<Flow, VcError> {
        let scope = flows[0].scope.clone();
        for fl in &flows {
            debug_assert_eq!(fl.scope, scope, "paths must agree on scope at join");
        }
        self.counter += 1;
        let pred = self
            .sys
            .declare_pred(&format!("{}!join{}", f.name, self.counter), scope.len());
        for fl in flows {
            let vals = fl.scope_values();
            self.sys.rule(fl.preds.clone(), fl.constraint(), pred, vals);
        }
        let mut env = HashMap::new();
        let mut args = Vec::new();
        for name in &scope {
            let v = self.fresh(&format!("{}::{name}", f.name));
            env.insert(name.clone(), LinExpr::var(v));
            args.push(LinExpr::var(v));
        }
        Ok(Flow {
            env,
            scope,
            preds: vec![PredApp::new(pred, args)],
            constraints: Vec::new(),
        })
    }

    fn exec_stmt(
        &mut self,
        f: &Function,
        s: &Stmt,
        mut flow: Flow,
    ) -> Result<(Vec<Flow>, Returns), VcError> {
        match s {
            Stmt::Decl(x, init) => {
                let val = match init {
                    Some(e) => self.eval(f, e, &mut flow)?,
                    None => LinExpr::var(self.fresh(&format!("{}::{x}", f.name))),
                };
                if !flow.scope.contains(x) {
                    flow.scope.push(x.clone());
                }
                flow.env.insert(x.clone(), val);
                Ok((vec![flow], Vec::new()))
            }
            Stmt::Assign(x, e) => {
                if !flow.env.contains_key(x) {
                    return Err(VcError::new(format!("assignment to undeclared `{x}`")));
                }
                let val = self.eval(f, e, &mut flow)?;
                flow.env.insert(x.clone(), val);
                Ok((vec![flow], Vec::new()))
            }
            Stmt::Expr(e) => {
                // Void calls are no-ops for the caller; other
                // expressions are evaluated for their side conditions.
                match e {
                    Expr::Call(name, args) if !self.summaries.contains_key(name) => {
                        if self.prog.function(name).is_none() {
                            return Err(VcError::new(format!("call to undefined `{name}`")));
                        }
                        for a in args {
                            self.eval(f, a, &mut flow)?;
                        }
                    }
                    _ => {
                        self.eval(f, e, &mut flow)?;
                    }
                }
                Ok((vec![flow], Vec::new()))
            }
            Stmt::Assume(c) => {
                let cf = self.cond(f, c, &mut flow)?;
                flow.constraints.push(cf);
                Ok((vec![flow], Vec::new()))
            }
            Stmt::Assert(c) => {
                let cf = self.cond(f, c, &mut flow)?;
                self.sys
                    .query(flow.preds.clone(), flow.constraint(), cf.clone());
                flow.constraints.push(cf);
                Ok((vec![flow], Vec::new()))
            }
            Stmt::Return(e) => {
                let val = match e {
                    Some(e) => Some(self.eval(f, e, &mut flow)?),
                    None => None,
                };
                Ok((Vec::new(), vec![(flow, val)]))
            }
            Stmt::If(c, then_b, else_b) => {
                let cf = self.cond(f, c, &mut flow)?;
                let mut then_flow = flow.clone();
                then_flow.constraints.push(cf.clone());
                let mut else_flow = flow;
                else_flow.constraints.push(Formula::not(cf));
                let (mut flows, mut returns) = self.exec_block(f, then_b, vec![then_flow])?;
                let (efs, mut ers) = self.exec_block(f, else_b, vec![else_flow])?;
                flows.extend(efs);
                returns.append(&mut ers);
                Ok((flows, returns))
            }
            Stmt::While(c, body) => {
                self.counter += 1;
                let scope = flow.scope.clone();
                let pred = self
                    .sys
                    .declare_pred(&format!("{}!loop{}", f.name, self.counter), scope.len());
                // entry: current state establishes the loop invariant
                let vals = flow.scope_values();
                self.sys
                    .rule(flow.preds.clone(), flow.constraint(), pred, vals);
                // body: havoc scope, assume invariant + condition
                let mut body_flow = self.havoc(f, &scope, pred);
                let havoc_vars: Vec<Var> = scope
                    .iter()
                    .map(|n| {
                        body_flow.env[n]
                            .terms()
                            .next()
                            .map(|(v, _)| v)
                            .expect("havoc binds each scope name to a fresh variable")
                    })
                    .collect();
                let cf = self.cond(f, c, &mut body_flow)?;
                // The guard's atoms are linear forms over exactly the
                // havoc variables, i.e. the loop predicate's argument
                // positions: record them as symbolic seed hints —
                // loop invariants overwhelmingly involve the guard's
                // separating directions.
                self.harvest_guard_seeds(pred, &cf, &havoc_vars);
                body_flow.constraints.push(cf);
                let (body_ends, returns) = self.exec_block(f, body, vec![body_flow])?;
                for end in body_ends {
                    let vals = end.scope_values();
                    self.sys.rule(end.preds.clone(), end.constraint(), pred, vals);
                }
                // exit: havoc again, assume invariant + negated condition
                let mut exit_flow = self.havoc(f, &scope, pred);
                let cf = self.cond(f, c, &mut exit_flow)?;
                exit_flow.constraints.push(Formula::not(cf));
                Ok((vec![exit_flow], returns))
            }
        }
    }

    /// Records each atom of a loop guard as a seed-hint direction over
    /// `pred`'s parameter space. Atoms mentioning variables outside
    /// `args` (e.g. fresh nondet booleans) are skipped.
    fn harvest_guard_seeds(&mut self, pred: PredId, guard: &Formula, args: &[Var]) {
        for a in guard.atoms() {
            let expr = a.expr();
            if expr.vars().any(|v| !args.contains(&v)) {
                continue;
            }
            let dir: Vec<BigInt> = args.iter().map(|v| expr.coeff(*v)).collect();
            if dir.iter().any(|c| !c.is_zero()) {
                self.sys.add_seed_hint(pred, dir);
            }
        }
    }

    fn havoc(&mut self, f: &Function, scope: &[String], pred: PredId) -> Flow {
        let mut env = HashMap::new();
        let mut args = Vec::new();
        for name in scope {
            let v = self.fresh(&format!("{}::{name}", f.name));
            env.insert(name.clone(), LinExpr::var(v));
            args.push(LinExpr::var(v));
        }
        Flow {
            env,
            scope: scope.to_vec(),
            preds: vec![PredApp::new(pred, args)],
            constraints: Vec::new(),
        }
    }

    fn cond(&mut self, f: &Function, c: &Cond, flow: &mut Flow) -> Result<Formula, VcError> {
        match c {
            Cond::Const(b) => Ok(if *b { Formula::True } else { Formula::False }),
            Cond::Nondet => {
                // Fresh unconstrained boolean: `b >= 1` with b free, so
                // both the condition and its negation are satisfiable.
                let b = self.fresh("nd");
                Ok(Formula::from(Atom::ge(
                    LinExpr::var(b),
                    LinExpr::constant(BigInt::one()),
                )))
            }
            Cond::Not(c) => Ok(Formula::not(self.cond(f, c, flow)?)),
            Cond::And(a, b) => {
                let fa = self.cond(f, a, flow)?;
                let fb = self.cond(f, b, flow)?;
                Ok(Formula::and(vec![fa, fb]))
            }
            Cond::Or(a, b) => {
                let fa = self.cond(f, a, flow)?;
                let fb = self.cond(f, b, flow)?;
                Ok(Formula::or(vec![fa, fb]))
            }
            Cond::Cmp(op, l, r) => {
                let le = self.eval(f, l, flow)?;
                let re = self.eval(f, r, flow)?;
                Ok(match op {
                    CmpOp::Eq => Atom::eq_expr(le, re),
                    CmpOp::Ne => Formula::or(vec![
                        Formula::from(Atom::lt(le.clone(), re.clone())),
                        Formula::from(Atom::gt(le, re)),
                    ]),
                    CmpOp::Lt => Formula::from(Atom::lt(le, re)),
                    CmpOp::Le => Formula::from(Atom::le(le, re)),
                    CmpOp::Gt => Formula::from(Atom::gt(le, re)),
                    CmpOp::Ge => Formula::from(Atom::ge(le, re)),
                })
            }
        }
    }

    fn eval(&mut self, f: &Function, e: &Expr, flow: &mut Flow) -> Result<LinExpr, VcError> {
        match e {
            Expr::Lit(n) => Ok(LinExpr::constant(BigInt::from(*n))),
            Expr::Var(x) => flow
                .env
                .get(x)
                .cloned()
                .ok_or_else(|| VcError::new(format!("use of undeclared variable `{x}`"))),
            Expr::Nondet => Ok(LinExpr::var(self.fresh("nd"))),
            Expr::Add(a, b) => Ok(&self.eval(f, a, flow)? + &self.eval(f, b, flow)?),
            Expr::Sub(a, b) => Ok(&self.eval(f, a, flow)? - &self.eval(f, b, flow)?),
            Expr::Neg(a) => Ok(-&self.eval(f, a, flow)?),
            Expr::Mul(a, b) => {
                let ea = self.eval(f, a, flow)?;
                let eb = self.eval(f, b, flow)?;
                if ea.is_constant() {
                    Ok(eb.scale(ea.constant_term()))
                } else if eb.is_constant() {
                    Ok(ea.scale(eb.constant_term()))
                } else {
                    Err(VcError::new("non-linear multiplication is not supported"))
                }
            }
            Expr::Div(a, b) | Expr::Mod(a, b) => {
                let ea = self.eval(f, a, flow)?;
                let eb = self.eval(f, b, flow)?;
                if !eb.is_constant() || !eb.constant_term().is_positive() {
                    return Err(VcError::new(
                        "division/modulus requires a positive constant divisor",
                    ));
                }
                let k = eb.constant_term().clone();
                let q = LinExpr::var(self.fresh("div"));
                let r = LinExpr::var(self.fresh("mod"));
                flow.constraints
                    .push(Atom::eq_expr(ea, &q.scale(&k) + &r));
                flow.constraints
                    .push(Formula::from(Atom::ge(r.clone(), LinExpr::zero())));
                flow.constraints
                    .push(Formula::from(Atom::lt(r.clone(), LinExpr::constant(k))));
                Ok(if matches!(e, Expr::Div(_, _)) { q } else { r })
            }
            Expr::Call(name, args) => {
                let pred = *self.summaries.get(name).ok_or_else(|| {
                    VcError::new(format!(
                        "call to undefined or void function `{name}` in expression"
                    ))
                })?;
                let arity = self.sys.pred(pred).arity();
                if args.len() + 1 != arity {
                    return Err(VcError::new(format!(
                        "`{name}` expects {} arguments, got {}",
                        arity - 1,
                        args.len()
                    )));
                }
                let mut call_args = Vec::new();
                for a in args {
                    call_args.push(self.eval(f, a, flow)?);
                }
                let ret = LinExpr::var(self.fresh(&format!("{name}!ret")));
                call_args.push(ret.clone());
                flow.preds.push(PredApp::new(pred, call_args));
                Ok(ret)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn chc(src: &str) -> ChcSystem {
        generate_chc(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn fig1_clause_shape() {
        let sys = chc(r#"
            void main() {
                int x = 1; int y = 0;
                while (*) { x = x + y; y = y + 1; }
                assert(x >= y);
            }
        "#);
        // one loop predicate; entry rule, body rule, one query
        assert_eq!(sys.num_preds(), 1);
        assert!(sys.is_recursive());
        let queries = sys.clauses().iter().filter(|c| c.is_query()).count();
        assert_eq!(queries, 1);
        let facts = sys.clauses().iter().filter(|c| c.is_fact()).count();
        assert_eq!(facts, 1);
    }

    #[test]
    fn fibo_produces_nonlinear_clause() {
        let sys = chc(r#"
            int fibo(int x) {
                if (x < 1) { return 0; }
                else { if (x == 1) { return 1; }
                       else { return fibo(x - 1) + fibo(x - 2); } }
            }
            void main() {
                int n = nondet();
                assert(fibo(n) >= n - 1);
            }
        "#);
        assert!(sys.is_recursive());
        // the recursive summary clause has two body occurrences
        let max_body = sys
            .clauses()
            .iter()
            .map(|c| c.body_preds.len())
            .max()
            .unwrap();
        assert_eq!(max_body, 2);
    }

    #[test]
    fn mod_lowering() {
        let sys = chc(r#"
            void main() {
                int i = nondet();
                assume(i % 2 == 0);
                assert(i % 2 != 1);
            }
        "#);
        assert_eq!(sys.num_preds(), 0);
        assert_eq!(sys.clauses().len(), 1);
    }

    #[test]
    fn join_predicate_on_branchy_code() {
        // 12 sequential ifs would be 2^12 paths; joins must keep the
        // clause count small.
        let mut body = String::new();
        for i in 0..12 {
            body.push_str(&format!("if (*) {{ x = x + {i}; }} else {{ x = x - {i}; }}\n"));
        }
        let src = format!(
            "void main() {{ int x = 0; {body} assert(x <= 100 || x > -100); }}"
        );
        let sys = chc(&src);
        assert!(
            sys.num_clauses() < 100,
            "joins must bound clause growth, got {}",
            sys.num_clauses()
        );
        assert!(sys.preds().iter().any(|p| p.name.contains("join")));
    }

    #[test]
    fn nested_loops() {
        let sys = chc(r#"
            void main() {
                int i = 0; int s = 0; int n = *;
                while (i < n) {
                    int j = 0;
                    while (j < i) { s = s + 1; j = j + 1; }
                    i = i + 1;
                }
                assert(s >= 0 || n < 0);
            }
        "#);
        let loops = sys.preds().iter().filter(|p| p.name.contains("loop")).count();
        assert_eq!(loops, 2);
    }

    #[test]
    fn loop_guards_become_seed_hints() {
        let sys = chc(r#"
            void main() {
                int i = 0; int n = nondet();
                while (i < n) { i = i + 1; }
                assert(i >= n || n < 0);
            }
        "#);
        assert!(!sys.seed_hints().is_empty(), "while guard must leave a hint");
        let (pred, dir) = &sys.seed_hints()[0];
        assert_eq!(dir.len(), sys.pred(*pred).arity());
        // the guard i < n separates along i - n
        assert!(dir.iter().any(|c| !c.is_zero()));
        // nondet guards leave no hint (their atoms mention fresh vars)
        let nd = chc("void main() { int x = 0; while (*) { x = x + 1; } assert(x >= 0); }");
        assert!(nd.seed_hints().is_empty());
    }

    #[test]
    fn errors() {
        let p = parse_program("void main() { x = 1; }").unwrap();
        assert!(generate_chc(&p).is_err());
        let p = parse_program("void main() { int x = *; int y = x * x; }").unwrap();
        assert!(generate_chc(&p).is_err());
        let p = parse_program("int f(int x) { if (x > 0) { return 1; } }").unwrap();
        assert!(generate_chc(&p).is_err(), "fallthrough in int function");
        let p = parse_program("void main() { int x = g(3); }").unwrap();
        assert!(generate_chc(&p).is_err());
    }

    #[test]
    fn returns_propagate_through_loops() {
        let sys = chc(r#"
            int find(int n) {
                int i = 0;
                while (i < n) {
                    if (i * 2 == n) { return i; }
                    i = i + 1;
                }
                return 0 - 1;
            }
            void main() {
                int r = find(10);
                assert(r <= 10);
            }
        "#);
        // summary must have rules from both the in-loop return and the
        // final return
        let find = sys.pred_by_name("find").unwrap();
        let rules_for_find = sys
            .clauses()
            .iter()
            .filter(|c| matches!(&c.head, linarb_logic::ClauseHead::Pred(a) if a.pred == find.id))
            .count();
        assert!(rules_for_find >= 2);
    }
}
