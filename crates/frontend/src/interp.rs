//! A concrete interpreter for mini-C.
//!
//! Used for *differential testing*: executing a program on concrete
//! nondeterministic choices must agree with the CHC semantics — a run
//! that trips an `assert` proves the CHC system unsatisfiable, so any
//! solver claiming `sat` for such a program has a soundness bug. The
//! test suite runs thousands of random executions against the symbolic
//! verdicts.

use crate::ast::{CmpOp, Cond, Expr, Function, Program, Stmt};
use std::collections::HashMap;

/// Outcome of a concrete run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecOutcome {
    /// `main` ran to completion; every assertion held.
    Completed,
    /// An `assert` failed (the program is definitely unsafe).
    AssertFailed,
    /// An `assume` failed: this input path is infeasible (no verdict).
    AssumeViolated,
    /// The step budget ran out (no verdict).
    OutOfFuel,
    /// Arithmetic overflowed the interpreter's `i128` domain or the
    /// program was malformed (no verdict).
    Stuck(String),
}

/// A deterministic supply of nondeterministic choices: values are
/// consumed in order; when exhausted, zeros are produced.
#[derive(Clone, Debug, Default)]
pub struct NondetScript {
    values: Vec<i128>,
    cursor: usize,
}

impl NondetScript {
    /// Creates a script from a list of choices.
    pub fn new(values: Vec<i128>) -> NondetScript {
        NondetScript { values, cursor: 0 }
    }

    fn next(&mut self) -> i128 {
        let v = self.values.get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        v
    }
}

struct Interp<'a> {
    prog: &'a Program,
    script: NondetScript,
    fuel: u64,
}

enum Flow {
    Normal,
    Return(Option<i128>),
    Stop(ExecOutcome),
}

type Env = HashMap<String, i128>;

impl Interp<'_> {
    fn tick(&mut self) -> Result<(), ExecOutcome> {
        if self.fuel == 0 {
            return Err(ExecOutcome::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn call(&mut self, f: &Function, args: &[i128]) -> Result<Option<i128>, ExecOutcome> {
        let mut env: Env = f
            .params
            .iter()
            .cloned()
            .zip(args.iter().copied())
            .collect();
        match self.block(f, &f.body, &mut env)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal if !f.returns_value => Ok(None),
            Flow::Normal => Err(ExecOutcome::Stuck(format!(
                "function `{}` fell through without returning",
                f.name
            ))),
            Flow::Stop(o) => Err(o),
        }
    }

    fn block(&mut self, f: &Function, stmts: &[Stmt], env: &mut Env) -> Result<Flow, ExecOutcome> {
        for s in stmts {
            match self.stmt(f, s, env)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, f: &Function, s: &Stmt, env: &mut Env) -> Result<Flow, ExecOutcome> {
        self.tick()?;
        match s {
            Stmt::Decl(x, init) => {
                let v = match init {
                    Some(e) => self.expr(e, env)?,
                    None => self.script.next(),
                };
                env.insert(x.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(x, e) => {
                let v = self.expr(e, env)?;
                if !env.contains_key(x) {
                    return Err(ExecOutcome::Stuck(format!("undeclared `{x}`")));
                }
                env.insert(x.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                // void calls allowed as statements
                if let Expr::Call(name, args) = e {
                    if let Some(callee) = self.prog.function(name) {
                        if !callee.returns_value {
                            let vals: Result<Vec<i128>, _> =
                                args.iter().map(|a| self.expr(a, env)).collect();
                            let callee = callee.clone();
                            self.call(&callee, &vals?)?;
                            return Ok(Flow::Normal);
                        }
                    }
                }
                self.expr(e, env)?;
                Ok(Flow::Normal)
            }
            Stmt::Assume(c) => {
                if self.cond(c, env)? {
                    Ok(Flow::Normal)
                } else {
                    Ok(Flow::Stop(ExecOutcome::AssumeViolated))
                }
            }
            Stmt::Assert(c) => {
                if self.cond(c, env)? {
                    Ok(Flow::Normal)
                } else {
                    Ok(Flow::Stop(ExecOutcome::AssertFailed))
                }
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.expr(e, env)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::If(c, then_b, else_b) => {
                if self.cond(c, env)? {
                    self.block(f, then_b, env)
                } else {
                    self.block(f, else_b, env)
                }
            }
            Stmt::While(c, body) => {
                loop {
                    self.tick()?;
                    if !self.cond(c, env)? {
                        return Ok(Flow::Normal);
                    }
                    match self.block(f, body, env)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
            }
        }
    }

    fn cond(&mut self, c: &Cond, env: &mut Env) -> Result<bool, ExecOutcome> {
        Ok(match c {
            Cond::Const(b) => *b,
            Cond::Nondet => self.script.next() != 0,
            Cond::Not(c) => !self.cond(c, env)?,
            Cond::And(a, b) => {
                // both sides evaluate (mirrors the VC encoding, which
                // evaluates side effects of both operands)
                let va = self.cond(a, env)?;
                let vb = self.cond(b, env)?;
                va && vb
            }
            Cond::Or(a, b) => {
                let va = self.cond(a, env)?;
                let vb = self.cond(b, env)?;
                va || vb
            }
            Cond::Cmp(op, l, r) => {
                let lv = self.expr(l, env)?;
                let rv = self.expr(r, env)?;
                match op {
                    CmpOp::Eq => lv == rv,
                    CmpOp::Ne => lv != rv,
                    CmpOp::Lt => lv < rv,
                    CmpOp::Le => lv <= rv,
                    CmpOp::Gt => lv > rv,
                    CmpOp::Ge => lv >= rv,
                }
            }
        })
    }

    fn expr(&mut self, e: &Expr, env: &mut Env) -> Result<i128, ExecOutcome> {
        let overflow = || ExecOutcome::Stuck("arithmetic overflow".into());
        Ok(match e {
            Expr::Lit(n) => *n as i128,
            Expr::Var(x) => *env
                .get(x)
                .ok_or_else(|| ExecOutcome::Stuck(format!("undeclared `{x}`")))?,
            Expr::Nondet => self.script.next(),
            Expr::Add(a, b) => {
                let (x, y) = (self.expr(a, env)?, self.expr(b, env)?);
                x.checked_add(y).ok_or_else(overflow)?
            }
            Expr::Sub(a, b) => {
                let (x, y) = (self.expr(a, env)?, self.expr(b, env)?);
                x.checked_sub(y).ok_or_else(overflow)?
            }
            Expr::Neg(a) => self.expr(a, env)?.checked_neg().ok_or_else(overflow)?,
            Expr::Mul(a, b) => {
                let (x, y) = (self.expr(a, env)?, self.expr(b, env)?);
                x.checked_mul(y).ok_or_else(overflow)?
            }
            Expr::Div(a, b) => {
                let (x, y) = (self.expr(a, env)?, self.expr(b, env)?);
                if y <= 0 {
                    return Err(ExecOutcome::Stuck("non-positive divisor".into()));
                }
                x.div_euclid(y)
            }
            Expr::Mod(a, b) => {
                let (x, y) = (self.expr(a, env)?, self.expr(b, env)?);
                if y <= 0 {
                    return Err(ExecOutcome::Stuck("non-positive divisor".into()));
                }
                x.rem_euclid(y)
            }
            Expr::Call(name, args) => {
                let callee = self
                    .prog
                    .function(name)
                    .ok_or_else(|| ExecOutcome::Stuck(format!("undefined `{name}`")))?
                    .clone();
                if !callee.returns_value {
                    return Err(ExecOutcome::Stuck(format!(
                        "void function `{name}` used in expression"
                    )));
                }
                let vals: Result<Vec<i128>, _> =
                    args.iter().map(|a| self.expr(a, env)).collect();
                self.call(&callee, &vals?)?
                    .ok_or_else(|| ExecOutcome::Stuck("missing return value".into()))?
            }
        })
    }
}

/// Executes `main` with the given nondeterministic choices and step
/// budget.
///
/// ```
/// use linarb_frontend::{execute, parse_program, ExecOutcome, NondetScript};
///
/// let prog = parse_program(r#"
///     void main() {
///         int x = nondet();
///         assert(x >= 0);
///     }
/// "#)?;
/// assert_eq!(execute(&prog, NondetScript::new(vec![5]), 1000), ExecOutcome::Completed);
/// assert_eq!(execute(&prog, NondetScript::new(vec![-1]), 1000), ExecOutcome::AssertFailed);
/// # Ok::<(), linarb_frontend::ParseError>(())
/// ```
pub fn execute(prog: &Program, script: NondetScript, fuel: u64) -> ExecOutcome {
    let Some(main) = prog.function("main") else {
        return ExecOutcome::Stuck("no main function".into());
    };
    let mut interp = Interp { prog, script, fuel };
    match interp.call(&main.clone(), &[]) {
        Ok(_) => ExecOutcome::Completed,
        Err(o) => o,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, inputs: Vec<i128>) -> ExecOutcome {
        execute(&parse_program(src).unwrap(), NondetScript::new(inputs), 100_000)
    }

    #[test]
    fn fig1_runs_safely() {
        let src = r#"
            void main() {
                int x = 1; int y = 0;
                while (*) { x = x + y; y = y + 1; }
                assert(x >= y);
            }
        "#;
        // loop 5 times (nondet cond true), then exit
        assert_eq!(run(src, vec![1, 1, 1, 1, 1, 0]), ExecOutcome::Completed);
        assert_eq!(run(src, vec![0]), ExecOutcome::Completed);
    }

    #[test]
    fn failing_assert_detected() {
        let src = r#"
            void main() {
                int x = 0;
                while (x < 10) { x = x + 3; }
                assert(x == 10);
            }
        "#;
        assert_eq!(run(src, vec![]), ExecOutcome::AssertFailed);
    }

    #[test]
    fn assume_prunes() {
        let src = r#"
            void main() {
                int x = nondet();
                assume(x > 0);
                assert(x >= 1);
            }
        "#;
        assert_eq!(run(src, vec![5]), ExecOutcome::Completed);
        assert_eq!(run(src, vec![-5]), ExecOutcome::AssumeViolated);
    }

    #[test]
    fn recursion_executes() {
        let src = r#"
            int fibo(int x) {
                if (x < 1) { return 0; }
                else { if (x == 1) { return 1; }
                       else { return fibo(x - 1) + fibo(x - 2); } }
            }
            void main() {
                int r = fibo(10);
                assert(r == 55);
            }
        "#;
        assert_eq!(run(src, vec![]), ExecOutcome::Completed);
    }

    #[test]
    fn fuel_exhaustion() {
        let src = r#"
            void main() {
                int x = 0;
                while (x >= 0) { x = x + 1; }
            }
        "#;
        assert_eq!(run(src, vec![]), ExecOutcome::OutOfFuel);
    }

    #[test]
    fn mod_div_floor_semantics() {
        let src = r#"
            void main() {
                int a = 0 - 7;
                assert(a % 2 == 1);
                assert(a / 2 == 0 - 4);
            }
        "#;
        assert_eq!(run(src, vec![]), ExecOutcome::Completed);
    }

    #[test]
    fn uninitialized_reads_nondet() {
        let src = r#"
            void main() {
                int x;
                assert(x == 42);
            }
        "#;
        assert_eq!(run(src, vec![42]), ExecOutcome::Completed);
        assert_eq!(run(src, vec![41]), ExecOutcome::AssertFailed);
    }
}
