//! Canonical forms of CHC systems — the cache key of the serve
//! daemon (DESIGN.md §15).
//!
//! Two systems that differ only by predicate/variable *names*, by
//! clause order, or by positive scaling of atom coefficients must map
//! to the same canonical text (and therefore the same cache key);
//! systems that differ semantically — a perturbed guard constant, an
//! extra clause — must not. The construction:
//!
//! * **Clause-local de Bruijn variables.** Within each clause,
//!   variables are renumbered `x0, x1, …` by first occurrence in a
//!   fixed traversal (body applications, then the constraint, then
//!   the head), so the system-level variable indices and names drop
//!   out.
//! * **Predicate color refinement.** Predicate identities are
//!   replaced by canonical numbers computed by three rounds of
//!   refinement: serialize every clause with the previous round's
//!   predicate labels (round one uses arities only), sort the clause
//!   strings, and re-number predicates by first occurrence in sorted
//!   order. Clause order and predicate names drop out.
//! * **Normalized atoms.** Linear atoms are `e ≤ 0` with
//!   gcd-reduced, floor-tightened coefficients by construction
//!   ([`Atom::le_zero`]), so positive scaling drops out for free.
//! * **Sorted connectives.** `And`/`Or` children are serialized and
//!   then sorted, so conjunct order inside a constraint drops out.
//!
//! The canonical *text* — the sorted clause serialization plus the
//! predicate arity table — is what cache hits compare (the 128-bit
//! FNV key is only the index), so key collisions cannot produce a
//! false cache hit.
//!
//! The scheme is deliberately not a full graph canonization: systems
//! containing distinct predicates whose entire clause neighborhoods
//! serialize identically (self-symmetric systems) may canonicalize
//! differently under reordering. That costs a cache hit, never
//! correctness — every served verdict is re-verified against the
//! submitted system.

use std::collections::HashMap;

use linarb_logic::{
    Atom, ChcSystem, Clause, ClauseHead, ClauseId, Formula, LinExpr, ModAtom, PredApp, PredId, Var,
};

/// The canonical form of a [`ChcSystem`], with the maps needed to
/// carry cached artifacts (interpretations, derivations, solver
/// snapshots) between any two systems sharing the form.
#[derive(Clone, Debug)]
pub struct Canon {
    /// 128-bit FNV-1a of [`text`](Self::text), as 32 hex digits.
    pub key: String,
    /// The full canonical serialization (the hash input). Exact-tier
    /// cache hits compare this, not the key.
    pub text: String,
    /// Sorted per-clause shape hashes with atom constants masked —
    /// the structural fingerprint used for near-miss neighbor search.
    pub fingerprint: Vec<u64>,
    /// Arity of each canonical predicate, by canonical index.
    pub arities: Vec<usize>,
    /// Canonical predicate index → this system's [`PredId`].
    pub pred_of_canon: Vec<PredId>,
    /// `PredId` index → canonical predicate index.
    pub canon_of_pred: Vec<usize>,
    /// Canonical clause index → this system's [`ClauseId`].
    pub clause_of_canon: Vec<ClauseId>,
    /// `ClauseId` index → canonical clause index.
    pub canon_of_clause: Vec<usize>,
    /// Per canonical clause: canonical variable number → this
    /// system's [`Var`].
    pub clause_vars: Vec<Vec<Var>>,
}

impl Canon {
    /// Whether two canonical forms describe structurally identical
    /// systems (same canonical text, hence interchangeable for cached
    /// artifacts).
    pub fn same_form(&self, other: &Canon) -> bool {
        self.text == other.text
    }

    /// Fingerprint overlap with `other`: the size of the multiset
    /// intersection of per-clause shape hashes. Both fingerprints are
    /// sorted, so this is a linear merge.
    pub fn overlap(&self, other: &Canon) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.fingerprint.len() && j < other.fingerprint.len() {
            match self.fingerprint[i].cmp(&other.fingerprint[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

/// Clause-local first-occurrence variable numbering.
#[derive(Default)]
struct VarNum {
    map: HashMap<Var, u32>,
    order: Vec<Var>,
}

impl VarNum {
    fn touch(&mut self, v: Var) {
        if !self.map.contains_key(&v) {
            self.map.insert(v, self.order.len() as u32);
            self.order.push(v);
        }
    }

    fn touch_expr(&mut self, e: &LinExpr) {
        for (v, _) in e.terms() {
            self.touch(v);
        }
    }

    fn touch_formula(&mut self, f: &Formula) {
        match f {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => self.touch_expr(a.expr()),
            Formula::Mod(m) => self.touch_expr(m.expr()),
            Formula::And(fs) | Formula::Or(fs) => {
                for g in fs {
                    self.touch_formula(g);
                }
            }
            Formula::Not(g) => self.touch_formula(g),
        }
    }

    fn touch_app(&mut self, app: &PredApp) {
        for arg in &app.args {
            self.touch_expr(arg);
        }
    }
}

/// Numbers a clause's variables by first occurrence in the canonical
/// traversal: body applications, constraint, head.
fn number_clause_vars(clause: &Clause) -> VarNum {
    let mut vn = VarNum::default();
    for app in &clause.body_preds {
        vn.touch_app(app);
    }
    vn.touch_formula(&clause.constraint);
    match &clause.head {
        ClauseHead::Pred(app) => vn.touch_app(app),
        ClauseHead::Goal(g) => vn.touch_formula(g),
    }
    vn
}

fn ser_expr(e: &LinExpr, vn: &VarNum, mask: bool, out: &mut String) {
    // Terms sorted by canonical variable number, so the system-level
    // index order of the variables drops out.
    let mut terms: Vec<(u32, String)> = e
        .terms()
        .map(|(v, c)| (vn.map[&v], c.to_string()))
        .collect();
    terms.sort();
    for (n, c) in &terms {
        out.push_str(c);
        out.push('x');
        out.push_str(&n.to_string());
        out.push('+');
    }
    if mask {
        out.push('K');
    } else {
        out.push_str(&e.constant_term().to_string());
    }
}

fn ser_atom(a: &Atom, vn: &VarNum, mask: bool, out: &mut String) {
    out.push_str("A(");
    ser_expr(a.expr(), vn, mask, out);
    out.push(')');
}

fn ser_mod(m: &ModAtom, vn: &VarNum, mask: bool, out: &mut String) {
    out.push_str("M(");
    ser_expr(m.expr(), vn, mask, out);
    out.push(';');
    out.push_str(&m.modulus().to_string());
    out.push(';');
    if mask {
        out.push('K');
    } else {
        out.push_str(&m.residue().to_string());
    }
    out.push(')');
}

fn ser_formula(f: &Formula, vn: &VarNum, mask: bool, out: &mut String) {
    match f {
        Formula::True => out.push('T'),
        Formula::False => out.push('F'),
        Formula::Atom(a) => ser_atom(a, vn, mask, out),
        Formula::Mod(m) => ser_mod(m, vn, mask, out),
        Formula::And(fs) | Formula::Or(fs) => {
            out.push(if matches!(f, Formula::And(_)) { '&' } else { '|' });
            out.push('(');
            // Children serialized first, then sorted: conjunct /
            // disjunct order drops out.
            let mut parts: Vec<String> = fs
                .iter()
                .map(|g| {
                    let mut s = String::new();
                    ser_formula(g, vn, mask, &mut s);
                    s
                })
                .collect();
            parts.sort();
            for p in &parts {
                out.push_str(p);
                out.push(',');
            }
            out.push(')');
        }
        Formula::Not(g) => {
            out.push_str("!(");
            ser_formula(g, vn, mask, out);
            out.push(')');
        }
    }
}

fn ser_app(app: &PredApp, labels: &[String], vn: &VarNum, mask: bool, out: &mut String) {
    out.push('@');
    out.push_str(&labels[app.pred.0 as usize]);
    out.push('(');
    for arg in &app.args {
        ser_expr(arg, vn, mask, out);
        out.push(';');
    }
    out.push(')');
}

/// Serializes one clause under the given predicate labels and its
/// clause-local variable numbering.
fn ser_clause(clause: &Clause, labels: &[String], vn: &VarNum, mask: bool) -> String {
    let mut out = String::new();
    out.push_str("B[");
    for app in &clause.body_preds {
        ser_app(app, labels, vn, mask, &mut out);
    }
    out.push_str("]C[");
    ser_formula(&clause.constraint, vn, mask, &mut out);
    out.push_str("]H[");
    match &clause.head {
        ClauseHead::Pred(app) => ser_app(app, labels, vn, mask, &mut out),
        ClauseHead::Goal(g) => {
            out.push_str("G:");
            ser_formula(g, vn, mask, &mut out);
        }
    }
    out.push(']');
    out
}

/// Predicates of a clause in canonical traversal order (body, head).
fn clause_preds(clause: &Clause) -> Vec<PredId> {
    let mut ps: Vec<PredId> = clause.body_preds.iter().map(|a| a.pred).collect();
    if let ClauseHead::Pred(app) = &clause.head {
        ps.push(app.pred);
    }
    ps
}

fn fnv64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET2: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// Computes the canonical form of a system. Pure and cheap (no
/// solving): linear in the serialized size times three refinement
/// rounds.
pub fn canonicalize(sys: &ChcSystem) -> Canon {
    let clauses = sys.clauses();
    let npreds = sys.num_preds();
    let varnums: Vec<VarNum> = clauses.iter().map(number_clause_vars).collect();

    // Round zero labels: arity only. Each refinement round serializes
    // under the previous labels, sorts, renumbers by first occurrence.
    let mut labels: Vec<String> =
        sys.preds().iter().map(|p| format!("a{}", p.arity())).collect();
    let mut sorted_idx: Vec<usize> = (0..clauses.len()).collect();
    for _round in 0..3 {
        let strs: Vec<String> = clauses
            .iter()
            .enumerate()
            .map(|(i, c)| ser_clause(c, &labels, &varnums[i], false))
            .collect();
        sorted_idx = (0..clauses.len()).collect();
        sorted_idx.sort_by(|&a, &b| strs[a].cmp(&strs[b]).then(a.cmp(&b)));
        let mut num: Vec<Option<usize>> = vec![None; npreds];
        let mut next = 0usize;
        for &i in &sorted_idx {
            for p in clause_preds(&clauses[i]) {
                let slot = &mut num[p.0 as usize];
                if slot.is_none() {
                    *slot = Some(next);
                    next += 1;
                }
            }
        }
        // Predicates mentioned in no clause: numbered after all
        // mentioned ones, in declaration order (they cannot influence
        // any verdict, so this arbitrary-but-deterministic order is
        // harmless).
        for slot in num.iter_mut() {
            if slot.is_none() {
                *slot = Some(next);
                next += 1;
            }
        }
        labels = sys
            .preds()
            .iter()
            .enumerate()
            .map(|(i, p)| format!("q{}_{}", num[i].unwrap(), p.arity()))
            .collect();
    }

    // Final pass: canonical clause order, text, maps, fingerprint.
    let final_strs: Vec<String> = clauses
        .iter()
        .enumerate()
        .map(|(i, c)| ser_clause(c, &labels, &varnums[i], false))
        .collect();
    let masked_strs: Vec<String> = clauses
        .iter()
        .enumerate()
        .map(|(i, c)| ser_clause(c, &labels, &varnums[i], true))
        .collect();

    // Recover each predicate's canonical number from its final label
    // ("q<num>_<arity>").
    let canon_of_pred: Vec<usize> = labels
        .iter()
        .map(|l| {
            l[1..l.find('_').unwrap()]
                .parse::<usize>()
                .expect("canonical label")
        })
        .collect();
    let mut pred_of_canon = vec![PredId(0); npreds];
    let mut arities = vec![0usize; npreds];
    for (i, &n) in canon_of_pred.iter().enumerate() {
        pred_of_canon[n] = PredId(i as u32);
        arities[n] = sys.preds()[i].arity();
    }

    let mut text = String::new();
    text.push_str("P[");
    for a in &arities {
        text.push_str(&a.to_string());
        text.push(',');
    }
    text.push(']');
    let mut clause_of_canon = Vec::with_capacity(clauses.len());
    let mut canon_of_clause = vec![0usize; clauses.len()];
    let mut clause_vars = Vec::with_capacity(clauses.len());
    for (ci, &i) in sorted_idx.iter().enumerate() {
        text.push('\n');
        text.push_str(&final_strs[i]);
        clause_of_canon.push(ClauseId(i as u32));
        canon_of_clause[i] = ci;
        clause_vars.push(varnums[i].order.clone());
    }

    let mut fingerprint: Vec<u64> =
        masked_strs.iter().map(|s| fnv64(FNV_OFFSET, s.as_bytes())).collect();
    fingerprint.sort_unstable();

    let key = format!(
        "{:016x}{:016x}",
        fnv64(FNV_OFFSET, text.as_bytes()),
        fnv64(FNV_OFFSET2, text.as_bytes())
    );

    Canon {
        key,
        text,
        fingerprint,
        arities,
        pred_of_canon,
        canon_of_pred,
        clause_of_canon,
        canon_of_clause,
        clause_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_logic::parse_chc;

    const FIG1: &str = r#"
        (set-logic HORN)
        (declare-fun inv (Int Int) Bool)
        (assert (forall ((x Int) (y Int))
            (=> (and (= x 1) (= y 0)) (inv x y))))
        (assert (forall ((x Int) (y Int))
            (=> (inv x y) (inv (+ x y) (+ y 1)))))
        (assert (forall ((x Int) (y Int))
            (=> (and (inv x y) (< x y)) false)))
        (check-sat)
    "#;

    #[test]
    fn key_is_deterministic_and_name_blind() {
        let a = canonicalize(&parse_chc(FIG1).unwrap());
        let renamed = FIG1.replace("inv", "loop_head").replace('x', "a").replace('y', "b");
        let b = canonicalize(&parse_chc(&renamed).unwrap());
        assert_eq!(a.key, b.key);
        assert!(a.same_form(&b));
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn constant_change_changes_key() {
        let a = canonicalize(&parse_chc(FIG1).unwrap());
        let tweaked = FIG1.replace("(= x 1)", "(= x 2)");
        let b = canonicalize(&parse_chc(&tweaked).unwrap());
        assert_ne!(a.key, b.key);
        assert!(!a.same_form(&b));
        // Same shape though: the masked fingerprints still agree.
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.overlap(&b), a.fingerprint.len());
    }

    #[test]
    fn clause_reorder_same_key() {
        let sys = parse_chc(FIG1).unwrap();
        let mut permuted = ChcSystem::new();
        for i in 0..sys.num_vars() {
            permuted.fresh_var(sys.var_name(Var::from_index(i as u32)));
        }
        // parse_chc declares the predicate before any clause vars, so
        // rebuilding needs declare-then-vars ordering; easier: parse a
        // reordered text.
        drop(permuted);
        let reordered = r#"
        (set-logic HORN)
        (declare-fun inv (Int Int) Bool)
        (assert (forall ((x Int) (y Int))
            (=> (and (inv x y) (< x y)) false)))
        (assert (forall ((x Int) (y Int))
            (=> (inv x y) (inv (+ x y) (+ y 1)))))
        (assert (forall ((x Int) (y Int))
            (=> (and (= x 1) (= y 0)) (inv x y))))
        (check-sat)
        "#;
        let b = canonicalize(&parse_chc(reordered).unwrap());
        assert_eq!(canonicalize(&sys).key, b.key);
    }
}
