//! Property-style tests for the canonical CHC form (`canon.rs`): the
//! cache-key contract behind the serve daemon's exact tier.
//!
//! The mutation stream is [`linarb_serve::replay::variant`] — the very
//! generator the replay bench uses — so the properties tested here are
//! the properties the daemon relies on in production:
//!
//! * alpha-renamed, clause-reordered, and gcd-scaled variants of every
//!   named suite program map to the same key (and identical canonical
//!   text, so a key collision could not fake a hit either);
//! * perturbing a guard constant (a semantic change) always changes
//!   the key — semantically different systems do not collide;
//! * canonicalization is a pure function of the system: repeated runs
//!   agree (`scripts/ci.sh` re-runs this test at 1 and 4 worker
//!   threads to pin down any accidental parallelism dependence).

use linarb_frontend::canonicalize;
use linarb_serve::replay::variant;
use linarb_suite::{literature_programs, paper_examples, Benchmark};

/// Every named suite program (paper examples + literature set); the
/// generated families are structurally the same shapes scaled up.
fn named_suite() -> Vec<Benchmark> {
    let mut v = paper_examples();
    v.extend(literature_programs());
    v
}

const SEED: u64 = 0x1abb_5eed;

/// Variant indices `i % 8 != 0` are the seven non-empty combinations
/// of rename/reorder/scale; `i % 8 == 0` is a constant perturbation.
#[test]
fn syntactic_variants_of_every_program_share_the_cache_key() {
    for bench in named_suite() {
        let base = canonicalize(&bench.system);
        for i in 1..=23 {
            if i % 8 == 0 {
                continue;
            }
            let v = variant(&bench.system, SEED, i);
            let c = canonicalize(&v);
            assert_eq!(
                c.key, base.key,
                "{}: variant {i} (mask {:03b}) changed the cache key",
                bench.name,
                i % 8
            );
            assert_eq!(
                c.text, base.text,
                "{}: variant {i} key matches but canonical text differs (collision)",
                bench.name
            );
        }
    }
}

#[test]
fn perturbed_guard_constants_never_collide() {
    for bench in named_suite() {
        let base = canonicalize(&bench.system);
        // Every atom of the system has some perturbation stream index
        // hitting it eventually; eight perturb-class indices per
        // program give broad coverage without a long runtime.
        for i in (0..64).step_by(8) {
            let v = variant(&bench.system, SEED, i);
            let c = canonicalize(&v);
            if v.to_smtlib() == bench.system.to_smtlib() {
                // Atom-free systems degrade to exact duplicates.
                continue;
            }
            assert_ne!(
                c.key, base.key,
                "{}: perturb variant {i} collided with its base",
                bench.name
            );
            assert_ne!(c.text, base.text);
        }
    }
}

#[test]
fn canonicalization_is_deterministic() {
    for bench in named_suite() {
        let a = canonicalize(&bench.system);
        let b = canonicalize(&bench.system);
        assert_eq!(a.key, b.key, "{}: key not stable across runs", bench.name);
        assert_eq!(a.text, b.text);
        assert_eq!(a.fingerprint, b.fingerprint);
        // The fingerprint covers every clause.
        assert_eq!(a.fingerprint.len(), bench.system.num_clauses(), "{}", bench.name);
    }
}

#[test]
fn distinct_programs_get_distinct_keys() {
    let suite = named_suite();
    for (i, a) in suite.iter().enumerate() {
        let ca = canonicalize(&a.system);
        for b in suite.iter().skip(i + 1) {
            let cb = canonicalize(&b.system);
            assert_ne!(
                ca.text, cb.text,
                "{} and {} share a canonical form",
                a.name, b.name
            );
        }
    }
}
