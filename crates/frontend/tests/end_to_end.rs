//! End-to-end: mini-C → CHC → data-driven solver, on the paper's
//! running examples.

use linarb_frontend::compile;
use linarb_smt::Budget;
use linarb_solver::{solve_system, verify_interpretation, SolveResult, SolverConfig};
use std::time::Duration;

fn solve(src: &str) -> SolveResult {
    let sys = compile(src).expect("compile");
    let budget = Budget::timeout(Duration::from_secs(60));
    let r = solve_system(&sys, SolverConfig::default(), &budget);
    if let SolveResult::Sat(interp) = &r {
        assert_eq!(
            verify_interpretation(&sys, interp, &Budget::timeout(Duration::from_secs(60))),
            Some(true),
            "interpretation must validate all clauses"
        );
    }
    if let SolveResult::Unsat(tree) = &r {
        assert!(tree.replay(&sys), "counterexample must replay concretely");
    }
    r
}

#[test]
fn paper_fig1_safe() {
    let r = solve(
        r#"
        void main() {
            int x = 1; int y = 0;
            while (*) { x = x + y; y = y + 1; }
            assert(x >= y);
        }
    "#,
    );
    assert!(r.is_sat(), "{r:?}");
}

#[test]
fn paper_fig1_unsafe_variant() {
    let r = solve(
        r#"
        void main() {
            int x = 0; int y = 0;
            while (*) { x = x + y; y = y + 1; }
            assert(x >= y);
        }
    "#,
    );
    assert!(r.is_unsat(), "x starts at 0 so two iterations break x>=y: {r:?}");
}

#[test]
fn paper_program_c_fibo_safe() {
    let r = solve(
        r#"
        int fibo(int x) {
            if (x < 1) { return 0; }
            else { if (x == 1) { return 1; }
                   else { return fibo(x - 1) + fibo(x - 2); } }
        }
        void main() {
            int n = nondet();
            assert(fibo(n) >= n - 1);
        }
    "#,
    );
    assert!(r.is_sat(), "{r:?}");
}

#[test]
fn counter_loop_exact() {
    let r = solve(
        r#"
        void main() {
            int i = 0;
            while (i < 10) { i = i + 1; }
            assert(i == 10);
        }
    "#,
    );
    assert!(r.is_sat(), "{r:?}");
}

#[test]
fn unsafe_counter_detected() {
    let r = solve(
        r#"
        void main() {
            int i = 0;
            while (i < 10) { i = i + 3; }
            assert(i == 10);
        }
    "#,
    );
    assert!(r.is_unsat(), "i ends at 12, not 10: {r:?}");
}

#[test]
fn function_summary_used_at_callsite() {
    let r = solve(
        r#"
        int abs(int x) {
            if (x < 0) { return 0 - x; }
            return x;
        }
        void main() {
            int v = nondet();
            int a = abs(v);
            assert(a >= 0);
        }
    "#,
    );
    assert!(r.is_sat(), "{r:?}");
}

#[test]
fn assume_constrains() {
    let r = solve(
        r#"
        void main() {
            int x = nondet();
            assume(x > 5);
            assert(x >= 6);
        }
    "#,
    );
    assert!(r.is_sat(), "{r:?}");
}
