//! The cross-seeding bus shared by racing engines.

use linarb_logic::{Atom, PredId};
use linarb_ml::Sample;
use linarb_solver::CrossSeed;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A [`CrossSeed`] bus backed by mutexed buffers.
///
/// Baseline engines publish (PDR lemma atoms, interpolation Farkas
/// planes, BMC counterexample states); the CEGAR solver drains at
/// round boundaries. `take_*` empties the buffer, so exactly one
/// consumer must be attached — the portfolio driver wires the bus
/// into the primary CEGAR engine only.
///
/// The monotonic `*_published` counters survive draining; the
/// sequential slicer uses them to decide whether re-running an engine
/// can possibly change its answer.
#[derive(Debug, Default)]
pub struct SeedExchange {
    atoms: Mutex<Vec<(PredId, Atom)>>,
    negatives: Mutex<Vec<(PredId, Sample)>>,
    atoms_published: AtomicUsize,
    negatives_published: AtomicUsize,
}

impl SeedExchange {
    /// Total atoms ever published (monotonic, unaffected by drains).
    pub fn atoms_published(&self) -> usize {
        self.atoms_published.load(Ordering::Relaxed)
    }

    /// Total negatives ever published (monotonic).
    pub fn negatives_published(&self) -> usize {
        self.negatives_published.load(Ordering::Relaxed)
    }
}

impl CrossSeed for SeedExchange {
    fn publish_atom(&self, pred: PredId, atom: &Atom) {
        self.atoms.lock().unwrap().push((pred, atom.clone()));
        self.atoms_published.fetch_add(1, Ordering::Relaxed);
    }

    fn publish_negative(&self, pred: PredId, sample: &Sample) {
        self.negatives.lock().unwrap().push((pred, sample.clone()));
        self.negatives_published.fetch_add(1, Ordering::Relaxed);
    }

    fn take_atoms(&self) -> Vec<(PredId, Atom)> {
        std::mem::take(&mut *self.atoms.lock().unwrap())
    }

    fn take_negatives(&self) -> Vec<(PredId, Sample)> {
        std::mem::take(&mut *self.negatives.lock().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linarb_logic::LinExpr;

    #[test]
    fn publish_take_and_counters() {
        let bus = SeedExchange::default();
        let atom = Atom::le_zero(LinExpr::var(linarb_logic::Var::from_index(0)));
        bus.publish_atom(PredId(0), &atom);
        bus.publish_atom(PredId(1), &atom);
        bus.publish_negative(PredId(0), &vec![1.into(), 2.into()]);
        assert_eq!(bus.atoms_published(), 2);
        assert_eq!(bus.negatives_published(), 1);
        assert_eq!(bus.take_atoms().len(), 2);
        assert_eq!(bus.take_atoms().len(), 0, "drained");
        assert_eq!(bus.take_negatives().len(), 1);
        // Counters survive draining.
        assert_eq!(bus.atoms_published(), 2);
    }
}
